"""Shim for environments without the `wheel` package (offline installs).

`pip install -e . --no-build-isolation` requires bdist_wheel; this shim
enables the legacy `--no-use-pep517` editable path instead.  All real
metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
