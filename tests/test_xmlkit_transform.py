"""Unit tests for tree pruning (projection at the data level)."""

from repro.xmlkit import Element, Path, element, prune_to_paths


def photon():
    return element(
        "photon",
        element("phc", text=100),
        element(
            "coord",
            element("cel", element("ra", text=130.0), element("dec", text=-45.0)),
            element("det", element("dx", text=1), element("dy", text=2)),
        ),
        element("en", text=1.5),
        element("det_time", text=10.0),
    )


class TestPruneToPaths:
    def test_keep_leaf(self):
        pruned = prune_to_paths(photon(), [Path("en")])
        assert pruned == element("photon", element("en", text=1.5))

    def test_keep_nested_leaf_keeps_ancestors(self):
        pruned = prune_to_paths(photon(), [Path("coord/cel/ra")])
        assert pruned == element(
            "photon", element("coord", element("cel", element("ra", text=130.0)))
        )

    def test_keep_subtree_keeps_descendants(self):
        pruned = prune_to_paths(photon(), [Path("coord/cel")])
        cel = pruned.find(["coord", "cel"])
        assert [c.tag for c in cel.children] == ["ra", "dec"]

    def test_multiple_paths(self):
        pruned = prune_to_paths(photon(), [Path("en"), Path("det_time")])
        assert [c.tag for c in pruned.children] == ["en", "det_time"]

    def test_document_order_preserved(self):
        pruned = prune_to_paths(photon(), [Path("det_time"), Path("phc")])
        assert [c.tag for c in pruned.children] == ["phc", "det_time"]

    def test_nothing_retained(self):
        assert prune_to_paths(photon(), [Path("missing")]) is None

    def test_empty_path_keeps_everything(self):
        assert prune_to_paths(photon(), [Path(())]) == photon()

    def test_result_is_a_copy(self):
        original = photon()
        pruned = prune_to_paths(original, [Path("en")])
        pruned.child("en").children.append(Element("x"))
        assert original.child("en").children == []

    def test_sibling_subtrees_not_merged(self):
        pruned = prune_to_paths(photon(), [Path("coord/det/dx")])
        det = pruned.find(["coord", "det"])
        assert [c.tag for c in det.children] == ["dx"]
        assert pruned.find(["coord", "cel"]) is None
