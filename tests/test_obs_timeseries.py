"""Epoch snapshot tests, including the churn recovery transient."""

import pytest

from repro.bench.harness import run_scenario
from repro.engine.metrics import RunMetrics
from repro.network.topology import example_topology
from repro.obs import EpochSnapshot, Recorder, snapshot_delta
from repro.workload.scenarios import scenario_churn


@pytest.fixture()
def net():
    return example_topology()


def _metrics(net, bits, work, generated, lost=0, rerouted=0.0, faults=0):
    m = RunMetrics(duration=10.0)
    m.add_link_bits(net.link("SP4", "SP5"), bits)
    m.add_peer_work("SP4", work)
    m.count_generated("photons", generated)
    m.items_lost = lost
    m.rerouted_traffic_bits = rerouted
    m.faults_applied = faults
    return m


class TestSnapshotDelta:
    def test_first_epoch_uses_absolute_values(self, net):
        current = _metrics(net, bits=1_000_000.0, work=500_000.0, generated=100)
        snap = snapshot_delta(0, 0.0, 5.0, current, None, net, {"select": 10})
        assert snap.link_bits == {"SP4-SP5": 1_000_000.0}
        # 1 Mbit over 5 s = 200 kbit/s.
        assert snap.link_kbps["SP4-SP5"] == pytest.approx(200.0)
        # 0.5 M units over 5 s on a 1 M units/s peer = 10 %.
        assert snap.peer_cpu_percent["SP4"] == pytest.approx(10.0)
        assert snap.items_generated == 100
        assert snap.operator_inputs == {"select": 10}

    def test_delta_against_previous_epoch(self, net):
        previous = _metrics(net, bits=1_000_000.0, work=500_000.0, generated=100)
        current = _metrics(
            net, bits=1_600_000.0, work=800_000.0, generated=150,
            lost=3, rerouted=20_000.0, faults=1,
        )
        snap = snapshot_delta(
            1, 5.0, 10.0, current, previous, net,
            {"select": 25}, {"select": 10}, inflight_items=4, inflight_peak=9,
        )
        assert snap.link_bits == {"SP4-SP5": pytest.approx(600_000.0)}
        assert snap.items_generated == 50
        assert snap.items_lost == 3
        assert snap.rerouted_traffic_bits == pytest.approx(20_000.0)
        assert snap.faults_applied == 1
        assert snap.operator_inputs == {"select": 15}
        assert snap.inflight_items == 4 and snap.inflight_peak == 9

    def test_unchanged_series_are_omitted(self, net):
        previous = _metrics(net, bits=1_000_000.0, work=500_000.0, generated=100)
        current = _metrics(net, bits=1_000_000.0, work=500_000.0, generated=100)
        snap = snapshot_delta(1, 5.0, 10.0, current, previous, net, {})
        assert snap.link_bits == {} and snap.peer_work == {}

    def test_removed_peer_capacity_still_resolves(self, net):
        current = _metrics(net, bits=0.0, work=0.0, generated=0)
        current.add_peer_work("SP5", 100_000.0)
        net.remove_super_peer("SP5")
        snap = snapshot_delta(0, 0.0, 1.0, current, None, net, {})
        assert snap.peer_cpu_percent["SP5"] > 0.0

    def test_dict_round_trip(self):
        snap = EpochSnapshot(
            index=2, t_start=5.0, t_end=10.0, wall_s=0.25,
            peer_work={"SP4": 1.0}, items_delivered=7, inflight_peak=3,
        )
        assert EpochSnapshot.from_dict(snap.to_dict()) == snap


class TestChurnTransient:
    """Satellite: the recovery transient is visible in the epoch series."""

    @pytest.fixture(scope="class")
    def churn_run(self):
        scenario = scenario_churn(
            rows=2, cols=2, query_count=4, duration=12.0,
            crash_peer="SP1", crash_at=4.0, rejoin_at=8.0,
        )
        recorder = Recorder()
        run = run_scenario(scenario, "stream-sharing", recorder=recorder)
        return scenario, recorder, run

    def test_epochs_cover_the_whole_run(self, churn_run):
        scenario, recorder, _ = churn_run
        # A sharded run (REPRO_PARALLEL) interleaves one series per
        # cell; contiguity holds within each shard's series.
        by_shard = {}
        for snapshot in recorder.epochs:
            by_shard.setdefault(snapshot.shard, []).append(snapshot)
        for epochs in by_shard.values():
            assert epochs[0].t_start == 0.0
            assert epochs[-1].t_end == pytest.approx(scenario.duration)
            for before, after in zip(epochs, epochs[1:]):
                assert after.t_start == pytest.approx(before.t_end)

    def test_rerouted_bits_only_after_the_crash(self, churn_run):
        _, recorder, _ = churn_run
        pre_fault = [e for e in recorder.epochs if e.t_end <= 4.0]
        post_fault = [e for e in recorder.epochs if e.t_start >= 4.0]
        assert pre_fault and post_fault
        # Epochs are emitted before the boundary's fault applies, so the
        # recovery transient lands strictly in post-fault epochs.
        assert all(e.rerouted_traffic_bits == 0.0 for e in pre_fault)
        assert sum(e.rerouted_traffic_bits for e in post_fault) > 0.0

    def test_fault_epochs_are_marked(self, churn_run):
        _, recorder, run = churn_run
        assert run.metrics is not None
        assert sum(e.faults_applied for e in recorder.epochs) == 2
        assert all(e.faults_applied == 0 for e in recorder.epochs if e.t_end <= 4.0)

    def test_epoch_deltas_sum_to_run_totals(self, churn_run):
        _, recorder, run = churn_run
        metrics = run.metrics
        epochs = recorder.epochs
        assert sum(e.items_generated for e in epochs) == sum(
            metrics.items_generated.values()
        )
        assert sum(e.items_delivered for e in epochs) == sum(
            metrics.items_delivered.values()
        )
        assert sum(e.items_lost for e in epochs) == metrics.items_lost
        assert sum(e.rerouted_traffic_bits for e in epochs) == pytest.approx(
            metrics.rerouted_traffic_bits
        )
        total_bits = sum(sum(e.link_bits.values()) for e in epochs)
        assert total_bits == pytest.approx(sum(metrics.link_bits.values()))


class TestSortEpochs:
    """Satellite (PR 8): merged multi-cell series sort deterministically."""

    @staticmethod
    def _snap(index, shard=None):
        return EpochSnapshot(index=index, t_start=0.0, t_end=1.0, shard=shard)

    def test_orders_by_epoch_then_shard(self):
        from repro.obs import sort_epochs

        epochs = [
            self._snap(1, shard=1),
            self._snap(0, shard=1),
            self._snap(1, shard=0),
            self._snap(0, shard=0),
        ]
        ordered = sort_epochs(epochs)
        assert [(e.index, e.shard) for e in ordered] == [
            (0, 0), (0, 1), (1, 0), (1, 1),
        ]

    def test_sequential_series_unchanged(self):
        from repro.obs import sort_epochs

        epochs = [self._snap(i) for i in range(4)]
        assert sort_epochs(epochs) == epochs

    def test_global_epoch_sorts_before_its_shards(self):
        from repro.obs import sort_epochs

        epochs = [self._snap(0, shard=0), self._snap(0, shard=None)]
        assert [e.shard for e in sort_epochs(epochs)] == [None, 0]

    def test_export_is_shuffle_invariant(self, tmp_path):
        """The regression this satellite pins: the JSONL epoch section
        must not depend on recorder insertion order (sharded runs append
        per-cell series in gather order)."""
        import json

        from repro.obs import write_jsonl

        def export(order):
            recorder = Recorder()
            for snapshot in order:
                recorder.epochs.append(snapshot)
            path = tmp_path / f"run-{id(order)}.jsonl"
            write_jsonl(recorder, str(path))
            return [
                (obj["index"], obj.get("shard"))
                for obj in map(json.loads, path.read_text().splitlines())
                if obj.get("type") == "epoch"
            ]

        interleaved = [
            self._snap(0, shard=0), self._snap(1, shard=0),
            self._snap(0, shard=1), self._snap(1, shard=1),
        ]
        shuffled = [interleaved[2], interleaved[1], interleaved[3], interleaved[0]]
        assert export(interleaved) == export(shuffled)
        assert export(interleaved) == [(0, 0), (0, 1), (1, 0), (1, 1)]
