"""Tests for deterministic fault schedules."""

import pytest

from repro.faults import (
    FaultError,
    FaultSchedule,
    LinkFailure,
    LinkRestore,
    SuperPeerCrash,
    SuperPeerRejoin,
    single_crash,
)
from repro.network.topology import Network


def line() -> Network:
    net = Network()
    for name in ("A", "B", "C"):
        net.add_super_peer(name)
    net.add_link("A", "B")
    net.add_link("B", "C")
    return net


class TestEventValidation:
    def test_negative_time_rejected(self):
        with pytest.raises(FaultError):
            SuperPeerCrash(time=-1.0, peer="A")

    def test_non_finite_time_rejected(self):
        with pytest.raises(FaultError):
            SuperPeerCrash(time=float("nan"), peer="A")

    def test_missing_names_rejected(self):
        with pytest.raises(FaultError):
            SuperPeerCrash(time=1.0)
        with pytest.raises(FaultError):
            SuperPeerRejoin(time=1.0)
        with pytest.raises(FaultError):
            LinkFailure(time=1.0, a="A")
        with pytest.raises(FaultError):
            LinkRestore(time=1.0, b="B")

    def test_non_event_rejected_by_schedule(self):
        with pytest.raises(FaultError):
            FaultSchedule(["not an event"])


class TestEventApplication:
    def test_crash_and_rejoin(self):
        net = line()
        SuperPeerCrash(1.0, "B").apply(net)
        assert "B" not in net
        SuperPeerRejoin(2.0, "B").apply(net)
        assert "B" in net
        assert net.has_link("A", "B")

    def test_link_failure_and_restore(self):
        net = line()
        LinkFailure(1.0, "A", "B").apply(net)
        assert not net.has_link("A", "B")
        LinkRestore(2.0, "A", "B").apply(net)
        assert net.has_link("A", "B")

    def test_describe_mentions_time_and_subject(self):
        assert SuperPeerCrash(10.0, "SP1").describe() == "t=10: super-peer SP1 crashes"
        assert "A-B" in LinkFailure(3.5, "B", "A").describe()


class TestSchedule:
    def test_events_sorted_by_time(self):
        schedule = FaultSchedule(
            [SuperPeerRejoin(20.0, "A"), SuperPeerCrash(10.0, "A")]
        )
        assert [event.time for event in schedule.events()] == [10.0, 20.0]

    def test_simultaneous_events_keep_written_order(self):
        crash = SuperPeerCrash(5.0, "A")
        rejoin = SuperPeerRejoin(5.0, "A")
        schedule = FaultSchedule([crash, rejoin])
        assert schedule.events() == [crash, rejoin]

    def test_events_due_is_half_open(self):
        schedule = FaultSchedule(
            [SuperPeerCrash(5.0, "A"), SuperPeerRejoin(10.0, "A")]
        )
        assert [e.time for e in schedule.events_due(0.0, 5.0)] == []
        assert [e.time for e in schedule.events_due(5.0, 10.0)] == [5.0]
        assert [e.time for e in schedule.events_due(0.0, 30.0)] == [5.0, 10.0]

    def test_boundaries_clip_to_duration(self):
        schedule = FaultSchedule(
            [
                SuperPeerCrash(5.0, "A"),
                SuperPeerRejoin(5.0, "A"),
                LinkFailure(12.0, "A", "B"),
            ]
        )
        assert schedule.boundaries(10.0) == [5.0]
        assert schedule.boundaries(30.0) == [5.0, 12.0]

    def test_len_bool_iter_describe(self):
        empty = FaultSchedule()
        assert not empty and len(empty) == 0
        schedule = FaultSchedule([SuperPeerCrash(1.0, "A")])
        assert schedule and len(schedule) == 1
        assert [event.peer for event in schedule] == ["A"]
        assert schedule.describe() == ["t=1: super-peer A crashes"]


class TestSingleCrash:
    def test_without_rejoin(self):
        schedule = single_crash(10.0, "SP1")
        assert [type(e).__name__ for e in schedule] == ["SuperPeerCrash"]

    def test_with_rejoin(self):
        schedule = single_crash(10.0, "SP1", rejoin_at=20.0)
        assert [type(e).__name__ for e in schedule] == [
            "SuperPeerCrash",
            "SuperPeerRejoin",
        ]

    def test_rejoin_before_crash_ignored(self):
        assert len(single_crash(10.0, "SP1", rejoin_at=5.0)) == 1
