"""Unit tests for compensation derivation and plan generation."""

import pytest

from tests.conftest import PAPER_QUERIES
from repro.costmodel import CostModel
from repro.properties import extract_properties, raw_stream_properties
from repro.sharing.plan import Deployment, InstalledStream
from repro.sharing.planner import Planner, PlanningError, derive_compensation
from repro.network.topology import example_topology
from repro.wxquery import parse_query


def props(name):
    return extract_properties(parse_query(PAPER_QUERIES[name]), name).single_input()


RAW = raw_stream_properties("photons", "photons/photon").single_input()


class TestDeriveCompensation:
    def test_raw_to_selection_query(self):
        pipeline = derive_compensation(RAW, props("Q1"))
        assert [s.kind for s in pipeline] == ["selection", "projection"]

    def test_raw_to_aggregate_query(self):
        pipeline = derive_compensation(RAW, props("Q3"))
        assert [s.kind for s in pipeline] == ["selection", "aggregation"]

    def test_q1_to_q2_compensation(self):
        pipeline = derive_compensation(props("Q1"), props("Q2"))
        assert [s.kind for s in pipeline] == ["selection", "projection"]

    def test_exact_reuse_is_empty(self):
        assert derive_compensation(props("Q1"), props("Q1")) == ()
        assert derive_compensation(props("Q3"), props("Q3")) == ()

    def test_q3_to_q4_is_reaggregation(self):
        pipeline = derive_compensation(props("Q3"), props("Q4"))
        assert [s.kind for s in pipeline] == ["reaggregation"]
        spec = pipeline[0]
        assert spec.reused.window.size == 20
        assert spec.new.window.size == 60

    def test_aggregate_to_item_level_rejected(self):
        with pytest.raises(PlanningError):
            derive_compensation(props("Q3"), props("Q2"))

    def test_same_selection_skips_filter(self):
        # Q3 and Q4 share the vela pre-selection; a raw->Q4 pipeline
        # needs selection, a Q1->... hmm: Q1's selection equals Q3's
        # pre-selection, so compensation from Q1-filtered content to an
        # identically-selected target needs no second selection.
        q1 = props("Q1")
        pipeline = derive_compensation(q1, q1)
        assert pipeline == ()


class TestPlanner:
    @pytest.fixture()
    def setup(self, catalog):
        net = example_topology()
        deployment = Deployment(net)
        original = InstalledStream(
            stream_id="photons", content=RAW, origin_node="SP4", route=("SP4",)
        )
        deployment.install_stream(original)
        planner = Planner(net, catalog, CostModel(net))
        return net, deployment, planner, original

    def test_tap_and_target_variants(self, setup):
        net, deployment, planner, original = setup
        plans = planner.plans_for_candidate(
            deployment, original, "SP4", props("Q1"), "Q1", "SP1"
        )
        assert {p.placement_node for p in plans} == {"SP4", "SP1"}
        tap = next(p for p in plans if p.placement_node == "SP4")
        target = next(p for p in plans if p.placement_node == "SP1")
        assert tap.relay is None
        assert target.relay is not None
        assert target.relay.route == ("SP4", "SP5", "SP1")

    def test_in_network_filtering_is_cheaper(self, setup):
        """Pushing Q1 into the network (compute at SP4) must beat
        shipping the raw stream — the core of the paper's Figure 2."""
        net, deployment, planner, original = setup
        plans = planner.plans_for_candidate(
            deployment, original, "SP4", props("Q1"), "Q1", "SP1"
        )
        by_placement = {p.placement_node: p for p in plans}
        assert by_placement["SP4"].cost < by_placement["SP1"].cost

    def test_coincident_tap_and_target_deduplicated(self, setup):
        net, deployment, planner, original = setup
        plans = planner.plans_for_candidate(
            deployment, original, "SP4", props("Q1"), "Q1", "SP4"
        )
        assert len(plans) == 1
        assert plans[0].relay is None
        assert plans[0].delivered.route == ("SP4",)

    def test_effects_cover_route_links(self, setup):
        net, deployment, planner, original = setup
        (plan,) = planner.plans_for_candidate(
            deployment, original, "SP4", props("Q1"), "Q1", "SP1",
            placements=("tap",),
        )
        affected = {link.ends for link in plan.effects.link_bits}
        assert affected == {("SP4", "SP5"), ("SP1", "SP5")}
        assert "SP4" in plan.effects.peer_work  # pipeline + duplicate
        assert "SP1" in plan.effects.peer_work  # restructuring

    def test_costs_are_positive_and_monotone_in_usage(self, setup):
        net, deployment, planner, original = setup
        (before,) = planner.plans_for_candidate(
            deployment, original, "SP4", props("Q1"), "Q1", "SP1",
            placements=("tap",),
        )
        assert before.cost > 0
        # Fully saturate the SP4-SP5 link: any additional stream now
        # overloads it and C adds the exponential penalty.
        deployment.usage.add_link_traffic(net.link("SP4", "SP5"), 100_000_000.0)
        (after,) = planner.plans_for_candidate(
            deployment, original, "SP4", props("Q1"), "Q1", "SP1",
            placements=("tap",),
        )
        assert after.cost > before.cost
