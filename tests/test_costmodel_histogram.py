"""Tests for histogram-based selectivity (the catalog's skew model)."""

import pytest

from repro.costmodel.statistics import HISTOGRAM_BUCKETS, PathStatistics, _build_histogram


class TestBuildHistogram:
    def test_bucket_count_and_total(self):
        values = [float(v) for v in range(100)]
        histogram = _build_histogram(values, 0.0, 99.0)
        assert len(histogram) == HISTOGRAM_BUCKETS
        assert sum(histogram) == 100

    def test_degenerate_range(self):
        assert _build_histogram([5.0, 5.0], 5.0, 5.0) is None

    def test_single_value(self):
        assert _build_histogram([5.0], 5.0, 5.0) is None

    def test_maximum_lands_in_last_bucket(self):
        histogram = _build_histogram([0.0, 10.0], 0.0, 10.0)
        assert histogram[-1] == 1

    def test_skew_captured(self):
        values = [1.0] * 90 + [float(v) for v in range(2, 12)]
        histogram = _build_histogram(values, 1.0, 11.0)
        assert histogram[0] >= 90


class TestMassFraction:
    def _entry(self, values, low, high):
        return PathStatistics(
            occurrence=1.0,
            avg_size=10.0,
            minimum=low,
            maximum=high,
            histogram=_build_histogram(values, low, high),
        )

    def test_full_range_is_one(self):
        entry = self._entry([float(v) for v in range(100)], 0.0, 99.0)
        assert entry.mass_fraction(None, None) == pytest.approx(1.0)

    def test_half_range_uniform(self):
        values = [v / 10 for v in range(1000)]
        entry = self._entry(values, 0.0, 99.9)
        assert entry.mass_fraction(0.0, 49.95) == pytest.approx(0.5, abs=0.03)

    def test_hot_spot_weighted(self):
        # 90% of mass at the low end.
        values = [1.0 + v * 0.001 for v in range(900)] + [
            50.0 + v * 0.01 for v in range(100)
        ]
        entry = self._entry(values, 1.0, 50.99)
        low_mass = entry.mass_fraction(0.0, 10.0)
        assert low_mass > 0.8
        high_mass = entry.mass_fraction(45.0, 60.0)
        assert high_mass < 0.2

    def test_outside_range_is_zero(self):
        entry = self._entry([1.0, 2.0, 3.0], 1.0, 3.0)
        assert entry.mass_fraction(10.0, 20.0) == 0.0
        assert entry.mass_fraction(-5.0, 0.0) == 0.0

    def test_no_histogram_falls_back_to_uniform(self):
        entry = PathStatistics(minimum=0.0, maximum=10.0)
        assert entry.mass_fraction(0.0, 5.0) == pytest.approx(0.5)

    def test_constant_element(self):
        entry = PathStatistics(minimum=5.0, maximum=5.0)
        assert entry.mass_fraction(5.0, 5.0) == 1.0
        assert entry.mass_fraction(0.0, 1.0) == 0.0

    def test_no_statistics_is_neutral(self):
        assert PathStatistics().mass_fraction(0.0, 1.0) == 1.0

    def test_monotone_in_interval(self):
        values = [v / 7 for v in range(700)]
        entry = self._entry(values, 0.0, values[-1])
        narrow = entry.mass_fraction(10.0, 20.0)
        wide = entry.mass_fraction(5.0, 25.0)
        assert narrow <= wide


class TestSelectivityWithHistograms:
    def test_hot_spot_region_better_estimated(self, photon_stats, photon_config):
        """The histogram model must land much closer to the observed
        vela selectivity than the uniform model would."""
        from fractions import Fraction

        from repro.predicates import PredicateGraph, normalize_comparison
        from repro.workload.photons import PhotonGenerator, VELA_REGION
        from repro.xmlkit import Path

        item = Path("photons/photon")
        atoms = []
        for path, op, const in [
            (item / "coord/cel/ra", ">=", VELA_REGION.ra_min),
            (item / "coord/cel/ra", "<=", VELA_REGION.ra_max),
            (item / "coord/cel/dec", ">=", VELA_REGION.dec_min),
            (item / "coord/cel/dec", "<=", VELA_REGION.dec_max),
        ]:
            atoms.extend(normalize_comparison(path, op, None, Fraction(str(const))))
        estimated = photon_stats.selectivity(PredicateGraph(atoms))

        sample = PhotonGenerator(photon_config).take(2000)
        observed = sum(
            1 for i in sample
            if VELA_REGION.contains(
                float(i.find(["coord", "cel", "ra"]).text),
                float(i.find(["coord", "cel", "dec"]).text),
            )
        ) / len(sample)
        # Uniform would say ~0.07 for observed ~0.40; histograms must be
        # within a factor of ~2.
        assert estimated > observed / 2
        assert estimated < observed * 2
