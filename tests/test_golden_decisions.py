"""Golden snapshot of the scenario-1 optimizer decisions.

Pins, per query, which stream Algorithm 1 reuses and where the
compensation operators run.  Any refactoring of matching, costing, or
search that silently changes a decision trips this test — an
intentional behavioral change should update the table *and* explain
itself in the commit that does so.

The snapshot is deterministic: the workload, statistics sample, and
search tie-breaking are all seeded.
"""

from repro.bench.harness import run_scenario
from repro.workload.scenarios import scenario_one

#: (query, reused stream, operator placement node).  Reuse clusters:
#: Q002 (a popular vela-region selection) feeds seven later queries,
#: which in turn spawn second-generation reuse (Q011, Q005, Q012, ...).
GOLDEN_DECISIONS = [
    ("Q001", "photons", "SP4"),
    ("Q002", "photons", "SP4"),
    ("Q003", "Q002:photons", "SP7"),
    ("Q004", "photons", "SP4"),
    ("Q005", "Q002:photons", "SP7"),
    ("Q006", "Q002:photons", "SP7"),
    ("Q007", "photons", "SP4"),
    ("Q008", "Q002:photons", "SP4"),
    ("Q009", "photons", "SP4"),
    ("Q010", "photons", "SP4"),
    ("Q011", "Q002:photons", "SP7"),
    ("Q012", "Q002:photons", "SP4"),
    ("Q013", "photons", "SP4"),
    ("Q014", "Q011:photons", "SP7"),
    ("Q015", "Q005:photons", "SP1"),
    ("Q016", "photons", "SP4"),
    ("Q017", "Q005:photons", "SP1"),
    ("Q018", "Q003:photons", "SP7"),
    ("Q019", "photons", "SP4"),
    ("Q020", "Q012:photons", "SP0"),
    ("Q021", "photons", "SP4"),
    ("Q022", "photons", "SP4"),
    ("Q023", "Q020:photons", "SP0"),
    ("Q024", "photons", "SP4"),
    ("Q025", "Q005:photons", "SP1"),
]


def test_scenario_one_decisions_pinned():
    run = run_scenario(scenario_one(), "stream-sharing", execute=False)
    actual = [
        (r.query, r.plan.inputs[0].reused_id, r.plan.inputs[0].placement_node)
        for r in run.registrations
    ]
    assert actual == GOLDEN_DECISIONS


def test_golden_reuse_rate():
    """13 of the 25 queries share previously generated streams."""
    shared = [row for row in GOLDEN_DECISIONS if row[1] != "photons"]
    assert len(shared) == 13


def test_golden_reuse_chains_are_acyclic():
    producers = {row[0] for row in GOLDEN_DECISIONS}
    for query, reused, _ in GOLDEN_DECISIONS:
        if reused == "photons":
            continue
        producer = reused.split(":")[0]
        assert producer in producers
        assert producer < query  # only earlier registrations are reused
