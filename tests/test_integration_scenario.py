"""Whole-scenario integration tests: the optimizer's decisions on the
scenario-1 workload are deterministic and structurally sound."""

import pytest

from repro.bench.harness import run_scenario
from repro.workload.scenarios import scenario_one


@pytest.fixture(scope="module")
def sharing_run():
    return run_scenario(scenario_one(), "stream-sharing", execute=False)


class TestScenarioOneDecisions:
    def test_decisions_deterministic(self, sharing_run):
        """Two independent optimizations of the same workload make
        identical decisions."""
        again = run_scenario(scenario_one(), "stream-sharing", execute=False)
        first = [
            (r.query, r.plan.inputs[0].reused_id, r.plan.inputs[0].placement_node)
            for r in sharing_run.registrations
        ]
        second = [
            (r.query, r.plan.inputs[0].reused_id, r.plan.inputs[0].placement_node)
            for r in again.registrations
        ]
        assert first == second

    def test_substantial_sharing_happens(self, sharing_run):
        shared = [
            r.query
            for r in sharing_run.registrations
            if r.plan.inputs[0].reused_id != "photons"
        ]
        # The template pools are engineered for collisions; expect at
        # least a third of the 25 queries to share.
        assert len(shared) >= 8

    def test_every_reuse_is_justified(self, sharing_run):
        """Each reused stream matches the consuming query per
        Algorithm 2 — the optimizer never shares on a hunch."""
        from repro.matching import match_stream_properties

        deployment = sharing_run.system.deployment
        for result in sharing_run.registrations:
            plan = result.plan.inputs[0]
            reused = deployment.streams.get(plan.reused_id)
            if reused is None:
                continue  # candidate not installed (lost later widening races)
            needed = result.plan and deployment.queries[result.query].properties.input_for(
                plan.input_stream
            )
            assert (
                reused.content == needed
                or match_stream_properties(reused.content, needed)
            ), result.query

    def test_aggregate_queries_share_aggregates(self, sharing_run):
        """At least one aggregation query reuses another's result stream
        (the template window lattice guarantees compatible pairs)."""
        reaggregations = [
            r.query
            for r in sharing_run.registrations
            if any(
                spec.kind == "reaggregation"
                for spec in r.plan.inputs[0].delivered.pipeline
            )
        ]
        exact_aggregate_reuses = [
            r.query
            for r in sharing_run.registrations
            if r.plan.inputs[0].reused_id != "photons"
            and not r.plan.inputs[0].delivered.pipeline
        ]
        assert reaggregations or exact_aggregate_reuses

    def test_stream_count_bounded(self, sharing_run):
        """Sharing keeps the stream population small: at most original +
        relay/delivered pairs per query."""
        streams = sharing_run.system.deployment.streams
        assert len(streams) <= 1 + 2 * len(sharing_run.registrations)

    def test_every_super_peer_route_starts_on_parent(self, sharing_run):
        deployment = sharing_run.system.deployment
        for stream in deployment.streams.values():
            if stream.parent_id is None:
                continue
            parent = deployment.streams[stream.parent_id]
            assert stream.origin_node in parent.route


class TestCrossStrategyInvariants:
    def test_sharing_installs_fewest_streams(self):
        runs = {
            strategy: run_scenario(scenario_one(), strategy, execute=False)
            for strategy in ("data-shipping", "query-shipping", "stream-sharing")
        }
        counts = {
            strategy: len(run.system.deployment.streams)
            for strategy, run in runs.items()
        }
        assert counts["stream-sharing"] <= counts["query-shipping"]
        assert counts["stream-sharing"] <= counts["data-shipping"]

    def test_estimated_usage_reflects_strategy(self):
        """The committed (estimated) usage ledger mirrors the measured
        ordering: data shipping commits the most bandwidth."""
        totals = {}
        for strategy in ("data-shipping", "stream-sharing"):
            run = run_scenario(scenario_one(), strategy, execute=False)
            usage = run.system.deployment.usage
            totals[strategy] = sum(usage._link_bits.values())
        assert totals["stream-sharing"] < totals["data-shipping"]