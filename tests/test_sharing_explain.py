"""Tests for plan explanations."""

import pytest

from tests.conftest import PAPER_QUERIES, make_system
from repro.sharing.explain import (
    describe_operator,
    explain_deployment,
    explain_registration,
)


@pytest.fixture()
def system_with_queries():
    system = make_system("stream-sharing")
    for name, peer in [("Q1", "P1"), ("Q2", "P2"), ("Q3", "P3"), ("Q4", "P4")]:
        system.register_query(name, PAPER_QUERIES[name], peer)
    return system


class TestExplainRegistration:
    def test_original_stream_use(self, system_with_queries):
        text = explain_registration(
            system_with_queries.results[0], system_with_queries.deployment
        )
        assert "subscription 'Q1'" in text
        assert "original stream at SP4" in text
        assert "selection" in text and "projection" in text
        assert "SP4 -> SP5 -> SP1" in text

    def test_sharing_explained(self, system_with_queries):
        text = explain_registration(
            system_with_queries.results[1], system_with_queries.deployment
        )
        assert "SHARES stream 'Q1:photons'" in text
        assert "(created for Q1)" in text

    def test_reaggregation_explained(self, system_with_queries):
        text = explain_registration(
            system_with_queries.results[3], system_with_queries.deployment
        )
        assert "re-aggregation" in text
        assert "merge 3 reused window(s)" in text

    def test_search_telemetry_included(self, system_with_queries):
        text = explain_registration(
            system_with_queries.results[1], system_with_queries.deployment
        )
        assert "search visited" in text
        assert "ms (simulated)" in text

    def test_rejection_explained(self):
        from repro.bench.harness import scale_network
        from repro.network.topology import example_topology
        from repro.sharing import StreamGlobe
        from repro.workload.photons import PhotonGenerator, PhotonStreamConfig

        net = scale_network(example_topology(), link_bandwidth=50_000.0)
        config = PhotonStreamConfig(seed=1, frequency=100.0)
        system = StreamGlobe(net, strategy="data-shipping", admission_control=True)
        system.register_stream(
            "photons", "photons/photon", lambda: PhotonGenerator(config),
            frequency=100.0, source_peer="P0",
        )
        result = system.register_query("q", PAPER_QUERIES["Q1"], "P1")
        text = explain_registration(result, system.deployment)
        assert "REJECTED" in text


class TestExplainDeployment:
    def test_lists_all_streams(self, system_with_queries):
        text = explain_deployment(system_with_queries.deployment)
        assert "photons: original" in text
        assert "Q1:photons" in text
        assert "registered subscriptions: Q1, Q2, Q3, Q4" in text

    def test_empty_deployment(self):
        from repro.network.topology import example_topology
        from repro.sharing.plan import Deployment

        text = explain_deployment(Deployment(example_topology()))
        assert "none" in text


class TestDescribeOperator:
    def test_all_spec_kinds_described(self, paper_properties):
        q1 = paper_properties["Q1"].single_input()
        q3 = paper_properties["Q3"].single_input()
        assert "σ" in describe_operator(q1.selection)
        assert "π" in describe_operator(q1.projection)
        assert "Φ" in describe_operator(q3.aggregation)

    def test_udf_described(self):
        from repro.properties import UdfSpec

        assert "user-defined" in describe_operator(UdfSpec("f", ("a",)))
