"""Tests for the command-line entry points."""

import io

import pytest

from tests.conftest import PAPER_QUERIES


class TestWXQueryCli:
    def _run(self, command, text, tmp_path):
        from repro.wxquery.__main__ import main

        path = tmp_path / "query.xq"
        path.write_text(text)
        out = io.StringIO()
        code = main([command, str(path)], out=out)
        return code, out.getvalue()

    def test_check_valid(self, tmp_path):
        code, output = self._run("check", PAPER_QUERIES["Q1"], tmp_path)
        assert code == 0
        assert "OK" in output

    def test_check_invalid(self, tmp_path):
        from repro.wxquery.__main__ import main

        path = tmp_path / "bad.xq"
        path.write_text("<a>{ for $p in }</a>")
        assert main(["check", str(path)]) == 1

    def test_missing_file(self):
        from repro.wxquery.__main__ import main

        assert main(["check", "/nonexistent/query.xq"]) == 2

    def test_ast_round_trips(self, tmp_path):
        from repro.wxquery import parse_query

        code, output = self._run("ast", PAPER_QUERIES["Q2"], tmp_path)
        assert code == 0
        assert parse_query(output).body == parse_query(PAPER_QUERIES["Q2"]).body

    def test_info_lists_bindings(self, tmp_path):
        code, output = self._run("info", PAPER_QUERIES["Q4"], tmp_path)
        assert code == 0
        assert "$w: for over photons" in output
        assert "$a: let" in output
        assert "aggregate filters:" in output

    def test_props_shows_operators(self, tmp_path):
        code, output = self._run("props", PAPER_QUERIES["Q3"], tmp_path)
        assert code == 0
        assert "selection:" in output
        assert "aggregation:" in output
        assert "predicate graph edges:" in output

    def test_props_raw_stream(self, tmp_path):
        code, output = self._run(
            "props", '<r>{ for $p in stream("s")/a/b return $p }</r>', tmp_path
        )
        assert code == 0
        assert "raw" in output


class TestBenchCli:
    def test_rejection_command_runs(self, capsys):
        from repro.bench.__main__ import main

        assert main(["rejection"]) == 0
        output = capsys.readouterr().out
        assert "Stream Sharing" in output
        assert "Rejected" in output

    def test_table1_command_runs(self, capsys):
        from repro.bench.__main__ import main

        assert main(["table1"]) == 0
        output = capsys.readouterr().out
        assert "Query registration times" in output

    def test_caches_command_runs(self, capsys):
        from repro.bench.__main__ import main

        assert main(["caches"]) == 0
        output = capsys.readouterr().out
        assert "Cache hit rate" in output
        assert "Planner phase wall time" in output

    def test_unknown_experiment_rejected(self):
        from repro.bench.__main__ import main

        with pytest.raises(SystemExit):
            main(["figure99"])


class TestBenchSchemas:
    def test_micro_report_carries_cache_hit_rates(self):
        from repro.bench.micro import run_benchmark

        report = run_benchmark(["smoke"], repeats=1)
        entry = report["scenarios"]["smoke"]
        assert set(entry["cache_hit_rate"]) == {"route", "rate", "match"}
        assert all(0.0 <= v <= 1.0 for v in entry["cache_hit_rate"].values())
