"""Every benchmark scenario's deployment passes the plan verifier.

Registration-only (no execution) and with reduced query counts so the
tier-1 suite stays fast; the full-size gate runs in the benchmark
suite's fixtures and in ``python -m repro.analysis --plan``.
"""

from __future__ import annotations

import pytest

from repro.analysis import build_verified_system
from repro.sharing.strategies import STRATEGIES
from repro.workload.scenarios import scenario_grid, scenario_one, scenario_two


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_scenario_one_verifies_clean(strategy):
    report = build_verified_system(scenario_one(query_count=10), strategy)
    assert report.ok, report.render()


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_scenario_two_verifies_clean(strategy):
    report = build_verified_system(scenario_two(query_count=16), strategy)
    assert report.ok, report.render()


def test_grid_scenario_verifies_clean():
    scenario = scenario_grid(rows=3, cols=3, query_count=12)
    report = build_verified_system(scenario, "stream-sharing")
    assert report.ok, report.render()
