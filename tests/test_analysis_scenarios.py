"""Every benchmark scenario's deployment passes the plan verifier.

Registration-only (no execution) and with reduced query counts so the
tier-1 suite stays fast; the full-size gate runs in the benchmark
suite's fixtures and in ``python -m repro.analysis --plan``.
"""

from __future__ import annotations

import pytest

from repro.analysis import build_churned_system, build_verified_system
from repro.sharing.strategies import STRATEGIES
from repro.workload.scenarios import (
    scenario_churn,
    scenario_grid,
    scenario_one,
    scenario_two,
)


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_scenario_one_verifies_clean(strategy):
    report = build_verified_system(scenario_one(query_count=10), strategy)
    assert report.ok, report.render()


@pytest.mark.parametrize("strategy", STRATEGIES)
def test_scenario_two_verifies_clean(strategy):
    report = build_verified_system(scenario_two(query_count=16), strategy)
    assert report.ok, report.render()


def test_grid_scenario_verifies_clean():
    scenario = scenario_grid(rows=3, cols=3, query_count=12)
    report = build_verified_system(scenario, "stream-sharing")
    assert report.ok, report.render()


def test_churn_scenario_verifies_after_every_repair():
    scenario = scenario_churn(query_count=6)
    reports = build_churned_system(scenario, "stream-sharing")
    assert len(reports) == len(scenario.faults)
    for report in reports:
        assert report.ok, report.render()


def test_churn_gate_requires_a_fault_schedule():
    with pytest.raises(ValueError, match="no fault schedule"):
        build_churned_system(scenario_one(query_count=2), "stream-sharing")
