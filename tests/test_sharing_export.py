"""Tests for the deployment JSON export."""

import json

import pytest

from tests.conftest import PAPER_QUERIES, make_system
from repro.sharing.export import (
    deployment_to_dict,
    deployment_to_json,
    operator_to_dict,
)


@pytest.fixture()
def exported():
    system = make_system("stream-sharing")
    for name, peer in [("Q1", "P1"), ("Q2", "P2"), ("Q3", "P3"), ("Q4", "P4")]:
        system.register_query(name, PAPER_QUERIES[name], peer)
    return deployment_to_dict(system.deployment), system


class TestDeploymentExport:
    def test_is_json_serializable(self, exported):
        data, system = exported
        text = deployment_to_json(system.deployment)
        assert json.loads(text) == json.loads(json.dumps(data, sort_keys=True))

    def test_all_streams_exported(self, exported):
        data, system = exported
        ids = {stream["id"] for stream in data["streams"]}
        assert ids == set(system.deployment.streams)

    def test_original_stream_shape(self, exported):
        data, _ = exported
        original = next(s for s in data["streams"] if s["id"] == "photons")
        assert original["parent"] is None
        assert original["pipeline"] == []
        assert original["content"]["operators"] == []

    def test_derived_stream_shape(self, exported):
        data, _ = exported
        q1 = next(s for s in data["streams"] if s["id"] == "Q1:photons")
        assert q1["parent"] == "photons"
        kinds = [op["kind"] for op in q1["pipeline"]]
        assert kinds == ["selection", "projection"]
        assert "coord/cel/ra >= 120" in q1["pipeline"][0]["predicate"]

    def test_reaggregation_exported(self, exported):
        data, _ = exported
        q4 = next(s for s in data["streams"] if s["id"] == "Q4:photons")
        (op,) = q4["pipeline"]
        assert op["kind"] == "reaggregation"
        assert "diff 20 step 10" in op["reused_window"]
        assert "diff 60 step 40" in op["new_window"]

    def test_subscriptions_exported(self, exported):
        data, _ = exported
        names = {sub["name"] for sub in data["subscriptions"]}
        assert names == {"Q1", "Q2", "Q3", "Q4"}
        q2 = next(sub for sub in data["subscriptions"] if sub["name"] == "Q2")
        assert q2["delivered"] == [{"input": "photons", "stream": "Q2:photons"}]

    def test_usage_fractions_present(self, exported):
        data, _ = exported
        assert any(peer["used_load_fraction"] > 0 for peer in data["super_peers"])
        assert any(link["used_bandwidth_fraction"] > 0 for link in data["links"])


class TestOperatorExport:
    def test_udf(self):
        from repro.properties import UdfSpec

        assert operator_to_dict(UdfSpec("f", ("a", "b"))) == {
            "kind": "udf", "name": "f", "parameters": ["a", "b"],
        }

    def test_restructure(self):
        from repro.properties import RestructureSpec

        assert operator_to_dict(RestructureSpec("Q9"))["query"] == "Q9"

    def test_window_contents(self):
        from fractions import Fraction

        from repro.properties import WindowContentsSpec, WindowSpec

        spec = WindowContentsSpec(WindowSpec("count", Fraction(4), Fraction(2)))
        assert operator_to_dict(spec) == {"kind": "window", "window": "|count 4 step 2|"}
