"""Unit tests for the run-metrics collectors."""

import pytest

from repro.engine.metrics import RunMetrics
from repro.network.topology import example_topology


@pytest.fixture()
def net():
    return example_topology()


@pytest.fixture()
def metrics(net):
    m = RunMetrics(duration=10.0)
    link = net.link("SP4", "SP5")
    m.add_link_bits(link, 1_000_000.0)
    m.add_link_bits(link, 500_000.0)
    m.add_peer_work("SP4", 2_000_000.0)
    m.count_delivery("Q1", 42)
    m.count_generated("photons", 1000)
    return m


class TestAccumulation:
    def test_link_bits_accumulate(self, metrics, net):
        assert metrics.link_bits[("SP4", "SP5")] == 1_500_000.0

    def test_peer_work_accumulates(self, metrics):
        metrics.add_peer_work("SP4", 1.0)
        assert metrics.peer_work["SP4"] == 2_000_001.0

    def test_delivery_counts(self, metrics):
        metrics.count_delivery("Q1", 8)
        assert metrics.items_delivered["Q1"] == 50

    def test_generation_counts(self, metrics):
        assert metrics.items_generated["photons"] == 1000


class TestDerivedFigures:
    def test_link_kbps(self, metrics, net):
        link = net.link("SP4", "SP5")
        # 1.5 Mbit over 10 s = 150 kbit/s.
        assert metrics.link_kbps(link) == pytest.approx(150.0)

    def test_unused_link_is_zero(self, metrics, net):
        assert metrics.link_kbps(net.link("SP0", "SP2")) == 0.0

    def test_peer_cpu_percent(self, metrics, net):
        # 2 M units over 10 s on a 1 M units/s peer = 20 %.
        assert metrics.peer_cpu_percent(net, "SP4") == pytest.approx(20.0)

    def test_idle_peer_is_zero(self, metrics, net):
        assert metrics.peer_cpu_percent(net, "SP0") == 0.0

    def test_accumulated_mbit_counts_both_endpoints(self, metrics, net):
        assert metrics.peer_accumulated_mbit(net, "SP4") == pytest.approx(1.5)
        assert metrics.peer_accumulated_mbit(net, "SP5") == pytest.approx(1.5)
        assert metrics.peer_accumulated_mbit(net, "SP0") == 0.0

    def test_total_mbit(self, metrics):
        assert metrics.total_mbit() == pytest.approx(1.5)

    def test_peer_accumulated_mbit_in_out(self, net):
        """Pin the in+out convention (referenced by the docstring).

        Every link's bits count toward *both* endpoints, so a relay
        peer is charged for its inbound and outbound legs, and summing
        the per-peer figures over the whole network double-counts every
        transferred bit — exactly twice :meth:`total_mbit`.
        """
        m = RunMetrics(duration=10.0)
        # SP4 -> SP5 -> SP1: one 2-hop transfer of 1 MBit per leg.
        m.add_link_bits(net.link("SP4", "SP5"), 1_000_000.0)
        m.add_link_bits(net.link("SP5", "SP1"), 1_000_000.0)
        # Endpoint peers are charged once, the relay peer for both legs.
        assert m.peer_accumulated_mbit(net, "SP4") == pytest.approx(1.0)
        assert m.peer_accumulated_mbit(net, "SP5") == pytest.approx(2.0)
        assert m.peer_accumulated_mbit(net, "SP1") == pytest.approx(1.0)
        total_over_peers = sum(
            m.peer_accumulated_mbit(net, name) for name in net.super_peer_names()
        )
        assert total_over_peers == pytest.approx(2.0 * m.total_mbit())

    def test_series_cover_whole_network(self, metrics, net):
        assert len(metrics.cpu_series(net)) == len(net)
        assert len(metrics.traffic_series(net)) == len(net.links())

    def test_series_values_match_point_queries(self, metrics, net):
        cpu = dict(metrics.cpu_series(net))
        assert cpu["SP4"] == metrics.peer_cpu_percent(net, "SP4")
        traffic = dict(metrics.traffic_series(net))
        assert traffic["SP4-SP5"] == metrics.link_kbps(net.link("SP4", "SP5"))
