"""Unit tests for selection, projection, evaluation, and pipelines."""

from fractions import Fraction

import pytest

from repro.engine import (
    Pipeline,
    ProjectOperator,
    SelectOperator,
    build_operator,
    item_number,
    satisfies,
)
from repro.engine.operators import EngineError
from repro.predicates import PredicateGraph, normalize_comparison
from repro.properties import ProjectionSpec, RestructureSpec, SelectionSpec
from repro.xmlkit import Element, Path, element

ITEM = Path("photons/photon")
RA = ITEM / "coord/cel/ra"
EN = ITEM / "en"


def photon(ra=130.0, en=1.5):
    return element(
        "photon",
        element("coord", element("cel", element("ra", text=ra), element("dec", text=-45.0))),
        element("en", text=en),
        element("det_time", text=1.0),
    )


def graph(*specs):
    atoms = []
    for path, op, const in specs:
        atoms.extend(normalize_comparison(path, op, None, Fraction(str(const))))
    return PredicateGraph(atoms)


class TestEval:
    def test_item_number(self):
        assert item_number(photon(), RA, ITEM) == 130.0
        assert item_number(photon(), ITEM / "missing", ITEM) is None

    def test_satisfies_bounds(self):
        g = graph((RA, ">=", 120), (RA, "<=", 138))
        assert satisfies(photon(ra=130.0), g, ITEM)
        assert not satisfies(photon(ra=150.0), g, ITEM)

    def test_boundary_inclusive_vs_strict(self):
        assert satisfies(photon(ra=138.0), graph((RA, "<=", 138)), ITEM)
        assert not satisfies(photon(ra=138.0), graph((RA, "<", 138)), ITEM)

    def test_missing_operand_fails_conjunction(self):
        g = graph((ITEM / "nope", ">=", 0))
        assert not satisfies(photon(), g, ITEM)

    def test_variable_comparison(self):
        g = PredicateGraph(normalize_comparison(EN, "<=", RA, Fraction(0)))
        assert satisfies(photon(ra=130.0, en=1.5), g, ITEM)

    def test_empty_graph_accepts_all(self):
        assert satisfies(photon(), PredicateGraph(), ITEM)


class TestSelectOperator:
    def test_filters(self):
        op = SelectOperator(graph((EN, ">=", "1.3")), ITEM)
        assert op.process(photon(en=1.5)) == [photon(en=1.5)]
        assert op.process(photon(en=1.0)) == []

    def test_observed_selectivity(self):
        op = SelectOperator(graph((EN, ">=", "1.3")), ITEM)
        for en in (1.5, 1.0, 2.0, 0.5):
            op.process(photon(en=en))
        assert op.observed_selectivity == 0.5

    def test_selectivity_before_input(self):
        assert SelectOperator(PredicateGraph(), ITEM).observed_selectivity == 1.0


class TestProjectOperator:
    def test_projects(self):
        op = ProjectOperator(frozenset({EN}), ITEM)
        (projected,) = op.process(photon())
        assert projected == element("photon", element("en", text=1.5))

    def test_drops_empty_items(self):
        op = ProjectOperator(frozenset({ITEM / "missing"}), ITEM)
        assert op.process(photon()) == []


class TestBuildOperator:
    def test_builds_selection(self):
        op = build_operator(SelectionSpec(graph((EN, ">=", 1))), ITEM)
        assert op.kind == "selection"

    def test_builds_projection(self):
        spec = ProjectionSpec(frozenset({EN}), frozenset({EN}))
        assert build_operator(spec, ITEM).kind == "projection"

    def test_restructure_needs_restructurer(self):
        with pytest.raises(EngineError):
            build_operator(RestructureSpec("Q1"), ITEM)

    def test_unknown_spec_rejected(self):
        with pytest.raises(EngineError):
            build_operator(object(), ITEM)


class TestPipeline:
    def test_chains_operators(self):
        pipeline = Pipeline.from_specs(
            [
                SelectionSpec(graph((EN, ">=", "1.3"))),
                ProjectionSpec(frozenset({EN}), frozenset({EN})),
            ],
            ITEM,
        )
        assert pipeline.process(photon(en=1.5)) == [
            element("photon", element("en", text=1.5))
        ]
        assert pipeline.process(photon(en=1.0)) == []

    def test_input_counts_track_stage_inputs(self):
        pipeline = Pipeline.from_specs(
            [
                SelectionSpec(graph((EN, ">=", "1.3"))),
                ProjectionSpec(frozenset({EN}), frozenset({EN})),
            ],
            ITEM,
        )
        pipeline.process(photon(en=1.5))
        pipeline.process(photon(en=1.0))
        assert pipeline.input_counts == [2, 1]

    def test_empty_pipeline(self):
        pipeline = Pipeline([])
        item = photon()
        assert pipeline.process(item) == [item]
        assert len(pipeline) == 0

    def test_short_circuits_after_empty_stage(self):
        pipeline = Pipeline.from_specs(
            [
                SelectionSpec(graph((EN, ">=", 100))),  # drops everything
                ProjectionSpec(frozenset({EN}), frozenset({EN})),
            ],
            ITEM,
        )
        pipeline.process(photon())
        assert pipeline.input_counts == [1, 0]
