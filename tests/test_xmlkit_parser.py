"""Unit tests for the strict XML parser."""

import pytest

from repro.xmlkit import Element, XmlParseError, element, parse, parse_stream, serialize


class TestWellFormed:
    def test_empty_element(self):
        assert parse("<a/>") == Element("a")

    def test_text_element(self):
        assert parse("<a>hello</a>") == Element("a", text="hello")

    def test_nested(self):
        assert parse("<a><b/><c>1</c></a>") == element(
            "a", Element("b"), Element("c", text="1")
        )

    def test_whitespace_between_children_ignored(self):
        assert parse("<a>\n  <b/>\n  <c/>\n</a>") == element("a", Element("b"), Element("c"))

    def test_open_close_without_content_is_empty(self):
        assert parse("<a></a>") == Element("a")

    def test_xml_declaration_skipped(self):
        assert parse('<?xml version="1.0"?><a/>') == Element("a")

    def test_comments_skipped(self):
        assert parse("<!-- hi --><a><!-- inner --><b/></a>") == element("a", Element("b"))

    def test_entities_decoded(self):
        assert parse("<a>x &lt; y &amp; z &gt; w</a>").text == "x < y & z > w"

    def test_char_references(self):
        assert parse("<a>&#65;&#x42;</a>").text == "AB"

    def test_roundtrip_photons(self, photon_sample):
        for item in photon_sample[:25]:
            assert parse(serialize(item)) == item


class TestMalformed:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "just text",
            "<a>",
            "<a><b></a>",
            "<a></b>",
            "<a/><b/>",          # content after root
            "<a attr='1'/>",     # attributes unsupported
            "<a>&unknown;</a>",
            "<a>&broken</a>",
            "<a>text<b/></a>",   # mixed content
            "<!-- unterminated <a/>",
            "<?xml version='1.0' <a/>",
        ],
    )
    def test_rejected(self, text):
        with pytest.raises(XmlParseError):
            parse(text)

    def test_error_has_position(self):
        try:
            parse("<a>\n<b></c>\n</a>")
        except XmlParseError as err:
            assert err.line == 2
        else:
            pytest.fail("expected XmlParseError")


class TestParseStream:
    def test_multiple_items(self):
        items = parse_stream("<a/><b>1</b><c/>")
        assert [i.tag for i in items] == ["a", "b", "c"]

    def test_whitespace_separated(self):
        assert len(parse_stream("<a/>\n\n<b/>\n")) == 2

    def test_empty_input(self):
        assert parse_stream("   ") == []

    def test_bad_item_rejected(self):
        with pytest.raises(XmlParseError):
            parse_stream("<a/>text<b/>")
