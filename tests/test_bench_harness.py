"""Tests for the benchmark harness and report rendering.

These use a reduced scenario (fewer queries, short duration) so the
full-size runs stay in ``benchmarks/``.
"""

import pytest

from repro.bench import (
    ScenarioRun,
    cache_report,
    cpu_report,
    planner_phase_report,
    registration_table,
    rejection_report,
    run_scenario,
    scale_network,
    series_table,
    traffic_report,
)
from repro.network.topology import example_topology
from repro.workload.scenarios import Scenario, scenario_one


@pytest.fixture(scope="module")
def small_scenario():
    scenario = scenario_one(query_count=6)
    scenario.duration = 10.0
    return scenario


@pytest.fixture(scope="module")
def small_runs(small_scenario):
    return {
        strategy: run_scenario(small_scenario, strategy)
        for strategy in ("data-shipping", "query-shipping", "stream-sharing")
    }


class TestScaleNetwork:
    def test_capacity_scaled(self):
        scaled = scale_network(example_topology(), capacity_factor=0.1)
        assert scaled.super_peer("SP0").capacity == pytest.approx(100_000.0)

    def test_bandwidth_override(self):
        scaled = scale_network(example_topology(), link_bandwidth=1_000_000.0)
        assert all(link.bandwidth == 1_000_000.0 for link in scaled.links())

    def test_structure_preserved(self):
        original = example_topology()
        scaled = scale_network(original, 0.5, 2_000_000.0)
        assert len(scaled) == len(original)
        assert len(scaled.links()) == len(original.links())
        assert scaled.home_of("P0") == "SP4"


class TestRunScenario:
    def test_all_queries_registered(self, small_runs, small_scenario):
        for run in small_runs.values():
            assert len(run.registrations) == len(small_scenario.queries)
            assert run.accepted == len(small_scenario.queries)

    def test_sharing_total_traffic_is_lowest(self, small_runs):
        totals = {s: r.total_traffic_mbit() for s, r in small_runs.items()}
        assert totals["stream-sharing"] <= totals["query-shipping"]
        assert totals["query-shipping"] < totals["data-shipping"]

    def test_query_shipping_peaks_at_source(self, small_runs):
        cpu = small_runs["query-shipping"].cpu_by_peer()
        assert max(cpu, key=cpu.get) == "SP4"

    def test_registration_stats(self, small_runs):
        average, minimum, maximum = small_runs["stream-sharing"].registration_stats_ms()
        assert minimum <= average <= maximum

    def test_execute_false_skips_metrics(self, small_scenario):
        run = run_scenario(small_scenario, "data-shipping", execute=False)
        assert run.metrics is None
        assert run.accepted > 0

    def test_deliveries_identical_across_strategies(self, small_runs):
        reference = small_runs["data-shipping"].metrics.items_delivered
        for run in small_runs.values():
            assert run.metrics.items_delivered == reference


class TestReports:
    def test_series_table_renders(self):
        table = series_table("X", "unit", {"data-shipping": {"a": 1.0, "b": 2.5}})
        assert "Data Shipping" in table
        assert "2.50" in table

    def test_cpu_and_traffic_reports(self, small_runs):
        assert "SP4" in cpu_report(small_runs)
        assert "SP4-SP5" in traffic_report(small_runs)

    def test_registration_table(self, small_runs):
        table = registration_table({"1": small_runs})
        assert "Stream Sharing" in table
        assert "Average 1" in table

    def test_rejection_report(self, small_runs):
        report = rejection_report(small_runs)
        assert "Accepted" in report


class TestObservabilityReports:
    def test_cache_hit_rates_always_available(self, small_runs):
        rates = small_runs["stream-sharing"].cache_hit_rates()
        assert set(rates) == {"route", "rate", "match"}
        assert all(0.0 <= rate <= 1.0 for rate in rates.values())

    def test_cache_report_renders(self, small_runs):
        report = cache_report(small_runs)
        assert "Cache hit rate" in report
        assert "route" in report and "Stream Sharing" in report

    def test_planner_phase_seconds_empty_when_untraced(self, small_scenario):
        # Pin the null recorder: REPRO_OBS_TRACE=1 in the environment
        # would otherwise trace this run too.
        from repro.obs import NULL_RECORDER

        run = run_scenario(
            small_scenario, "stream-sharing", execute=False, recorder=NULL_RECORDER
        )
        assert run.planner_phase_seconds() == {}

    def test_planner_phase_report_needs_a_trace(self, small_scenario):
        from repro.obs import NULL_RECORDER

        runs = {
            "stream-sharing": run_scenario(
                small_scenario, "stream-sharing", execute=False, recorder=NULL_RECORDER
            )
        }
        assert "none" in planner_phase_report(runs)

    def test_planner_phase_report_on_traced_run(self, small_scenario):
        from repro.obs import Recorder

        runs = {
            "stream-sharing": run_scenario(
                small_scenario, "stream-sharing", execute=False, recorder=Recorder()
            )
        }
        phases = runs["stream-sharing"].planner_phase_seconds()
        for name in ("register", "parse", "analyze", "plan", "search", "commit"):
            assert phases[name] > 0.0
        report = planner_phase_report(runs)
        assert "Planner phase wall time" in report
        assert report.index("register") < report.index("search")


class TestEmptyScenario:
    def test_no_queries(self):
        scenario = Scenario(
            name="empty", network_factory=example_topology, duration=1.0
        )
        run = run_scenario(scenario, "stream-sharing")
        assert run.registrations == []
        assert isinstance(run, ScenarioRun)
        assert run.registration_stats_ms() == (0.0, 0.0, 0.0)
