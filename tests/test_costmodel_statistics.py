"""Unit tests for the statistics catalog and selectivity estimation."""

from fractions import Fraction

import pytest

from repro.costmodel import MIN_SELECTIVITY, StatisticsCatalog, StreamStatistics
from repro.predicates import PredicateGraph, normalize_comparison
from repro.workload.photons import PhotonGenerator, PhotonStreamConfig, VELA_REGION
from repro.xmlkit import Path

ITEM = Path("photons/photon")
RA = ITEM / "coord/cel/ra"
DEC = ITEM / "coord/cel/dec"
EN = ITEM / "en"
TIME = ITEM / "det_time"


def selection_graph(*specs):
    atoms = []
    for path, op, const in specs:
        atoms.extend(normalize_comparison(path, op, None, Fraction(str(const))))
    return PredicateGraph(atoms)


class TestFromSample:
    def test_basic_shape(self, photon_stats):
        assert photon_stats.stream == "photons"
        assert photon_stats.frequency == 100.0
        assert photon_stats.avg_item_size > 100

    def test_occurrences_are_one_for_dtd_elements(self, photon_stats):
        for path in (RA, DEC, EN, TIME, ITEM / "phc"):
            assert photon_stats.path_stats(path).occurrence == 1.0

    def test_value_ranges_inside_configured_strip(self, photon_stats):
        low, high = photon_stats.value_range(RA)
        assert 100.0 <= low < high <= 160.0

    def test_avg_increment_positive_for_det_time(self, photon_stats):
        increment = photon_stats.avg_increment(TIME)
        assert increment is not None and increment > 0
        # frequency 100 items/s → mean increment ≈ 0.01
        assert increment == pytest.approx(0.01, rel=0.2)

    def test_no_increment_for_structural_path(self, photon_stats):
        assert photon_stats.avg_increment(ITEM / "coord") is None

    def test_unknown_path_raises(self, photon_stats):
        with pytest.raises(KeyError):
            photon_stats.path_stats(ITEM / "nope")
        assert not photon_stats.has_path(ITEM / "nope")

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            StreamStatistics.from_sample("s", ITEM, [], 1.0)

    def test_nonpositive_frequency_rejected(self, photon_sample):
        with pytest.raises(ValueError):
            StreamStatistics.from_sample("s", ITEM, photon_sample, 0.0)


class TestProjectedSize:
    def test_projection_shrinks(self, photon_stats):
        projected = photon_stats.projected_size({EN, TIME})
        assert projected < photon_stats.avg_item_size

    def test_full_projection_equals_item_size(self, photon_stats):
        all_paths = {
            ITEM / "phc", ITEM / "coord", EN, TIME,
        }
        assert photon_stats.projected_size(all_paths) == pytest.approx(
            photon_stats.avg_item_size
        )

    def test_matches_paper_formula(self, photon_stats):
        """Measured pruning and the paper's subtraction formula agree."""
        for outputs in (
            {EN, TIME},
            {RA, DEC, EN, TIME},
            {ITEM / "coord/cel", EN},
            {ITEM / "phc"},
        ):
            measured = photon_stats.projected_size(outputs)
            formula = photon_stats.paper_projected_size(outputs)
            assert measured == pytest.approx(formula, rel=0.01), outputs

    def test_path_outside_item_rejected(self, photon_stats):
        with pytest.raises(KeyError):
            photon_stats.projected_size({Path("other/stream/x")})


class TestSelectivity:
    def test_empty_graph_is_one(self, photon_stats):
        assert photon_stats.selectivity(PredicateGraph()) == 1.0

    def test_full_range_is_near_one(self, photon_stats):
        graph = selection_graph((RA, ">=", 0), (RA, "<=", 1000))
        # Histogram mass summation accumulates float rounding.
        assert photon_stats.selectivity(graph) == pytest.approx(1.0, abs=1e-9)

    def test_vela_region_underestimated_but_usable(self, photon_stats, photon_config):
        """The uniform-independence model underestimates hot-spot regions
        (the generator concentrates photons at the vela remnant) but
        stays within usable planning bounds — the same estimator error
        the paper's catalog-based system would exhibit."""
        graph = selection_graph(
            (RA, ">=", VELA_REGION.ra_min),
            (RA, "<=", VELA_REGION.ra_max),
            (DEC, ">=", VELA_REGION.dec_min),
            (DEC, "<=", VELA_REGION.dec_max),
        )
        estimated = photon_stats.selectivity(graph)
        sample = PhotonGenerator(photon_config).take(2000)
        observed = sum(
            1 for item in sample
            if VELA_REGION.contains(
                float(item.find(["coord", "cel", "ra"]).text),
                float(item.find(["coord", "cel", "dec"]).text),
            )
        ) / len(sample)
        assert 0.0 < estimated < observed  # underestimates the hot spot
        assert estimated > 0.01            # but not absurdly so

    def test_tighter_predicate_has_smaller_selectivity(self, photon_stats):
        wide = selection_graph((RA, ">=", 120), (RA, "<=", 138))
        narrow = selection_graph((RA, ">=", 130), (RA, "<=", 132))
        assert photon_stats.selectivity(narrow) < photon_stats.selectivity(wide)

    def test_impossible_range_floors_at_minimum(self, photon_stats):
        graph = selection_graph((RA, ">=", 1000))
        assert photon_stats.selectivity(graph) == MIN_SELECTIVITY

    def test_unknown_variable_contributes_half(self, photon_stats):
        graph = selection_graph((ITEM / "coord", "<=", 1))  # no numeric stats
        assert photon_stats.selectivity(graph) == pytest.approx(0.5)

    def test_variable_comparison_contributes_half(self, photon_stats):
        atoms = normalize_comparison(RA, "<=", DEC, Fraction(0))
        graph = PredicateGraph(atoms)
        assert photon_stats.selectivity(graph) <= 0.5

    def test_cached_results_consistent(self, photon_stats):
        graph = selection_graph((EN, ">=", "1.3"))
        assert photon_stats.selectivity(graph) == photon_stats.selectivity(graph)


class TestCatalog:
    def test_register_and_lookup(self, photon_stats):
        catalog = StatisticsCatalog()
        catalog.register(photon_stats)
        assert catalog.for_stream("photons") is photon_stats
        assert "photons" in catalog
        assert catalog.streams() == ["photons"]

    def test_duplicate_registration_rejected(self, photon_stats):
        catalog = StatisticsCatalog()
        catalog.register(photon_stats)
        with pytest.raises(ValueError):
            catalog.register(photon_stats)

    def test_unknown_stream_raises(self):
        with pytest.raises(KeyError):
            StatisticsCatalog().for_stream("missing")
