"""Tests for user-defined operators: registry, execution, sharing."""

import pytest

from tests.conftest import make_system
from repro.engine import (
    DEFAULT_UDF_REGISTRY,
    Pipeline,
    UdfOperator,
    UdfRegistry,
    clear_default_registry,
)
from repro.engine.operators import EngineError, build_operator
from repro.properties import UdfSpec
from repro.xmlkit import Element, Path, element

ITEM = Path("photons/photon")


@pytest.fixture(autouse=True)
def clean_registry():
    clear_default_registry()
    yield
    clear_default_registry()


def scale_energy(item, factor):
    clone = item.copy()
    node = clone.find(["en"])
    if node is None:
        return []
    node.text = repr(float(node.text) * float(factor))
    return [clone]


def photon(en=1.0):
    return element("photon", element("en", text=en))


class TestRegistry:
    def test_register_and_resolve(self):
        registry = UdfRegistry()
        registry.register("scale", scale_energy)
        assert "scale" in registry
        assert registry.resolve("scale") is scale_energy
        assert registry.names() == ["scale"]

    def test_duplicate_rejected(self):
        registry = UdfRegistry()
        registry.register("scale", scale_energy)
        with pytest.raises(EngineError):
            registry.register("scale", scale_energy)

    def test_unknown_rejected(self):
        with pytest.raises(EngineError):
            UdfRegistry().resolve("nope")


class TestUdfOperator:
    def test_executes_with_parameters(self):
        DEFAULT_UDF_REGISTRY.register("scale", scale_energy)
        op = build_operator(UdfSpec("scale", ("2.0",)), ITEM)
        assert isinstance(op, UdfOperator)
        (out,) = op.process(photon(en=1.5))
        assert float(out.find(["en"]).text) == 3.0

    def test_non_list_return_rejected(self):
        DEFAULT_UDF_REGISTRY.register("bad", lambda item: item)
        op = UdfOperator(UdfSpec("bad"))
        with pytest.raises(EngineError):
            op.process(photon())

    def test_in_pipeline(self):
        DEFAULT_UDF_REGISTRY.register("scale", scale_energy)
        pipeline = Pipeline.from_specs([UdfSpec("scale", ("10",))], ITEM)
        (out,) = pipeline.process(photon(en=0.5))
        assert float(out.find(["en"]).text) == 5.0


class TestUdfStreamSharing:
    def test_install_and_find_shareable(self):
        DEFAULT_UDF_REGISTRY.register("scale", scale_energy)
        system = make_system("stream-sharing")
        spec = UdfSpec("scale", ("2.0",))
        installed = system.install_derived_stream(
            "photons-x2", "photons", [spec], target="P1"
        )
        assert installed.content.operators[-1] == spec

        # The identical UDF request is shareable; different parameters
        # are not (Algorithm 2, unknown operators).
        from repro.properties import StreamProperties

        same = StreamProperties("photons", ITEM, (spec,))
        other = StreamProperties("photons", ITEM, (UdfSpec("scale", ("3.0",)),))
        shareable = system.find_shareable_streams(same)
        assert any(s.stream_id == "photons-x2" for s in shareable)
        shareable_other = system.find_shareable_streams(other)
        assert all(s.stream_id != "photons-x2" for s in shareable_other)

    def test_udf_stream_never_serves_wxquery(self):
        """A WXQuery subscription has no UDF operator, so Algorithm 2
        refuses the UDF stream and the optimizer uses the original."""
        DEFAULT_UDF_REGISTRY.register("scale", scale_energy)
        system = make_system("stream-sharing")
        system.install_derived_stream("photons-x2", "photons", [UdfSpec("scale", ("2.0",))], target="P1")
        result = system.register_query(
            "q",
            '<photons>{ for $p in stream("photons")/photons/photon '
            "where $p/en >= 1.0 return <r> { $p/en } </r> }</photons>",
            "P1",
        )
        assert result.plan.inputs[0].reused_id == "photons"

    def test_udf_stream_executes_in_simulation(self):
        DEFAULT_UDF_REGISTRY.register("scale", scale_energy)
        system = make_system("stream-sharing")
        system.install_derived_stream(
            "photons-x2", "photons", [UdfSpec("scale", ("2.0",))], target="P1"
        )
        metrics = system.run(duration=5.0)
        # UDF work is charged at the source super-peer.
        assert metrics.peer_work["SP4"] > 0

    def test_bad_tap_node_rejected(self):
        system = make_system("stream-sharing")
        with pytest.raises(ValueError):
            system.install_derived_stream(
                "x", "photons", [UdfSpec("f")], target="P1", tap_node="SP0"
            )


class TestFuzzyOrderAggregation:
    def test_reorder_buffer_fixes_fuzzy_input(self):
        """Section 2's relaxation: a fixed-size buffer suffices to derive
        the total order before windowing."""
        from fractions import Fraction

        from repro.engine import WindowAggregateOperator, wire_to_partial
        from repro.predicates import PredicateGraph
        from repro.properties import AggregationSpec, WindowSpec

        spec = AggregationSpec(
            "sum",
            ITEM / "v",
            WindowSpec("diff", Fraction(2), Fraction(2), ITEM / "t"),
            PredicateGraph(),
            PredicateGraph(),
        )

        def item(t, v):
            return element("photon", element("t", text=float(t)), element("v", text=float(v)))

        # Slightly shuffled positions (swap distance 1).
        fuzzy = [item(t, 1.0) for t in (1, 0, 3, 2, 5, 4, 7, 6, 9, 8)]

        strict_op = WindowAggregateOperator(spec, ITEM)
        with pytest.raises(EngineError):
            for it in fuzzy:
                strict_op.process(it)

        buffered_op = WindowAggregateOperator(spec, ITEM, reorder_capacity=2)
        out = []
        for it in fuzzy:
            out.extend(buffered_op.process(it))
        out.extend(buffered_op.flush())
        sums = [wire_to_partial(w, "sum").total for w in out]
        assert sums == [2.0, 2.0, 2.0, 2.0, 2.0]
