"""Unit tests for plans and the deployment state."""

import pytest

from repro.costmodel import PlanEffects
from repro.network.topology import example_topology
from repro.properties import raw_stream_properties
from repro.sharing.plan import (
    Deployment,
    EvaluationPlan,
    InputPlan,
    InstalledStream,
)


def raw_content(name="photons"):
    return raw_stream_properties(name, "photons/photon").single_input()


def make_stream(stream_id="photons", origin="SP4", route=("SP4",), parent=None, **kw):
    return InstalledStream(
        stream_id=stream_id,
        content=raw_content(),
        origin_node=origin,
        route=route,
        parent_id=parent,
        **kw,
    )


class TestInstalledStream:
    def test_route_must_start_at_origin(self):
        with pytest.raises(ValueError):
            make_stream(route=("SP5", "SP1"))

    def test_empty_route_rejected(self):
        with pytest.raises(ValueError):
            make_stream(route=())

    def test_target_and_links(self):
        stream = make_stream(route=("SP4", "SP5", "SP1"))
        assert stream.target_node == "SP1"
        assert stream.links() == [("SP4", "SP5"), ("SP5", "SP1")]

    def test_originality(self):
        assert make_stream().is_original
        parent = make_stream()
        child = make_stream(stream_id="d", origin="SP4", route=("SP4", "SP5"), parent="photons")
        assert not child.is_original
        del parent


class TestDeployment:
    @pytest.fixture()
    def deployment(self):
        deployment = Deployment(example_topology())
        deployment.install_stream(make_stream(route=("SP4",)))
        return deployment

    def test_duplicate_stream_rejected(self, deployment):
        with pytest.raises(ValueError):
            deployment.install_stream(make_stream())

    def test_unknown_parent_rejected(self, deployment):
        with pytest.raises(ValueError):
            deployment.install_stream(
                make_stream(stream_id="child", parent="ghost", route=("SP4", "SP5"))
            )

    def test_availability_along_route(self, deployment):
        deployment.install_stream(
            make_stream(stream_id="derived", parent="photons", route=("SP4", "SP5", "SP1"))
        )
        for node in ("SP4", "SP5", "SP1"):
            ids = [s.stream_id for s in deployment.streams_at(node)]
            assert "derived" in ids
        assert all(s.stream_id != "derived" for s in deployment.streams_at("SP7"))

    def test_find_original(self, deployment):
        assert deployment.find_original("photons").stream_id == "photons"
        with pytest.raises(KeyError):
            deployment.find_original("missing")

    def test_commit_effects_accumulates(self, deployment):
        link = deployment.net.link("SP4", "SP5")
        effects = PlanEffects()
        effects.add_link(link, 1000.0)
        effects.add_peer("SP4", 10.0)
        deployment.commit_effects(effects)
        deployment.commit_effects(effects)
        assert deployment.usage.link_traffic(link) == 2000.0
        assert deployment.usage.peer_work("SP4") == 20.0

    def test_stream_lookup(self, deployment):
        assert deployment.stream("photons").stream_id == "photons"
        with pytest.raises(KeyError):
            deployment.stream("nope")


class TestReleaseStream:
    @pytest.fixture()
    def deployment(self):
        deployment = Deployment(example_topology())
        deployment.install_stream(make_stream(route=("SP4",)))
        deployment.install_stream(
            make_stream(stream_id="derived", parent="photons", route=("SP4", "SP5", "SP1"))
        )
        return deployment

    def test_release_removes_stream_and_index_entries(self, deployment):
        assert deployment.release_stream("derived") is True
        assert "derived" not in deployment.streams
        for node in ("SP4", "SP5", "SP1"):
            assert all(s.stream_id != "derived" for s in deployment.streams_at(node))

    def test_release_is_idempotent(self, deployment):
        assert deployment.release_stream("derived") is True
        assert deployment.release_stream("derived") is False
        assert deployment.release_stream("never-installed") is False

    def test_release_survives_missing_index_entries(self, deployment):
        """Atomicity: a partially missing availability index must not
        abort the release half way through."""
        deployment._available["SP5"].remove("derived")
        del deployment._available["SP1"]
        assert deployment.release_stream("derived") is True
        assert "derived" not in deployment.streams
        assert all(s.stream_id != "derived" for s in deployment.streams_at("SP4"))

    def test_reinstall_after_release(self, deployment):
        deployment.release_stream("derived")
        deployment.install_stream(
            make_stream(stream_id="derived", parent="photons", route=("SP4", "SP5"))
        )
        assert deployment.stream("derived").route == ("SP4", "SP5")


class TestEvaluationPlan:
    def _input_plan(self, pipeline=(), relay=None):
        delivered = InstalledStream(
            stream_id="q:photons",
            content=raw_content(),
            origin_node="SP4",
            route=("SP4", "SP5", "SP1"),
            parent_id="photons",
            pipeline=pipeline,
        )
        return InputPlan(
            input_stream="photons",
            reused_id="photons",
            tap_node="SP4",
            placement_node="SP4",
            relay=relay,
            delivered=delivered,
            effects=PlanEffects(),
            cost=1.0,
        )

    def test_operator_and_hop_counts(self):
        plan = EvaluationPlan(query="q", inputs=[self._input_plan()])
        assert plan.installed_operator_count() == 1  # just restructuring
        assert plan.route_hop_count() == 2

    def test_relay_counts_included(self):
        relay = InstalledStream(
            stream_id="q:photons:relay",
            content=raw_content(),
            origin_node="SP4",
            route=("SP4", "SP6"),
            parent_id="photons",
        )
        plan = EvaluationPlan(query="q", inputs=[self._input_plan(relay=relay)])
        assert plan.route_hop_count() == 3

    def test_total_cost_sums_inputs(self):
        plan = EvaluationPlan(query="q", inputs=[self._input_plan(), self._input_plan()])
        assert plan.total_cost() == 2.0

    def test_new_streams_order(self):
        relay = InstalledStream(
            stream_id="r",
            content=raw_content(),
            origin_node="SP4",
            route=("SP4", "SP6"),
            parent_id="photons",
        )
        input_plan = self._input_plan(relay=relay)
        assert [s.stream_id for s in input_plan.new_streams()] == ["r", "q:photons"]
