"""End-to-end tracing: control-plane spans, decision records, caches.

Also pins two behavioral guarantees of the instrumentation layer:

* a traced execution produces the *same* ``RunMetrics`` as an untraced
  one (the epoch-sampled execution path is metrics-equivalent);
* ``RouteCache`` entries are invalidated exactly when
  ``Network.version`` bumps (the churn APIs), never otherwise.
"""

import pytest

from repro.bench.harness import run_scenario
from repro.network.routing import RouteCache
from repro.network.topology import example_topology
from repro.obs import NULL_RECORDER, Recorder
from repro.workload.scenarios import scenario_churn, scenario_one
from tests.conftest import PAPER_QUERIES, make_system


def _spans_by_name(recorder):
    by_name = {}
    for span in recorder.spans:
        by_name.setdefault(span.name, []).append(span)
    return by_name


class TestRegistrationSpans:
    @pytest.fixture(scope="class")
    def traced(self):
        recorder = Recorder()
        system = make_system("stream-sharing", recorder=recorder)
        system.register_query("Q1", PAPER_QUERIES["Q1"], "P1")
        system.register_query("Q2", PAPER_QUERIES["Q2"], "P3")
        return system, recorder

    def test_phase_spans_recorded(self, traced):
        _, recorder = traced
        names = _spans_by_name(recorder)
        for phase in ("register", "parse", "analyze", "plan", "search", "commit"):
            assert len(names[phase]) == 2, phase

    def test_span_tree_parents(self, traced):
        _, recorder = traced
        names = _spans_by_name(recorder)
        q1 = next(s for s in names["register"] if s.attrs["query"] == "Q1")
        parse = next(s for s in names["parse"] if s.parent_id == q1.span_id)
        plan = next(s for s in names["plan"] if s.parent_id == q1.span_id)
        search = next(s for s in names["search"] if s.parent_id == plan.span_id)
        assert q1.parent_id is None
        assert parse.start_s >= q1.start_s
        assert search.end_s <= plan.end_s + 1e-6

    def test_register_span_attrs(self, traced):
        _, recorder = traced
        span = _spans_by_name(recorder)["register"][0]
        assert span.attrs["strategy"] == "stream-sharing"
        assert span.attrs["accepted"] is True

    def test_search_span_telemetry(self, traced):
        _, recorder = traced
        span = _spans_by_name(recorder)["search"][0]
        assert span.attrs["visited_nodes"] >= 1
        assert span.attrs["candidate_matches"] >= 1

    def test_decision_records_emitted(self, traced):
        _, recorder = traced
        decisions = [e for e in recorder.events if e["name"] == "plan.decision"]
        assert [e["fields"]["query"] for e in decisions] == ["Q1", "Q2"]
        q2 = decisions[1]["fields"]
        assert q2["accepted"] is True
        assert q2["strategy"] == "stream-sharing"
        assert q2["total_cost"] > 0.0
        (input_record,) = q2["inputs"]
        assert input_record["input_stream"] == "photons"
        assert input_record["cost"] <= input_record["initial_cost"]
        assert input_record["saving_vs_initial"] >= 0.0

    def test_cache_counters_synced(self, traced):
        system, recorder = traced
        assert recorder.counters["cache.route.hits"] == system.planner.routes.hits
        assert recorder.counters["cache.rate.misses"] == system.planner.rate_cache_misses
        assert recorder.counters["planner.plans_costed"] == system.planner.plans_costed
        assert 0.0 <= recorder.gauges["cache.match.hit_rate"] <= 1.0

    def test_deregister_span(self, traced):
        system, recorder = traced
        system.deregister_query("Q2")
        (span,) = _spans_by_name(recorder)["deregister"]
        assert span.attrs["query"] == "Q2"
        assert isinstance(span.attrs["removed_streams"], list)


class TestCacheStats:
    def test_always_available_without_tracing(self):
        # Pin the null recorder: REPRO_OBS_TRACE=1 in the environment
        # would otherwise hand this system a live Recorder.
        system = make_system("stream-sharing", recorder=NULL_RECORDER)
        system.register_query("Q1", PAPER_QUERIES["Q1"], "P1")
        assert system.recorder.enabled is False
        stats = system.cache_stats()
        assert set(stats) == {"route", "rate", "match"}
        for cache in stats.values():
            assert 0.0 <= cache["hit_rate"] <= 1.0
        assert stats["route"]["invalidations"] == 0


class TestRepairTracing:
    @pytest.fixture(scope="class")
    def churned(self):
        scenario = scenario_churn(
            rows=2, cols=2, query_count=4, duration=12.0,
            crash_peer="SP1", crash_at=4.0, rejoin_at=8.0,
        )
        recorder = Recorder()
        run = run_scenario(scenario, "stream-sharing", recorder=recorder)
        return recorder, run

    def test_repair_span_tree(self, churned):
        recorder, _ = churned
        names = _spans_by_name(recorder)
        assert len(names["repair"]) == 2  # crash + rejoin
        repair = names["repair"][0]
        for phase in ("repair.damage", "repair.teardown", "repair.reregister"):
            phase_span = next(
                s for s in names[phase] if s.parent_id == repair.span_id
            )
            assert phase_span.end_s is not None
        assert "summary" in repair.attrs

    def test_repair_report_events(self, churned):
        recorder, _ = churned
        reports = [e for e in recorder.events if e["name"] == "repair.report"]
        assert len(reports) == 2
        crash = reports[0]["fields"]
        assert crash["damaged_streams"] >= 1
        assert crash["queries_repaired"] + crash["queries_lost"] >= 1
        assert crash["recovery_time_ms"] >= 0.0

    def test_fault_events(self, churned):
        recorder, _ = churned
        faults = [e for e in recorder.events if e["name"] == "fault.applied"]
        assert [e["fields"]["stream_time"] for e in faults] == [4.0, 8.0]

    def test_route_cache_invalidated_by_churn(self, churned):
        recorder, run = churned
        # Two topology mutations -> at least one wholesale drop each.
        assert run.system.planner.routes.invalidations >= 2
        assert recorder.counters["cache.route.invalidations"] >= 2


class TestTracedEqualsUntraced:
    def test_metrics_identical(self):
        scenario = scenario_one(query_count=6)
        scenario.duration = 10.0
        plain = run_scenario(scenario, "stream-sharing")
        traced = run_scenario(scenario, "stream-sharing", recorder=Recorder())
        assert plain.metrics is not None and traced.metrics is not None
        assert traced.metrics.link_bits == plain.metrics.link_bits
        assert traced.metrics.peer_work == plain.metrics.peer_work
        assert traced.metrics.items_delivered == plain.metrics.items_delivered
        assert traced.metrics.items_generated == plain.metrics.items_generated

    def test_operator_histograms_observed(self):
        # Runs under REPRO_PARALLEL too: traced shard cells now ship
        # their operator histograms back at epoch barriers and the
        # parent merges them (DESIGN.md §15).
        scenario = scenario_one(query_count=4)
        scenario.duration = 6.0
        recorder = Recorder()
        run_scenario(scenario, "stream-sharing", recorder=recorder)
        batch_hists = [n for n in recorder.histograms if n.endswith(".batch_s")]
        assert batch_hists, "expected per-operator latency histograms"
        items = [n for n in recorder.counters if n.startswith("op.")]
        assert items
        assert recorder.counters["exec.runs"] == 1


class TestRouteCacheInvalidation:
    """Satellite regression: invalidation happens exactly on version bumps."""

    def test_stable_topology_never_invalidates(self):
        net = example_topology()
        cache = RouteCache(net)
        for _ in range(5):
            cache.path("SP0", "SP7")
        assert cache.misses == 1 and cache.hits == 4
        assert cache.invalidations == 0
        assert len(cache) == 1

    def test_each_version_bump_invalidates_once(self):
        net = example_topology()
        cache = RouteCache(net)
        cache.path("SP0", "SP7")
        cache.path("SP4", "SP6")
        assert len(cache) == 2

        net.remove_super_peer("SP5")  # churn API -> version bump
        route = cache.path("SP0", "SP7")
        assert cache.invalidations == 1
        assert "SP5" not in route  # re-routed against the new topology
        assert len(cache) == 1  # wholesale drop, then one fresh entry

        # No further bump: the cache keeps its entries.
        cache.path("SP0", "SP7")
        assert cache.invalidations == 1

        net.restore_super_peer("SP5")  # rejoin also bumps
        cache.path("SP0", "SP7")
        assert cache.invalidations == 2

    def test_every_churn_api_bumps_version(self):
        net = example_topology()
        cache = RouteCache(net)
        for mutate in (
            lambda: net.remove_link("SP4", "SP5"),
            lambda: net.restore_link("SP4", "SP5"),
            lambda: net.remove_super_peer("SP3"),
            lambda: net.restore_super_peer("SP3"),
        ):
            before = cache.invalidations
            mutate()
            cache.path("SP0", "SP7")
            assert cache.invalidations == before + 1
