"""Tests for plan repair after super-peer crashes and link failures."""

import pytest

from tests.conftest import PAPER_QUERIES, make_system
from repro.faults import LinkFailure, SuperPeerCrash, SuperPeerRejoin
from repro.sharing.validate import validate_deployment


def register_all(system, names=("Q1", "Q2", "Q3", "Q4")):
    subscribers = {"Q1": "P1", "Q2": "P2", "Q3": "P3", "Q4": "P4"}
    return [
        system.register_query(name, PAPER_QUERIES[name], subscribers[name])
        for name in names
    ]


class TestCrashRepair:
    def test_on_route_crash_replans_affected_queries(self):
        system = make_system(verify=True)
        register_all(system)
        # SP5 carries Q1's delivery (SP4 -> SP5 -> SP1) and hosts Q2's
        # shared selection.
        report = system.apply_fault(SuperPeerCrash(5.0, "SP5"))
        assert "Q1" in report.torn_down_queries
        assert set(report.repaired_queries) == set(report.torn_down_queries)
        assert report.pending == []
        assert validate_deployment(system.deployment) == []
        # Every surviving route avoids the crashed peer.
        for stream in system.deployment.streams.values():
            assert "SP5" not in stream.route

    def test_unaffected_queries_keep_their_plans(self):
        system = make_system(verify=True)
        register_all(system)
        before = dict(system.deployment.streams)
        report = system.apply_fault(SuperPeerCrash(5.0, "SP6"))
        # SP6 only carries Q4's delivery toward SP0.
        assert report.torn_down_queries == ["Q4"]
        for stream_id, stream in system.deployment.streams.items():
            if stream.query in (None, "Q1", "Q2", "Q3"):
                assert before.get(stream_id) is stream

    def test_repair_report_summary_and_recovery_time(self):
        system = make_system()
        register_all(system)
        report = system.apply_fault(SuperPeerCrash(5.0, "SP5"))
        assert report.context in report.summary()
        expected = max(r.registration_ms for r in report.reregistered if r.accepted)
        assert report.recovery_time_ms() == expected

    def test_recovery_time_zero_without_reregistrations(self):
        system = make_system()
        register_all(system, names=("Q3",))
        # SP2 carries no installed route.
        report = system.apply_fault(SuperPeerCrash(5.0, "SP2"))
        assert report.torn_down_queries == []
        assert report.recovery_time_ms() == 0.0


class TestLinkFailureRepair:
    def test_failed_link_forces_detour(self):
        system = make_system(verify=True)
        register_all(system, names=("Q1",))
        report = system.apply_fault(LinkFailure(5.0, "SP4", "SP5"))
        assert report.torn_down_queries == ["Q1"]
        assert report.repaired_queries == ["Q1"]
        for stream in system.deployment.streams.values():
            assert ("SP4", "SP5") not in stream.links()
        assert validate_deployment(system.deployment) == []


class TestPendingSubscriptions:
    def test_subscriber_home_crash_parks_query_until_rejoin(self):
        system = make_system(verify=True)
        register_all(system, names=("Q1",))
        report = system.apply_fault(SuperPeerCrash(5.0, "SP1"))
        assert report.repaired_queries == []
        assert report.pending == [
            ("Q1", "subscriber super-peer SP1 is removed")
        ]
        assert "Q1" not in system.deployment.queries

        healed = system.apply_fault(SuperPeerRejoin(15.0, "SP1"))
        assert healed.repaired_queries == ["Q1"]
        assert healed.pending == []
        assert "Q1" in system.deployment.queries

    def test_source_home_crash_parks_everything_and_clears_ledger(self):
        system = make_system(verify=True)
        register_all(system)
        report = system.apply_fault(SuperPeerCrash(5.0, "SP4"))
        assert "photons" in report.removed_streams
        assert [reason for _, reason in report.pending] == [
            "original stream(s) unavailable: photons"
        ] * 4
        assert system.deployment.streams == {}
        # Regression: tearing down the whole deployment — including the
        # damaged original — must release every commitment exactly once.
        usage = system.deployment.usage
        for link in system.net.links():
            assert usage.link_traffic(link) == pytest.approx(0.0, abs=1e-6)
        for peer in system.net.super_peer_names():
            assert usage.peer_work(peer) == pytest.approx(0.0, abs=1e-6)

    def test_source_home_rejoin_reinstalls_and_heals(self):
        system = make_system(verify=True)
        register_all(system)
        system.apply_fault(SuperPeerCrash(5.0, "SP4"))
        healed = system.apply_fault(SuperPeerRejoin(15.0, "SP4"))
        assert healed.reinstalled_sources == ["photons"]
        assert sorted(healed.repaired_queries) == ["Q1", "Q2", "Q3", "Q4"]
        assert validate_deployment(system.deployment) == []


class TestTeardownParity:
    @pytest.mark.parametrize("strategy", ["data-shipping", "stream-sharing"])
    def test_full_churn_returns_ledger_to_baseline(self, strategy):
        """Regression: relay-based plans used to release the tap
        duplication twice (once for the relay, once for the delivered
        stream), leaving the ledger negative after mass teardown."""
        system = make_system(strategy)
        usage = system.deployment.usage
        baseline = {
            peer: usage.peer_work(peer) for peer in system.net.super_peer_names()
        }
        register_all(system)
        for name in ("Q1", "Q2", "Q3", "Q4"):
            system.deregister_query(name)
        for peer in system.net.super_peer_names():
            assert usage.peer_work(peer) == pytest.approx(
                baseline[peer], abs=1e-6
            )
            assert usage.peer_work(peer) >= 0.0
