"""Tests for the deployment auditor — and audits of real deployments."""

import pytest

from tests.conftest import PAPER_QUERIES, make_system
from repro.properties import raw_stream_properties
from repro.sharing.plan import Deployment, InstalledStream
from repro.sharing.validate import (
    DeploymentInvariantError,
    check_deployment,
    validate_deployment,
)
from repro.network.topology import example_topology


def raw_content():
    return raw_stream_properties("photons", "photons/photon").single_input()


class TestAuditorDetections:
    @pytest.fixture()
    def deployment(self):
        deployment = Deployment(example_topology())
        deployment.install_stream(
            InstalledStream(
                stream_id="photons", content=raw_content(),
                origin_node="SP4", route=("SP4",),
            )
        )
        return deployment

    def test_healthy_deployment(self, deployment):
        assert validate_deployment(deployment) == []
        check_deployment(deployment)

    def test_route_with_missing_link(self, deployment):
        deployment.install_stream(
            InstalledStream(
                stream_id="bad", content=raw_content(), origin_node="SP4",
                route=("SP4", "SP3"),  # no SP4-SP3 link
                parent_id="photons",
            )
        )
        problems = validate_deployment(deployment)
        assert any("missing link" in p for p in problems)
        with pytest.raises(DeploymentInvariantError):
            check_deployment(deployment)

    def test_tap_off_parent_route(self, deployment):
        deployment.install_stream(
            InstalledStream(
                stream_id="bad", content=raw_content(), origin_node="SP0",
                route=("SP0", "SP1"), parent_id="photons",
            )
        )
        problems = validate_deployment(deployment)
        assert any("not on the parent's route" in p for p in problems)

    def test_underivable_content(self, deployment):
        # A child claiming *more* data than the parent has: parent is a
        # filtered stream, child claims raw content.
        from fractions import Fraction

        from repro.predicates import PredicateGraph, normalize_comparison
        from repro.properties import SelectionSpec, StreamProperties
        from repro.xmlkit import Path

        filtered = StreamProperties(
            "photons",
            Path("photons/photon"),
            (SelectionSpec(PredicateGraph(normalize_comparison(
                Path("photons/photon/en"), ">=", None, Fraction(1)
            ))),),
        )
        deployment.install_stream(
            InstalledStream(
                stream_id="narrow", content=filtered, origin_node="SP4",
                route=("SP4", "SP5"), parent_id="photons",
            )
        )
        deployment.install_stream(
            InstalledStream(
                stream_id="impossible", content=raw_content(), origin_node="SP5",
                route=("SP5",), parent_id="narrow",
            )
        )
        problems = validate_deployment(deployment)
        assert any("not derivable" in p for p in problems)

    def test_negative_usage_detected(self, deployment):
        deployment.usage.add_peer_work("SP4", -100.0)
        problems = validate_deployment(deployment)
        assert any("negative work" in p for p in problems)


class TestRealDeploymentsAreHealthy:
    @pytest.mark.parametrize("strategy", ["data-shipping", "query-shipping", "stream-sharing"])
    def test_paper_queries(self, strategy):
        system = make_system(strategy)
        for name, peer in [("Q1", "P1"), ("Q2", "P2"), ("Q3", "P3"), ("Q4", "P4")]:
            system.register_query(name, PAPER_QUERIES[name], peer)
        assert validate_deployment(system.deployment) == []

    def test_widened_deployment_healthy(self):
        system = make_system("stream-sharing", enable_widening=True)
        narrow = PAPER_QUERIES["Q2"]
        wide = PAPER_QUERIES["Q1"]
        system.register_query("narrow", narrow, "P2")
        system.register_query("wide", wide, "P1")
        assert validate_deployment(system.deployment) == []

    def test_scenario_one_sharing_healthy(self):
        from repro.bench.harness import run_scenario
        from repro.workload.scenarios import scenario_one

        run = run_scenario(scenario_one(), "stream-sharing", execute=False)
        assert validate_deployment(run.system.deployment) == []

    def test_scenario_one_with_widening_healthy(self):
        from repro.bench.harness import run_scenario
        from repro.workload.scenarios import scenario_one

        run = run_scenario(
            scenario_one(), "stream-sharing", enable_widening=True, execute=False
        )
        assert validate_deployment(run.system.deployment) == []
