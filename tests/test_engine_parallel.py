"""The sharded executor: byte-identical metrics at every worker count.

Every test compares :class:`~repro.engine.parallel.ShardedSimulator`
output against the sequential :class:`StreamSimulator` on identically
seeded systems — equality below is full ``RunMetrics`` equality (exact
floats, not approximate), which is the PR's core guarantee.
"""

import dataclasses
import os

import pytest

from repro.engine.executor import ExecutionError
from repro.engine.parallel import ShardedSimulator
from repro.faults import FaultSchedule, LinkFailure, single_crash, staggered_crashes
from repro.obs.recorder import Recorder
from repro.xmlkit import serialize

from .conftest import PAPER_QUERIES, make_system

DURATION = 8.0
MAX_ITEMS = 150

#: Fault schedules over the example topology (SP1..SP8 backbone).
FAULT_CASES = {
    "crash": lambda: single_crash(3.0, "SP6"),
    "crash_rejoin": lambda: single_crash(3.0, "SP5", rejoin_at=6.0),
    "link": lambda: FaultSchedule([LinkFailure(3.0, "SP4", "SP5")]),
    "rolling": lambda: staggered_crashes(3.0, ("SP6", "SP5"), spacing=2.0, downtime=3.0),
}


def deployed_system(**kwargs):
    system = make_system(**kwargs)
    for name, text in PAPER_QUERIES.items():
        system.register_query(name, text, subscriber_peer=f"P{name[1]}")
    return system


def run_system(workers, mode="inline", faults_key=None, **system_kwargs):
    """One full run; returns (metrics, per-query capture, simulator)."""
    os.environ["REPRO_PARALLEL_MODE"] = mode
    system = deployed_system(**system_kwargs)
    captured = {}
    metrics = system.run(
        DURATION,
        max_items_per_source=MAX_ITEMS,
        faults=FAULT_CASES[faults_key]() if faults_key else None,
        capture=lambda name, item: captured.setdefault(name, []).append(
            serialize(item)
        ),
        workers=workers,
    )
    return metrics, captured, system.last_simulator


@pytest.fixture(autouse=True)
def _clean_parallel_env(monkeypatch):
    monkeypatch.delenv("REPRO_PARALLEL", raising=False)
    monkeypatch.delenv("REPRO_PARALLEL_MODE", raising=False)


# ----------------------------------------------------------------------
# Identity: fault-free
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", [2, 4, 8])
def test_identity_inline(workers):
    seq_metrics, seq_cap, _ = run_system(1)
    par_metrics, par_cap, simulator = run_system(workers)
    assert par_metrics == seq_metrics
    assert par_cap == seq_cap
    assert simulator.mode_used == "inline"
    assert 1 < simulator.workers_used <= workers


def test_identity_process():
    seq_metrics, seq_cap, _ = run_system(1)
    par_metrics, par_cap, simulator = run_system(2, mode="process")
    assert par_metrics == seq_metrics
    assert par_cap == seq_cap
    assert simulator.mode_used == "process"


# ----------------------------------------------------------------------
# Identity: under churn (faults applied at epoch barriers, plan
# re-certified and re-partitioned on every Network.version bump)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("case", sorted(FAULT_CASES))
def test_identity_under_faults_inline(case):
    seq_metrics, seq_cap, _ = run_system(1, faults_key=case)
    par_metrics, par_cap, _ = run_system(4, faults_key=case)
    assert par_metrics == seq_metrics
    assert par_cap == seq_cap
    assert par_metrics.faults_applied > 0


def test_identity_under_faults_process():
    seq_metrics, seq_cap, _ = run_system(1, faults_key="crash_rejoin")
    par_metrics, par_cap, simulator = run_system(
        2, mode="process", faults_key="crash_rejoin"
    )
    assert par_metrics == seq_metrics
    assert par_cap == seq_cap
    assert simulator.mode_used == "process"


def test_recertification_changes_the_partition_mid_run():
    """Churn merges/splits shards mid-run; the run stays identical."""
    os.environ["REPRO_PARALLEL_MODE"] = "inline"
    seq_metrics, _, _ = run_system(1, faults_key="rolling")

    system = deployed_system()
    plans = []

    def replan():
        plan = system.shard_plan()
        plans.append(plan)
        return plan

    generators = {
        name: source.generator_factory()
        for name, source in system.sources.items()
    }
    simulator = ShardedSimulator(
        system.net,
        system.deployment,
        generators,
        DURATION,
        plan=system.shard_plan(),
        workers=4,
        max_items_per_source=MAX_ITEMS,
        schedule=FAULT_CASES["rolling"](),
        repair=system.plan_repairer().repair,
        replan=replan,
        mode="inline",
    )
    par_metrics = simulator.run()
    assert par_metrics == seq_metrics
    # Every applied fault event re-certified; the crash plans differ
    # from the initial partition (a node left, so its shard is gone or
    # merged).
    assert len(plans) == par_metrics.faults_applied >= 3
    initial = simulator.plan
    assert any(plan.shard_count != initial.shard_count for plan in plans)
    assert simulator.partition_conflicts == 0


# ----------------------------------------------------------------------
# Fallbacks and clamps
# ----------------------------------------------------------------------
def test_uncertified_plan_falls_back_to_sequential():
    system = deployed_system()
    generators = {
        name: source.generator_factory()
        for name, source in system.sources.items()
    }
    plan = dataclasses.replace(system.shard_plan(), certified=False)
    simulator = ShardedSimulator(
        system.net,
        system.deployment,
        generators,
        DURATION,
        plan=plan,
        workers=4,
        max_items_per_source=MAX_ITEMS,
    )
    metrics = simulator.run()
    assert simulator.mode_used == "sequential"
    assert simulator.workers_used == 1
    seq_metrics, _, _ = run_system(1)
    assert metrics == seq_metrics


def test_single_worker_request_stays_sequential():
    _, _, simulator = run_system(1)
    assert not isinstance(simulator, ShardedSimulator)


def test_worker_count_clamped_to_shard_count():
    _, _, simulator = run_system(64)
    plan = simulator.plan
    assert simulator.workers_used <= plan.shard_count
    assert simulator.workers_used > 1


# ----------------------------------------------------------------------
# Exchange accounting and per-shard telemetry
# ----------------------------------------------------------------------
def test_exchange_counters_and_per_shard_peaks():
    _, _, simulator = run_system(2)
    assert simulator.exchange_batches > 0
    assert simulator.exchange_items > 0
    assert simulator.exchange_bytes > 0
    for (src, dst), items in simulator.exchange_pairs.items():
        assert src != dst
        assert items > 0
    peaks = simulator.peak_live_items_per_shard
    assert sorted(peaks) == list(range(simulator.workers_used))
    assert simulator.peak_live_items == max(peaks.values())


def test_query_lags_respect_certified_epoch_lag():
    _, _, simulator = run_system(4)
    certified = dict(simulator.plan.epoch_lag)
    for query, lag in simulator.query_lags.items():
        # Cell-granularity crossings can only be fewer than the
        # finest-partition certificate's.
        assert 0 <= lag <= certified[query]


# ----------------------------------------------------------------------
# Traced runs: one interleaved epoch series per shard cell
# ----------------------------------------------------------------------
def test_traced_run_emits_per_shard_epochs():
    recorder = Recorder()
    seq_metrics, _, _ = run_system(1)
    os.environ["REPRO_PARALLEL_MODE"] = "inline"
    system = deployed_system(recorder=recorder)
    metrics = system.run(DURATION, max_items_per_source=MAX_ITEMS, workers=2)
    assert metrics == seq_metrics
    assert recorder.epochs
    shards = {snapshot.shard for snapshot in recorder.epochs}
    assert shards == {0, 1}
    for snapshot in recorder.epochs:
        assert snapshot.to_dict()["shard"] == snapshot.shard
    # Per-cell series generated what the global run generated.
    assert sum(s.items_generated for s in recorder.epochs) == sum(
        metrics.items_generated.values()
    )


def test_sequential_epochs_have_no_shard_key():
    recorder = Recorder()
    system = deployed_system(recorder=recorder)
    system.run(DURATION, max_items_per_source=MAX_ITEMS, workers=1)
    assert recorder.epochs
    for snapshot in recorder.epochs:
        assert snapshot.shard is None
        assert "shard" not in snapshot.to_dict()


# ----------------------------------------------------------------------
# Partition conflicts (re-certification failure policy)
# ----------------------------------------------------------------------
def conflict_simulator(system, mode):
    generators = {
        name: source.generator_factory()
        for name, source in system.sources.items()
    }
    return ShardedSimulator(
        system.net,
        system.deployment,
        generators,
        DURATION,
        plan=system.shard_plan(),
        workers=2,
        max_items_per_source=MAX_ITEMS,
        schedule=FAULT_CASES["crash"](),
        repair=system.plan_repairer().repair,
        replan=lambda: dataclasses.replace(
            system.shard_plan(), certified=False
        ),
        mode=mode,
    )


def test_inline_continues_on_partition_conflict():
    seq_metrics, _, _ = run_system(1, faults_key="crash")
    system = deployed_system()
    simulator = conflict_simulator(system, "inline")
    metrics = simulator.run()
    assert simulator.partition_conflicts > 0
    # Inline cells share one process; keeping the stale partition is
    # safe (coarsening certified shards is always safe), so the run
    # still matches the sequential executor exactly.
    assert metrics == seq_metrics


def test_process_mode_raises_on_partition_conflict():
    system = deployed_system()
    simulator = conflict_simulator(system, "process")
    with pytest.raises(ExecutionError, match="partition"):
        simulator.run()


# ----------------------------------------------------------------------
# Environment-variable integration
# ----------------------------------------------------------------------
def test_repro_parallel_env_selects_sharded_executor(monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL", "2")
    monkeypatch.setenv("REPRO_PARALLEL_MODE", "inline")
    seq_metrics, _, _ = run_system(1)

    system = deployed_system()
    metrics = system.run(DURATION, max_items_per_source=MAX_ITEMS)
    assert isinstance(system.last_simulator, ShardedSimulator)
    assert metrics == seq_metrics


def test_repro_parallel_env_rejects_garbage(monkeypatch):
    monkeypatch.setenv("REPRO_PARALLEL", "banana")
    system = deployed_system()
    with pytest.raises(ValueError, match="REPRO_PARALLEL"):
        system.run(DURATION, max_items_per_source=MAX_ITEMS)
