"""Property-based tests for the XML substrate (hypothesis)."""

import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.xmlkit import Element, parse, prune_to_paths, serialize
from repro.xmlkit.path import Path

TAGS = st.text(alphabet=string.ascii_lowercase + "_", min_size=1, max_size=8)

TEXTS = st.text(
    alphabet=st.characters(
        blacklist_categories=("Cs", "Cc"),
    ),
    min_size=1,
    max_size=30,
).filter(lambda s: s.strip() == s and s.strip() != "")


def elements(max_depth=3):
    return st.recursive(
        st.builds(Element, TAGS, st.one_of(st.none(), TEXTS)),
        lambda children: st.builds(
            lambda tag, kids: Element(tag, children=kids),
            TAGS,
            st.lists(children, min_size=1, max_size=4),
        ),
        max_leaves=12,
    )


class TestSerializationRoundTrip:
    @given(elements())
    @settings(max_examples=200)
    def test_parse_inverts_serialize(self, element):
        assert parse(serialize(element)) == element

    @given(elements())
    @settings(max_examples=200)
    def test_serialized_size_matches_serializer(self, element):
        assert element.serialized_size() == len(serialize(element).encode("utf-8"))

    @given(elements())
    def test_copy_equals_original(self, element):
        assert element.copy() == element

    @given(elements())
    def test_iter_counts_all_nodes(self, element):
        via_iter = sum(1 for _ in element.iter())
        def count(node):
            return 1 + sum(count(c) for c in node.children)
        assert via_iter == count(element)


#: Texts biased toward the serializer's escape path (&, <, >).
ESCAPED_TEXTS = st.text(
    alphabet=string.ascii_lowercase + "&<>",
    min_size=1,
    max_size=20,
).filter(lambda s: s.strip() == s)


def escaped_elements(max_depth=3):
    return st.recursive(
        st.builds(Element, TAGS, st.one_of(st.none(), TEXTS, ESCAPED_TEXTS)),
        lambda children: st.builds(
            lambda tag, kids: Element(tag, children=kids),
            TAGS,
            st.lists(children, min_size=1, max_size=4),
        ),
        max_leaves=12,
    )


class TestFrozenSizeCache:
    """The executor freezes items at ingest: ``_size`` is pinned once
    and must equal the true serialized byte length ever after."""

    @given(escaped_elements())
    @settings(max_examples=200)
    def test_frozen_size_matches_serializer(self, element):
        uncached = element.serialized_size()
        element.freeze()
        assert element.serialized_size() == uncached
        assert element.serialized_size() == len(serialize(element).encode("utf-8"))

    @given(escaped_elements())
    @settings(max_examples=100)
    def test_freeze_pins_descendants(self, element):
        element.freeze()
        for node in element.iter():
            assert node.frozen
            assert node.serialized_size() == len(serialize(node).encode("utf-8"))

    @given(escaped_elements(), elements())
    @settings(max_examples=100)
    def test_append_after_build_sequence(self, element, extra):
        """Arbitrary build/append interleavings: sizes stay exact as
        long as mutation happens before freeze, and are rejected after."""
        if element.text is None:
            element.append(extra)
            assert element.serialized_size() == len(serialize(element).encode("utf-8"))
        element.freeze()
        with pytest.raises(ValueError):
            element.append(Element("late"))
        assert element.serialized_size() == len(serialize(element).encode("utf-8"))

    @given(escaped_elements())
    @settings(max_examples=100)
    def test_copy_of_frozen_is_mutable_and_equal(self, element):
        element.freeze()
        clone = element.copy()
        assert clone == element
        assert not clone.frozen
        assert clone.serialized_size() == element.serialized_size()
        if clone.text is None:
            clone.append(Element("tail"))  # copies must stay mutable


PATH_STEPS = st.lists(TAGS, min_size=0, max_size=4).map(tuple)


class TestPathAlgebra:
    @given(PATH_STEPS, PATH_STEPS)
    def test_concat_then_relative(self, left, right):
        combined = Path(left + right)
        assert combined.starts_with(Path(left))
        assert combined.relative_to(Path(left)) == Path(right)

    @given(PATH_STEPS)
    def test_str_parse_roundtrip(self, steps):
        path = Path(steps)
        assert Path(str(path)) == path if steps else path.is_empty()

    @given(PATH_STEPS, PATH_STEPS)
    def test_prefix_antisymmetry(self, a, b):
        pa, pb = Path(a), Path(b)
        if pa.starts_with(pb) and pb.starts_with(pa):
            assert pa == pb


class TestPruneProperties:
    @given(elements(), st.lists(st.lists(TAGS, min_size=1, max_size=3), max_size=3))
    @settings(max_examples=150)
    def test_pruned_is_no_larger(self, element, raw_paths):
        paths = [Path(tuple(steps)) for steps in raw_paths]
        pruned = prune_to_paths(element, paths)
        if pruned is not None:
            assert pruned.serialized_size() <= element.serialized_size() + 2
            assert pruned.tag == element.tag

    @given(elements())
    def test_prune_to_empty_path_is_identity(self, element):
        assert prune_to_paths(element, [Path(())]) == element

    @given(elements())
    @settings(max_examples=100)
    def test_prune_idempotent(self, element):
        paths = [Path((child.tag,)) for child in element.children[:2]]
        once = prune_to_paths(element, paths)
        if once is None:
            return
        twice = prune_to_paths(once, paths)
        assert twice == once
