"""Tests for query deregistration and stream garbage collection."""

import pytest

from tests.conftest import PAPER_QUERIES, make_system
from repro.sharing.deregister import DeregistrationError, live_stream_ids
from repro.sharing.validate import validate_deployment


class TestBasicDeregistration:
    def test_unknown_query_rejected(self):
        system = make_system()
        with pytest.raises(DeregistrationError):
            system.deregister_query("ghost")

    def test_sole_query_fully_cleaned(self):
        system = make_system()
        system.register_query("Q1", PAPER_QUERIES["Q1"], "P1")
        removed = system.deregister_query("Q1")
        assert set(removed) >= {"Q1:photons"}
        assert list(system.deployment.streams) == ["photons"]
        assert system.deployment.queries == {}

    def test_original_stream_always_survives(self):
        system = make_system()
        system.register_query("Q1", PAPER_QUERIES["Q1"], "P1")
        system.deregister_query("Q1")
        assert "photons" in system.deployment.streams

    def test_usage_ledger_released(self):
        system = make_system()
        system.register_query("Q1", PAPER_QUERIES["Q1"], "P1")
        system.deregister_query("Q1")
        usage = system.deployment.usage
        for link in system.net.links():
            assert usage.link_traffic(link) == pytest.approx(0.0, abs=1e-6)
        for peer in system.net.super_peer_names():
            assert usage.peer_work(peer) == pytest.approx(0.0, abs=1e-6)


class TestSharedStreamSurvival:
    def test_shared_stream_survives_producer_departure(self):
        """Q2 consumes Q1's stream: deregistering Q1 must keep the
        stream alive for Q2."""
        system = make_system()
        system.register_query("Q1", PAPER_QUERIES["Q1"], "P1")
        system.register_query("Q2", PAPER_QUERIES["Q2"], "P2")
        assert system.deployment.stream("Q2:photons").parent_id == "Q1:photons"

        removed = system.deregister_query("Q1")
        assert "Q1:photons" not in removed
        assert "Q1:photons" in system.deployment.streams
        assert "Q2:photons" in system.deployment.streams
        assert validate_deployment(system.deployment) == []

    def test_cascade_when_last_consumer_leaves(self):
        system = make_system()
        system.register_query("Q1", PAPER_QUERIES["Q1"], "P1")
        system.register_query("Q2", PAPER_QUERIES["Q2"], "P2")
        system.deregister_query("Q1")
        removed = system.deregister_query("Q2")
        # Both the Q2 delivery and the orphaned Q1 chain disappear.
        assert "Q2:photons" in removed
        assert "Q1:photons" in removed
        assert list(system.deployment.streams) == ["photons"]

    def test_execution_after_deregistration(self):
        system = make_system()
        system.register_query("Q1", PAPER_QUERIES["Q1"], "P1")
        system.register_query("Q2", PAPER_QUERIES["Q2"], "P2")
        system.deregister_query("Q1")
        metrics = system.run(duration=10.0)
        assert "Q1" not in metrics.items_delivered
        assert metrics.items_delivered["Q2"] > 0

    def test_q2_results_unchanged_by_q1_departure(self):
        keep = make_system()
        keep.register_query("Q1", PAPER_QUERIES["Q1"], "P1")
        keep.register_query("Q2", PAPER_QUERIES["Q2"], "P2")
        baseline = keep.run(duration=10.0).items_delivered["Q2"]

        churn = make_system()
        churn.register_query("Q1", PAPER_QUERIES["Q1"], "P1")
        churn.register_query("Q2", PAPER_QUERIES["Q2"], "P2")
        churn.deregister_query("Q1")
        assert churn.run(duration=10.0).items_delivered["Q2"] == baseline


class TestLedgerParity:
    def test_release_restores_pre_registration_ledger(self):
        """Register A, snapshot, register B, deregister B: the ledger
        returns to the snapshot."""
        system = make_system()
        system.register_query("Q1", PAPER_QUERIES["Q1"], "P1")
        usage = system.deployment.usage
        snapshot_links = {
            link.ends: usage.link_traffic(link) for link in system.net.links()
        }
        snapshot_peers = {
            peer: usage.peer_work(peer) for peer in system.net.super_peer_names()
        }
        system.register_query("Q3", PAPER_QUERIES["Q3"], "P3")
        system.deregister_query("Q3")
        for link in system.net.links():
            assert usage.link_traffic(link) == pytest.approx(
                snapshot_links[link.ends], abs=1e-6
            )
        for peer in system.net.super_peer_names():
            assert usage.peer_work(peer) == pytest.approx(
                snapshot_peers[peer], abs=1e-6
            )


class TestLedgerDrift:
    def test_thousand_cycles_accumulate_no_residue(self):
        """Regression for float residue: 1000 register/deregister
        cycles must leave the ledger exactly where a fresh registration
        of the surviving workload would put it, never negative."""
        system = make_system()
        system.register_query("Q1", PAPER_QUERIES["Q1"], "P1")
        usage = system.deployment.usage
        reference_links = {
            link.ends: usage.link_traffic(link) for link in system.net.links()
        }
        reference_peers = {
            peer: usage.peer_work(peer) for peer in system.net.super_peer_names()
        }
        cycled = ("Q2", "Q3", "Q4")
        subscribers = {"Q2": "P2", "Q3": "P3", "Q4": "P4"}
        for cycle in range(1000):
            name = cycled[cycle % len(cycled)]
            system.register_query(name, PAPER_QUERIES[name], subscribers[name])
            system.deregister_query(name)
        from repro.costmodel import RESIDUE_TOLERANCE

        for link in system.net.links():
            residue = usage.link_traffic(link) - reference_links[link.ends]
            assert abs(residue) <= RESIDUE_TOLERANCE
        for peer in system.net.super_peer_names():
            residue = usage.peer_work(peer) - reference_peers[peer]
            assert abs(residue) <= RESIDUE_TOLERANCE
            assert usage.peer_work(peer) >= 0.0


class TestLiveStreamAnalysis:
    def test_live_set_contents(self):
        system = make_system()
        system.register_query("Q1", PAPER_QUERIES["Q1"], "P1")
        system.register_query("Q2", PAPER_QUERIES["Q2"], "P2")
        live = live_stream_ids(system.deployment)
        assert live == {"photons", "Q1:photons", "Q2:photons"}

    def test_ancestors_of_deliveries_are_live(self):
        system = make_system()
        system.register_query("Q3", PAPER_QUERIES["Q3"], "P3")
        system.register_query("Q4", PAPER_QUERIES["Q4"], "P4")
        del system.deployment.queries["Q3"]
        live = live_stream_ids(system.deployment)
        # Q4's re-aggregation feeds on Q3's stream: it must stay live.
        assert "Q3:photons" in live


class TestScenarioChurn:
    def test_mass_churn_leaves_consistent_state(self):
        from repro.bench.harness import run_scenario
        from repro.workload.scenarios import scenario_one

        run = run_scenario(scenario_one(), "stream-sharing", execute=False)
        system = run.system
        # Deregister every other query, then audit.
        for result in run.registrations[::2]:
            system.deregister_query(result.query)
        assert validate_deployment(system.deployment) == []
        metrics = system.run(duration=10.0)
        remaining = {r.query for r in run.registrations[1::2]}
        assert set(metrics.items_delivered) <= remaining
