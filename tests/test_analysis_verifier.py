"""Plan-verifier invariants: clean deployments pass, seeded defects are caught.

Each seeded violation mirrors one failure mode of the registration
machinery: a cyclic route, a route over a non-existent link, an
orphaned compensation pipeline, a schema-incompatible projection, and a
stale ``a_b``/``a_l`` ledger.  The verifier must name the precise rule
code and subject for each.
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from tests.conftest import PAPER_QUERIES, make_system
from repro.analysis import (
    InvariantViolation,
    SchemaView,
    check_content,
    verify_deployment,
    verify_system,
)
from repro.properties import (
    ProjectionSpec,
    StreamProperties,
    UdfSpec,
    WindowContentsSpec,
)
from repro.properties.windows import WindowSpec
from repro.sharing.plan import InstalledStream
from repro.xmlkit import Path


def registered_system(strategy="stream-sharing", queries=("Q1", "Q2", "Q3", "Q4")):
    system = make_system(strategy)
    for name in queries:
        system.register_query(name, PAPER_QUERIES[name], "P1")
    return system


def reroute(system, stream_id, route):
    """Force a stream onto ``route``, keeping the index in sync."""
    stream = system.deployment.streams[stream_id]
    for node in stream.route:
        system.deployment._available[node].remove(stream_id)
    object.__setattr__(stream, "route", route)
    for node in route:
        system.deployment._available.setdefault(node, []).append(stream_id)
    return stream


# ----------------------------------------------------------------------
# Valid deployments verify clean
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "strategy", ["data-shipping", "query-shipping", "stream-sharing"]
)
def test_registered_deployments_verify_clean(strategy):
    system = registered_system(strategy)
    report = verify_system(system)
    assert report.ok, report.render()


def test_empty_deployment_verifies_clean():
    report = verify_system(make_system())
    assert report.ok, report.render()


def test_deployment_after_deregistration_verifies_clean():
    system = registered_system()
    for name in ("Q1", "Q2", "Q3", "Q4"):
        system.deregister_query(name)
    report = verify_system(system)
    assert report.ok, report.render()


# ----------------------------------------------------------------------
# P10x — route structure
# ----------------------------------------------------------------------
def test_cyclic_route_is_rejected():
    system = registered_system(queries=("Q1",))
    delivered = system.deployment.queries["Q1"].delivered[0][1]
    stream = system.deployment.streams[delivered]
    reroute(system, delivered, stream.route + (stream.route[-2], stream.route[-1]))
    report = verify_system(system)
    assert "P103" in report.codes(), report.render()
    [diag] = [d for d in report.errors() if d.code == "P103"]
    assert delivered in diag.subject
    assert "more than once" in diag.message


def test_route_over_missing_link_is_rejected():
    system = registered_system(queries=("Q1",))
    # SP4 and SP7 are not adjacent in the example topology.
    reroute(system, "photons", ("SP4", "SP7"))
    report = verify_system(system)
    assert "P102" in report.codes(), report.render()
    [diag] = [d for d in report.errors() if d.code == "P102"]
    assert "SP4-SP7" in diag.message


def test_route_over_unknown_node_is_rejected():
    system = registered_system(queries=("Q1",))
    reroute(system, "photons", ("SP4", "SP99"))
    report = verify_system(system)
    assert "P101" in report.codes(), report.render()


def test_route_not_rooted_at_origin_is_rejected():
    system = registered_system(queries=("Q1",))
    stream = system.deployment.streams["photons"]
    object.__setattr__(stream, "route", ("SP5", "SP4"))
    report = verify_system(system)
    assert "P104" in report.codes(), report.render()


def test_stale_availability_index_is_rejected():
    system = registered_system(queries=("Q1",))
    # The index claims availability at a node the route never touches...
    system.deployment._available["SP3"].append("photons")
    report = verify_system(system)
    assert "P106" in report.codes(), report.render()
    # ...and a missing entry is the mirror violation.
    system.deployment._available["SP3"].remove("photons")
    system.deployment._available["SP4"].remove("photons")
    report = verify_system(system)
    assert "P105" in report.codes(), report.render()


# ----------------------------------------------------------------------
# P11x — derivation
# ----------------------------------------------------------------------
def test_orphaned_pipeline_is_rejected():
    system = registered_system(queries=("Q1",))
    delivered = system.deployment.queries["Q1"].delivered[0][1]
    stream = system.deployment.streams[delivered]
    object.__setattr__(stream, "parent_id", "no-such-stream")
    report = verify_system(system)
    assert "P110" in report.codes(), report.render()
    [diag] = [d for d in report.errors() if d.code == "P110"]
    assert "no-such-stream" in diag.message


def test_tap_off_parent_route_is_rejected():
    system = registered_system(queries=("Q1",))
    # Restrict the parent's route so the child's tap node leaves it.
    delivered = system.deployment.queries["Q1"].delivered[0][1]
    child = system.deployment.streams[delivered]
    assert child.origin_node == "SP4"
    reroute(system, "photons", ("SP4",))
    object.__setattr__(child, "origin_node", "SP5")
    object.__setattr__(child, "route", ("SP5",) + child.route[1:])
    report = verify_system(system)
    assert "P111" in report.codes(), report.render()


def test_original_with_pipeline_is_rejected():
    system = registered_system(queries=("Q1",))
    stream = system.deployment.streams["photons"]
    object.__setattr__(stream, "pipeline", (UdfSpec(name="rogue"),))
    report = verify_system(system)
    assert "P112" in report.codes(), report.render()


def test_underivable_content_is_rejected():
    system = registered_system(queries=("Q1", "Q2"))
    # Q2's stream derives from Q1's (already selected and projected).
    # Claiming it carries the *raw* photon stream means the pipeline
    # would have to re-create data its input no longer contains.
    d1 = system.deployment.queries["Q1"].delivered[0][1]
    d2 = system.deployment.queries["Q2"].delivered[0][1]
    s2 = system.deployment.streams[d2]
    assert s2.parent_id == d1  # precondition: sharing reused Q1's stream
    object.__setattr__(
        s2,
        "content",
        StreamProperties(stream="photons", item_path=Path("photons/photon")),
    )
    report = verify_system(system)
    assert "P113" in report.codes(), report.render()


# ----------------------------------------------------------------------
# P12x — delivery
# ----------------------------------------------------------------------
def test_missing_delivered_stream_is_rejected():
    system = registered_system(queries=("Q1",))
    record = system.deployment.queries["Q1"]
    delivered = record.delivered[0][1]
    stream = system.deployment.streams.pop(delivered)
    for node in stream.route:
        system.deployment._available[node].remove(delivered)
    report = verify_system(system)
    assert "P120" in report.codes(), report.render()


def test_delivery_to_wrong_node_is_rejected():
    system = registered_system(queries=("Q1",))
    record = system.deployment.queries["Q1"]
    object.__setattr__(record, "subscriber_node", "SP3")
    report = verify_system(system)
    codes = report.codes()
    assert "P121" in codes, report.render()


def test_unsatisfying_delivery_is_rejected():
    system = registered_system(queries=("Q1", "Q2"))
    # Point Q1 at Q2's delivered stream: strictly narrower content.
    q2_delivered = system.deployment.queries["Q2"].delivered[0][1]
    record = system.deployment.queries["Q1"]
    object.__setattr__(record, "delivered", (("photons", q2_delivered),))
    report = verify_system(system)
    assert "P122" in report.codes(), report.render()


# ----------------------------------------------------------------------
# P13x — usage ledger
# ----------------------------------------------------------------------
def test_negative_commitment_is_rejected():
    system = registered_system(queries=("Q1",))
    link = system.net.link("SP4", "SP5")
    system.deployment.usage.add_link_traffic(
        link, -2 * system.deployment.usage.link_traffic(link)
    )
    report = verify_system(system)
    assert "P130" in report.codes(), report.render()


def test_ghost_traffic_is_rejected():
    system = registered_system(queries=("Q1",))
    # Traffic on a link no installed stream routes over (stale a_b).
    system.deployment.usage.add_link_traffic(system.net.link("SP2", "SP3"), 5000.0)
    report = verify_system(system)
    assert "P131" in report.codes(), report.render()


def test_ghost_work_is_rejected():
    system = registered_system(queries=("Q1",))
    system.deployment.usage.add_peer_work("SP2", 100.0)
    report = verify_system(system)
    assert "P132" in report.codes(), report.render()


def test_uncommitted_stream_traffic_is_rejected():
    system = registered_system(queries=("Q1",))
    delivered = system.deployment.queries["Q1"].delivered[0][1]
    stream = system.deployment.streams[delivered]
    for a, b in stream.links():
        link = system.net.link(a, b)
        system.deployment.usage.add_link_traffic(
            link, -system.deployment.usage.link_traffic(link)
        )
    report = verify_system(system)
    assert "P133" in report.codes(), report.render()


def test_uncommitted_pipeline_work_is_rejected():
    system = registered_system(queries=("Q1",))
    delivered = system.deployment.queries["Q1"].delivered[0][1]
    stream = system.deployment.streams[delivered]
    assert stream.pipeline
    system.deployment.usage.add_peer_work(
        stream.origin_node, -system.deployment.usage.peer_work(stream.origin_node)
    )
    report = verify_system(system)
    assert "P134" in report.codes(), report.render()


def test_missing_subscriber_work_is_rejected():
    system = registered_system(queries=("Q1",))
    node = system.deployment.queries["Q1"].subscriber_node
    system.deployment.usage.add_peer_work(
        node, -system.deployment.usage.peer_work(node)
    )
    report = verify_system(system)
    assert "P135" in report.codes(), report.render()


# ----------------------------------------------------------------------
# T2xx — operator typing against the measured schema
# ----------------------------------------------------------------------
def test_schema_incompatible_projection_is_rejected(photon_stats):
    view = SchemaView.from_statistics(photon_stats)
    bogus = Path("photons/photon/no_such_leaf")
    content = StreamProperties(
        stream="photons",
        item_path=Path("photons/photon"),
        operators=(
            ProjectionSpec(
                output_elements=frozenset({bogus}),
                referenced_elements=frozenset({bogus}),
            ),
        ),
    )
    diags = check_content(content, view, "stream 'seeded'")
    assert [d.code for d in diags] == ["T203"]
    assert "does not exist in the schema" in diags[0].message


def test_projection_dropping_window_reference_is_rejected(photon_stats):
    view = SchemaView.from_statistics(photon_stats)
    en = Path("photons/photon/en")
    content = StreamProperties(
        stream="photons",
        item_path=Path("photons/photon"),
        operators=(
            ProjectionSpec(
                output_elements=frozenset({en}), referenced_elements=frozenset({en})
            ),
            # det_time was just projected away: the window cannot key on it.
            WindowContentsSpec(
                window=WindowSpec(
                    "diff",
                    Fraction(20),
                    Fraction(10),
                    reference=Path("photons/photon/det_time"),
                )
            ),
        ),
    )
    diags = check_content(content, view, "stream 'seeded'")
    assert "T206" in [d.code for d in diags]
    assert any("dropped by an earlier projection" in d.message for d in diags)


def test_window_on_non_monotone_reference_is_rejected(photon_stats):
    view = SchemaView.from_statistics(photon_stats)
    assert Path("photons/photon/det_time") in (view.monotone or ())
    content = StreamProperties(
        stream="photons",
        item_path=Path("photons/photon"),
        operators=(
            WindowContentsSpec(
                window=WindowSpec(
                    "diff",
                    Fraction(20),
                    Fraction(10),
                    # Photon energies are random, not time-ordered.
                    reference=Path("photons/photon/en"),
                )
            ),
        ),
    )
    diags = check_content(content, view, "stream 'seeded'")
    assert "T208" in [d.code for d in diags]


def test_seeded_typing_defect_surfaces_in_deployment_report(photon_stats):
    system = registered_system(queries=("Q1",))
    stream = system.deployment.streams["photons"]
    bogus = Path("photons/photon/no_such_leaf")
    object.__setattr__(
        stream,
        "content",
        StreamProperties(
            stream="photons",
            item_path=Path("photons/photon"),
            operators=(
                ProjectionSpec(
                    output_elements=frozenset({bogus}),
                    referenced_elements=frozenset({bogus}),
                ),
            ),
        ),
    )
    report = verify_system(system)
    assert "T203" in report.codes(), report.render()


def test_reaggregation_function_compatibility(photon_stats):
    from repro.predicates import PredicateGraph
    from repro.properties import AggregationSpec, ReAggregationSpec

    view = SchemaView.from_statistics(photon_stats)
    window = WindowSpec(
        "diff", Fraction(20), Fraction(10), reference=Path("photons/photon/det_time")
    )
    wide = WindowSpec(
        "diff", Fraction(60), Fraction(20), reference=Path("photons/photon/det_time")
    )

    def agg(function, win):
        return AggregationSpec(
            function=function,
            aggregated_path=Path("photons/photon/en"),
            window=win,
            pre_selection=PredicateGraph(),
            result_filter=PredicateGraph(),
        )

    def chain(reused_fn, new_fn):
        return StreamProperties(
            stream="photons",
            item_path=Path("photons/photon"),
            operators=(
                agg(reused_fn, window),
                ReAggregationSpec(agg(reused_fn, window), agg(new_fn, wide)),
            ),
        )

    # avg streams carry (sum, count) pairs: avg → sum is servable...
    assert [d.code for d in check_content(chain("avg", "sum"), view, "s")] == []
    # ...but partial sums cannot rebuild an average.
    diags = check_content(chain("sum", "avg"), view, "s")
    assert "T215" in [d.code for d in diags]


def test_empty_operator_chain_is_trivially_typed(photon_stats):
    view = SchemaView.from_statistics(photon_stats)
    content = StreamProperties(stream="photons", item_path=Path("photons/photon"))
    assert check_content(content, view, "stream 'raw'") == []


def test_aggregation_after_window_contents_is_accepted(photon_stats):
    # A window-contents stage re-emits the (selected, projected) items
    # in batches — the item schema survives, so a downstream aggregation
    # still types.  The converse order is rejected as T213.
    from repro.predicates import PredicateGraph
    from repro.properties import AggregationSpec

    view = SchemaView.from_statistics(photon_stats)
    window = WindowSpec(
        "diff", Fraction(20), Fraction(10), reference=Path("photons/photon/det_time")
    )
    aggregation = AggregationSpec(
        function="avg",
        aggregated_path=Path("photons/photon/en"),
        window=window,
        pre_selection=PredicateGraph(),
        result_filter=PredicateGraph(),
    )
    accepted = StreamProperties(
        stream="photons",
        item_path=Path("photons/photon"),
        operators=(WindowContentsSpec(window=window), aggregation),
    )
    assert check_content(accepted, view, "s") == []
    rejected = StreamProperties(
        stream="photons",
        item_path=Path("photons/photon"),
        operators=(aggregation, WindowContentsSpec(window=window)),
    )
    assert [d.code for d in check_content(rejected, view, "s")] == ["T213"]


def test_restructure_only_chain_is_rejected(photon_stats):
    from repro.properties import RestructureSpec

    view = SchemaView.from_statistics(photon_stats)
    content = StreamProperties(
        stream="photons",
        item_path=Path("photons/photon"),
        operators=(RestructureSpec("Q1"),),
    )
    diags = check_content(content, view, "stream 'post'")
    assert [d.code for d in diags] == ["T217"]
    assert "never reused" in diags[0].hint


# ----------------------------------------------------------------------
# The pre-flight hook
# ----------------------------------------------------------------------
def test_verify_flag_accepts_valid_registrations():
    system = make_system(verify=True)
    for name in ("Q1", "Q2", "Q3", "Q4"):
        result = system.register_query(name, PAPER_QUERIES[name], "P1")
        assert result.accepted


def test_verify_flag_rejects_invalid_plan():
    system = make_system(verify=True)
    system.register_query("Q1", PAPER_QUERIES["Q1"], "P1")
    # Corrupt the deployment the way a buggy planner would: a cycle.
    delivered = system.deployment.queries["Q1"].delivered[0][1]
    stream = system.deployment.streams[delivered]
    reroute(system, delivered, stream.route + (stream.route[-2], stream.route[-1]))
    with pytest.raises(InvariantViolation) as exc:
        system.register_query("Q2", PAPER_QUERIES["Q2"], "P1")
    assert "P103" in exc.value.report.codes()
    assert delivered in str(exc.value)


def test_verify_flag_guards_execution():
    system = make_system(verify=True)
    system.register_query("Q1", PAPER_QUERIES["Q1"], "P1")
    system.deployment.usage.add_peer_work("SP2", 123.0)
    with pytest.raises(InvariantViolation):
        system.run(duration=1.0)


def test_install_derived_stream_commits_and_releases_effects():
    system = make_system(verify=True)
    system.register_query("Q1", PAPER_QUERIES["Q1"], "P1")
    system.install_derived_stream(
        "photons#udf", "photons", [UdfSpec(name="calibrate")], target="P2"
    )
    report = verify_system(system)
    assert report.ok, report.render()
    # Deregistration garbage-collects the administrative stream too and
    # must return the ledger to (numerically) zero.
    system.deregister_query("Q1")
    assert "photons#udf" not in system.deployment.streams
    assert verify_system(system).ok
    usage = system.deployment.usage
    assert all(abs(w) < 1e-3 for w in usage._peer_work.values())
    assert all(abs(b) < 1e-3 for b in usage._link_bits.values())


def test_verify_deployment_accepts_explicit_schema_override(catalog):
    system = registered_system(queries=("Q1",))
    report = verify_deployment(system.deployment, catalog=catalog)
    assert report.ok, report.render()
