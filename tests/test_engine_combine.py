"""Tests for multi-input combination (latest-value post-processing)."""

import pytest

from repro.engine.combine import LatestValueCombiner
from repro.network.topology import Network
from repro.sharing import StreamGlobe
from repro.workload.photons import PhotonGenerator, PhotonStreamConfig
from repro.wxquery import analyze, parse_query
from repro.xmlkit import Element, element

TWO_STREAM_QUERY = """
<pair>{ for $p in stream("left")/photons/photon
        for $q in stream("right")/photons/photon
        return <both> { $p/en } { $q/en } </both> }</pair>
"""


def analyzed_two_stream():
    return analyze(parse_query(TWO_STREAM_QUERY))


def photon(en):
    return element("photon", element("en", text=float(en)))


class TestLatestValueCombiner:
    def test_requires_multi_input(self):
        single = analyze(
            parse_query('<r>{ for $p in stream("s")/a/b return $p }</r>')
        )
        with pytest.raises(ValueError):
            LatestValueCombiner(single)

    def test_no_output_until_all_inputs_seen(self):
        combiner = LatestValueCombiner(analyzed_two_stream())
        assert combiner.push("left", photon(1.0)) == []
        assert combiner.latest("right") is None
        results = combiner.push("right", photon(2.0))
        assert len(results) == 1
        assert [c.text for c in results[0].children] == ["1.0", "2.0"]

    def test_latest_value_semantics(self):
        combiner = LatestValueCombiner(analyzed_two_stream())
        combiner.push("left", photon(1.0))
        combiner.push("right", photon(2.0))
        (result,) = combiner.push("left", photon(3.0))
        # New left pairs with the most recent right.
        assert [c.text for c in result.children] == ["3.0", "2.0"]

    def test_unknown_stream_rejected(self):
        combiner = LatestValueCombiner(analyzed_two_stream())
        with pytest.raises(ValueError):
            combiner.push("middle", photon(1.0))

    def test_every_push_after_warmup_emits(self):
        combiner = LatestValueCombiner(analyzed_two_stream())
        combiner.push("left", photon(0.0))
        combiner.push("right", photon(0.0))
        emitted = 0
        for index in range(10):
            stream = "left" if index % 2 == 0 else "right"
            emitted += len(combiner.push(stream, photon(index)))
        assert emitted == 10


def _two_stream_network():
    net = Network()
    for name in ("SPL", "SPM", "SPR"):
        net.add_super_peer(name)
    net.add_link("SPL", "SPM")
    net.add_link("SPM", "SPR")
    net.add_thin_peer("L", "SPL")
    net.add_thin_peer("R", "SPR")
    net.add_thin_peer("U", "SPM")
    return net


class TestMultiInputEndToEnd:
    def test_two_stream_subscription_executes(self):
        system = StreamGlobe(_two_stream_network(), strategy="stream-sharing")
        left_config = PhotonStreamConfig(seed=1, frequency=40.0)
        right_config = PhotonStreamConfig(seed=2, frequency=40.0)
        system.register_stream(
            "left", "photons/photon", lambda: PhotonGenerator(left_config),
            frequency=40.0, source_peer="L",
        )
        system.register_stream(
            "right", "photons/photon", lambda: PhotonGenerator(right_config),
            frequency=40.0, source_peer="R",
        )
        result = system.register_query("pair", TWO_STREAM_QUERY, "U")
        assert result.accepted
        assert len(result.plan.inputs) == 2
        metrics = system.run(duration=5.0)
        generated = metrics.items_generated
        # Round-robin latest-value combination: one result per input
        # item except the very first (warm-up).
        expected = generated["left"] + generated["right"] - 1
        assert metrics.items_delivered["pair"] == expected

    def test_multi_input_deployment_healthy(self):
        from repro.sharing.validate import validate_deployment

        system = StreamGlobe(_two_stream_network(), strategy="stream-sharing")
        for name, seed, peer in [("left", 1, "L"), ("right", 2, "R")]:
            config = PhotonStreamConfig(seed=seed, frequency=40.0)
            system.register_stream(
                name, "photons/photon",
                (lambda cfg: (lambda: PhotonGenerator(cfg)))(config),
                frequency=40.0, source_peer=peer,
            )
        system.register_query("pair", TWO_STREAM_QUERY, "U")
        assert validate_deployment(system.deployment) == []
