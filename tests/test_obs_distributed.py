"""Distributed observability: trace-merge identity, SLOs, live serving.

Pins the PR-10 contracts (DESIGN.md §15):

* a traced ``workers=2`` run on the multi-hotspot churn scenario
  (including its ``staggered_crashes`` fault schedule) merges to the
  same counter totals and epoch series as the sequential traced run,
  with ``RunMetrics`` still byte-identical;
* the segment merge is invariant under segment arrival order;
* worker crashes surface as structured ``cell.error`` events;
* :class:`MetricsServer` answers ``/metrics``, ``/healthz`` and
  ``/slo.json`` over real HTTP;
* :class:`QuerySLO` and :class:`Histogram` quantiles round-trip.
"""

import json
import random
import urllib.error
import urllib.request

import pytest

from repro.bench.harness import run_scenario
from repro.engine.executor import ExecutionError
from repro.engine.parallel import _ProcessCell
from repro.obs import (
    Histogram,
    MetricsServer,
    QuerySLO,
    Recorder,
    SegmentStore,
    slos_from_events,
)
from repro.workload.scenarios import scenario_churn_hotspots


def _hist(values):
    hist = Histogram()
    for value in values:
        hist.observe(value)
    return hist


@pytest.fixture(scope="module")
def traced_pair():
    """Sequential and 2-worker traced runs of the same churn scenario.

    ``scenario_churn_hotspots`` ships a ``staggered_crashes`` fault
    schedule (two rolling crash/rejoin pairs), so this fixture also
    covers trace merging across mid-run plan repair.
    """
    # workers=1 pins the sequential executor even when the suite runs
    # under REPRO_PARALLEL=N.
    seq = run_scenario(
        scenario_churn_hotspots(), "stream-sharing", recorder=Recorder(),
        workers=1,
    )
    par = run_scenario(
        scenario_churn_hotspots(),
        "stream-sharing",
        recorder=Recorder(),
        workers=2,
    )
    return seq, par


class TestTraceMergeIdentity:
    def test_faults_actually_fired(self, traced_pair):
        seq, par = traced_pair
        assert seq.metrics.faults_applied >= 2  # staggered crash + rejoin
        assert par.metrics.faults_applied == seq.metrics.faults_applied

    def test_metrics_byte_identical(self, traced_pair):
        seq, par = traced_pair
        assert par.metrics == seq.metrics
        assert par.metrics.items_lost_by_query == seq.metrics.items_lost_by_query

    def test_counter_totals_match_sequential(self, traced_pair):
        seq, par = traced_pair
        mismatched = {
            name: (value, par.system.recorder.counters.get(name))
            for name, value in seq.system.recorder.counters.items()
            # columnar.* counts kernel dispatches inside one process and
            # is inherently process-local under fork (DESIGN.md §15).
            if not name.startswith("columnar.")
            and par.system.recorder.counters.get(name) != value
        }
        assert mismatched == {}

    def test_parallel_extras_are_exchange_metrics(self, traced_pair):
        seq, par = traced_pair
        extras = set(par.system.recorder.counters) - set(
            seq.system.recorder.counters
        )
        assert extras  # the sharded plane reports its exchange traffic
        assert all(
            name.startswith(("exchange.", "exec.", "columnar."))
            for name in extras
        )

    def test_epoch_series_align(self, traced_pair):
        seq, par = traced_pair
        sequential = seq.system.recorder.epochs
        sharded = par.system.recorder.epochs
        # The parent emits one snapshot per cell per barrier; summing
        # across cells at each boundary must reproduce the sequential
        # series for generation (delivery may lag by the certified
        # epoch_lag, so only its total is pinned).
        generated = {}
        delivered_total = 0
        for epoch in sharded:
            key = (epoch.t_start, epoch.t_end)
            generated[key] = generated.get(key, 0) + epoch.items_generated
            delivered_total += epoch.items_delivered
        assert set(generated) == {
            (epoch.t_start, epoch.t_end) for epoch in sequential
        }
        for epoch in sequential:
            assert generated[(epoch.t_start, epoch.t_end)] == epoch.items_generated
        assert delivered_total == sum(e.items_delivered for e in sequential)

    def test_shard_tagged_spans_and_histograms(self, traced_pair):
        _, par = traced_pair
        recorder = par.system.recorder
        shards = {
            span.attrs["shard"]
            for span in recorder.spans
            if "shard" in span.attrs
        }
        assert shards == {0, 1}
        cell_names = [
            name for name in recorder.histograms if ".batch_s.shard" in name
        ]
        assert cell_names
        # Per-cell histograms partition the merged global series.
        globals_ = {
            name for name in recorder.histograms
            if name.endswith(".batch_s")
        }
        for name in globals_:
            cells = [
                hist
                for cell, hist in recorder.histograms.items()
                if cell.startswith(name + ".shard")
            ]
            assert sum(h.count for h in cells) == recorder.histograms[name].count

    def test_exchange_flow_events(self, traced_pair):
        _, par = traced_pair
        flows = [
            event["fields"]
            for event in par.system.recorder.events
            if event["name"] == "exchange.flow"
        ]
        assert flows
        ids = [fields["flow"] for fields in flows]
        assert ids == sorted(ids) and len(set(ids)) == len(ids)
        for fields in flows:
            assert fields["src"] != fields["dst"]
            assert fields["items"] >= 1 and fields["batches"] >= 1
        assert sum(f["items"] for f in flows) == par.system.recorder.counters[
            "exchange.items"
        ]

    def test_slo_delivery_matches_across_executors(self, traced_pair):
        seq, par = traced_pair
        sequential = {s.query: s for s in seq.system.last_simulator.last_query_slos}
        sharded = {s.query: s for s in par.system.last_simulator.last_query_slos}
        assert set(sequential) == set(sharded)
        for name, slo in sequential.items():
            other = sharded[name]
            # What was delivered is executor-independent; *where* and
            # with what freshness is a property of the shard plan.
            assert other.delivered_inputs == slo.delivered_inputs
            assert other.delivered_results == slo.delivered_results
            assert other.items_lost == slo.items_lost
            assert other.parked == slo.parked
            assert slo.shard == 0 and slo.epoch_lag == 0
        lagged = [s for s in sharded.values() if s.epoch_lag > 0]
        assert lagged, "expected at least one cut-crossing delivery chain"
        for slo in lagged:
            assert slo.delivery_latency_s > 0.0

    def test_query_slo_events_in_merged_log(self, traced_pair):
        _, par = traced_pair
        slos = slos_from_events(par.system.recorder.events)
        assert [s.query for s in slos] == sorted(s.query for s in slos)
        assert len(slos) == len(par.system.last_simulator.last_query_slos)


class TestSegmentShuffleInvariance:
    def _segments(self):
        segments = []
        for shard in (0, 1):
            base = shard * 100
            segments.append(
                {
                    "shard": shard,
                    "spans": [
                        {
                            "id": base + 1,
                            "parent": None,
                            "name": "cell.step",
                            "t0": 0.1,
                            "t1": 0.2,
                            "attrs": {"until": 5.0},
                        },
                        {
                            "id": base + 2,
                            "parent": base + 1,
                            "name": "cell.flush",
                            "t0": 0.15,
                            "t1": 0.18,
                            "attrs": {},
                        },
                    ],
                    "events": [
                        {"t": 0.2, "name": "cell.mark", "fields": {"n": shard}}
                    ],
                    "counters": {"cell.steps": 1},
                    "histograms": {},
                }
            )
            # A later cumulative ship from the same shard supersedes.
            segments.append(
                {
                    "shard": shard,
                    "spans": [
                        {
                            "id": base + 3,
                            "parent": None,
                            "name": "cell.step",
                            "t0": 0.3,
                            "t1": 0.4,
                            "attrs": {"until": 10.0},
                        }
                    ],
                    "events": [],
                    "counters": {"cell.steps": 2},
                    "histograms": {
                        "op.sel.batch_s": _hist([0.001, 0.002]).to_dict()
                    },
                }
            )
        return segments

    @staticmethod
    def _fingerprint(recorder):
        return (
            [
                (s.name, s.parent_id, s.start_s, s.end_s, tuple(sorted(s.attrs.items())))
                for s in recorder.spans
            ],
            recorder.events,
            dict(recorder.counters),
            {k: h.to_dict() for k, h in recorder.histograms.items()},
        )

    def test_merge_is_arrival_order_invariant(self):
        segments = self._segments()
        reference = None
        for seed in range(4):
            # Shuffle ships *across* shards; within a shard the barrier
            # protocol preserves order, so keep each shard's ships
            # relatively ordered (stable sort by per-shard sequence).
            shuffled = list(segments)
            random.Random(seed).shuffle(shuffled)
            per_shard = {0: [], 1: []}
            for segment in segments:
                per_shard[segment["shard"]].append(segment)
            ordered = []
            position = {0: 0, 1: 0}
            for segment in shuffled:
                shard = segment["shard"]
                ordered.append(per_shard[shard][position[shard]])
                position[shard] += 1
            store = SegmentStore(2)
            for segment in ordered:
                store.absorb(segment)
            store.absorb(None)  # cells that recorded nothing ship nothing
            recorder = Recorder()
            store.merge_into(recorder)
            fingerprint = self._fingerprint(recorder)
            if reference is None:
                reference = fingerprint
            assert fingerprint == reference

    def test_parent_links_and_shard_tags_survive(self):
        store = SegmentStore(2)
        for segment in self._segments():
            store.absorb(segment)
        recorder = Recorder()
        store.merge_into(recorder)
        child = next(s for s in recorder.spans if s.name == "cell.flush")
        parent = next(
            s
            for s in recorder.spans
            if s.span_id == child.parent_id
        )
        assert parent.name == "cell.step"
        assert parent.attrs["shard"] == child.attrs["shard"]
        assert recorder.counters["cell.steps"] == 4  # cumulative, 2 cells
        assert recorder.histograms["op.sel.batch_s"].count == 4
        assert recorder.histograms["op.sel.batch_s.shard1"].count == 2


class _FakeConn:
    def __init__(self, reply):
        self._reply = reply

    def recv(self):
        if isinstance(self._reply, BaseException):
            raise self._reply
        return self._reply


def _fake_cell(reply, recorder, shard=1):
    cell = _ProcessCell.__new__(_ProcessCell)
    cell._conn = _FakeConn(reply)
    cell._shard = shard
    cell._recorder = recorder
    return cell


class TestCellErrorEvents:
    def test_structured_crash_becomes_event(self):
        recorder = Recorder()
        payload = {
            "exc_type": "ValueError",
            "message": "bad batch",
            "traceback": "Traceback (most recent call last): ...",
        }
        cell = _fake_cell(("error", payload), recorder)
        with pytest.raises(ExecutionError) as info:
            cell.result()
        assert "ValueError: bad batch" in str(info.value)
        (event,) = recorder.events
        assert event["name"] == "cell.error"
        assert event["fields"]["shard"] == 1
        assert event["fields"]["exc_type"] == "ValueError"
        assert "Traceback" in event["fields"]["traceback"]

    def test_dead_worker_becomes_event(self):
        recorder = Recorder()
        cell = _fake_cell(EOFError(), recorder, shard=0)
        with pytest.raises(ExecutionError, match="worker died"):
            cell.result()
        (event,) = recorder.events
        assert event["fields"]["exc_type"] == "WorkerDied"

    def test_untraced_cells_stay_silent(self):
        from repro.obs import NULL_RECORDER

        cell = _fake_cell(("error", {"exc_type": "X", "message": "m",
                                     "traceback": ""}), NULL_RECORDER)
        with pytest.raises(ExecutionError):
            cell.result()


class TestMetricsServer:
    @pytest.fixture()
    def server(self):
        recorder = Recorder()
        recorder.inc("exchange.cell0->cell1.items", 12)
        recorder.inc("cache.route.hits", 3)
        recorder.observe("op.sel.batch_s", 0.004)
        slos = [
            QuerySLO(
                query="Q1", shard=1, epoch_lag=1, delivery_latency_s=5.0,
                delivered_inputs=10, delivered_results=9, items_lost=0,
                migrations=0, backpressure_epochs=2, queue_peak=40,
            )
        ]
        with MetricsServer(recorder, slo_provider=lambda: slos) as srv:
            yield srv

    @staticmethod
    def _get(server, path):
        with urllib.request.urlopen(server.url + path, timeout=5) as reply:
            return reply.status, reply.headers, reply.read().decode("utf-8")

    def test_metrics_endpoint(self, server):
        status, headers, body = self._get(server, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain; version=0.0.4")
        assert (
            'repro_exchange_pair_items_total{src_shard="0",dst_shard="1"} 12'
            in body
        )
        assert "repro_cache_route_hits 3" in body

    def test_healthz_endpoint(self, server):
        status, _, body = self._get(server, "/healthz")
        payload = json.loads(body)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["counters"] == 2
        assert payload["histograms"] == 1
        assert payload["uptime_s"] >= 0.0

    def test_slo_endpoint(self, server):
        status, _, body = self._get(server, "/slo.json")
        (record,) = json.loads(body)
        assert status == 200
        assert record["query"] == "Q1"
        assert record["delivery_latency_s"] == 5.0
        assert QuerySLO.from_dict(record).backpressure_epochs == 2

    def test_unknown_path_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as info:
            self._get(server, "/nope")
        assert info.value.code == 404

    def test_stop_is_idempotent(self, server):
        server.stop()
        server.stop()


class TestQuerySLORoundTrip:
    def test_dict_round_trip(self):
        slo = QuerySLO(
            query="Q7", shard=0, epoch_lag=0, delivery_latency_s=0.0,
            delivered_inputs=5, delivered_results=5, items_lost=1,
            migrations=2, backpressure_epochs=0, queue_peak=9, parked=True,
        )
        assert QuerySLO.from_dict(slo.to_dict()) == slo

    def test_from_dict_ignores_foreign_fields(self):
        data = {
            "query": "Q1", "shard": 0, "epoch_lag": 0,
            "delivery_latency_s": 0.0, "delivered_inputs": 1,
            "delivered_results": 1, "items_lost": 0, "migrations": 0,
            "backpressure_epochs": 0, "queue_peak": 0,
            "future_field": "ignored",
        }
        assert QuerySLO.from_dict(data).query == "Q1"

    def test_slos_from_events_filters_and_sorts(self):
        events = [
            {"t": 0.0, "name": "other", "fields": {}},
            {"t": 1.0, "name": "query.slo", "fields": {
                "query": "Q2", "shard": 1, "epoch_lag": 0,
                "delivery_latency_s": 0.0, "delivered_inputs": 0,
                "delivered_results": 0, "items_lost": 0, "migrations": 0,
                "backpressure_epochs": 0, "queue_peak": 0,
            }},
            {"t": 1.0, "name": "query.slo", "fields": {
                "query": "Q1", "shard": 0, "epoch_lag": 0,
                "delivery_latency_s": 0.0, "delivered_inputs": 0,
                "delivered_results": 0, "items_lost": 0, "migrations": 0,
                "backpressure_epochs": 0, "queue_peak": 0,
            }},
        ]
        assert [s.query for s in slos_from_events(events)] == ["Q1", "Q2"]


class TestHistogramQuantiles:
    def test_quantiles_are_monotone(self):
        hist = _hist([0.001 * n for n in range(1, 200)])
        summary = hist.to_dict()
        assert summary["p50"] <= summary["p95"] <= summary["p99"] <= summary["max"]
        assert summary["p50"] == pytest.approx(0.1, rel=0.5)

    def test_round_trip_preserves_quantiles(self):
        hist = _hist([0.002, 0.02, 0.2, 2.0])
        clone = Histogram.from_dict(hist.to_dict())
        assert clone.to_dict() == hist.to_dict()

    def test_merge_accumulates(self):
        a = _hist([0.001, 0.01])
        b = _hist([0.1, 1.0])
        a.merge(b)
        assert a.count == 4
        assert a.to_dict()["p99"] >= 0.1
