"""Unit tests for the photon generator, templates, and scenarios."""

import pytest

from repro.wxquery import analyze, parse_query
from repro.workload import (
    PhotonGenerator,
    PhotonStreamConfig,
    QueryTemplateGenerator,
    RXJ_REGION,
    VELA_REGION,
    average_item_size,
    scenario_one,
    scenario_two,
)
from repro.xmlkit import PHOTON_SCHEMA


class TestPhotonGenerator:
    def test_deterministic_for_seed(self):
        first = PhotonGenerator(PhotonStreamConfig(seed=5)).take(50)
        second = PhotonGenerator(PhotonStreamConfig(seed=5)).take(50)
        assert first == second

    def test_different_seeds_differ(self):
        first = PhotonGenerator(PhotonStreamConfig(seed=5)).take(50)
        second = PhotonGenerator(PhotonStreamConfig(seed=6)).take(50)
        assert first != second

    def test_items_conform_to_schema(self):
        for item in PhotonGenerator(PhotonStreamConfig(seed=7)).take(100):
            PHOTON_SCHEMA.validate(item)

    def test_det_time_strictly_increasing(self):
        generator = PhotonGenerator(PhotonStreamConfig(seed=7))
        times = [float(item.find(["det_time"]).text) for item in generator.items(200)]
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_clock_tracks_frequency(self):
        generator = PhotonGenerator(PhotonStreamConfig(seed=7, frequency=50.0))
        generator.take(500)
        # 500 items at 50/s ≈ 10 virtual seconds.
        assert generator.clock == pytest.approx(10.0, rel=0.15)
        assert generator.emitted == 500

    def test_positions_inside_strip(self):
        config = PhotonStreamConfig(seed=7)
        for item in PhotonGenerator(config).take(200):
            ra = float(item.find(["coord", "cel", "ra"]).text)
            dec = float(item.find(["coord", "cel", "dec"]).text)
            assert config.strip.contains(ra, dec)

    def test_energies_in_band(self):
        config = PhotonStreamConfig(seed=7)
        for item in PhotonGenerator(config).take(200):
            energy = float(item.find(["en"]).text)
            assert config.energy_min <= energy <= config.energy_max

    def test_hot_spot_overdensity(self):
        """The vela region must be photon-rich (its hot spot drives the
        paper's example queries)."""
        sample = PhotonGenerator(PhotonStreamConfig(seed=7)).take(2000)
        in_vela = sum(
            1 for item in sample
            if VELA_REGION.contains(
                float(item.find(["coord", "cel", "ra"]).text),
                float(item.find(["coord", "cel", "dec"]).text),
            )
        )
        strip_area = (160 - 100) * (60 - 20)
        vela_area = (VELA_REGION.ra_max - VELA_REGION.ra_min) * (
            VELA_REGION.dec_max - VELA_REGION.dec_min
        )
        uniform_expectation = len(sample) * vela_area / strip_area
        assert in_vela > 2 * uniform_expectation

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            PhotonStreamConfig(frequency=0)

    def test_average_item_size_stable(self):
        assert average_item_size() == average_item_size()

    def test_region_helpers(self):
        assert RXJ_REGION.ra_min >= VELA_REGION.ra_min
        assert VELA_REGION.contains(*RXJ_REGION.center)


class TestQueryTemplates:
    def test_deterministic(self):
        first = QueryTemplateGenerator(seed=3).generate(20)
        second = QueryTemplateGenerator(seed=3).generate(20)
        assert first == second

    def test_all_generated_queries_are_valid_wxquery(self):
        for generated in QueryTemplateGenerator(seed=3).generate(60):
            analyzed = analyze(parse_query(generated.text))
            assert analyzed.streams() == ["photons"]

    def test_kinds_cover_all_templates(self):
        kinds = {g.kind for g in QueryTemplateGenerator(seed=3).generate(60)}
        assert kinds == {"selection", "projection", "aggregation"}

    def test_names_unique(self):
        names = [g.name for g in QueryTemplateGenerator(seed=3).generate(40)]
        assert len(names) == len(set(names))

    def test_stream_parameter_respected(self):
        generated = QueryTemplateGenerator(stream="other", seed=3).generate(10)
        for g in generated:
            assert 'stream("other")' in g.text

    def test_shareability_engineered(self):
        """Pool-drawn constants must actually collide: some pair of
        generated selection queries shares an identical predicate."""
        from repro.properties import extract_properties

        generated = QueryTemplateGenerator(seed=3).generate(40)
        graphs = []
        for g in generated:
            if g.kind == "aggregation":
                continue
            p = extract_properties(parse_query(g.text), g.name).single_input()
            if p.selection is not None:
                graphs.append(p.selection.graph)
        collisions = sum(
            1
            for i, a in enumerate(graphs)
            for b in graphs[i + 1:]
            if a == b
        )
        assert collisions > 0


class TestScenarios:
    def test_scenario_one_shape(self):
        scenario = scenario_one()
        assert len(scenario.queries) == 25
        assert len(scenario.sources) == 1
        net = scenario.build_network()
        assert len(net) == 8

    def test_scenario_two_shape(self):
        scenario = scenario_two()
        assert len(scenario.queries) == 100
        assert len(scenario.sources) == 2
        net = scenario.build_network()
        assert len(net) == 16
        assert net.home_of("T0") == "SP0"
        assert net.home_of("T1") == "SP15"

    def test_scenarios_deterministic(self):
        assert [q.text for q in scenario_one().queries] == [
            q.text for q in scenario_one().queries
        ]

    def test_scenario_two_uses_both_streams(self):
        streams = set()
        for query in scenario_two().queries:
            streams.update(analyze(parse_query(query.text)).streams())
        assert streams == {"photons", "photons2"}

    def test_all_scenario_queries_parse(self):
        for scenario in (scenario_one(), scenario_two()):
            for query in scenario.queries:
                analyze(parse_query(query.text))
