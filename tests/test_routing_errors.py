"""Routing error messages must say *which* endpoint or removal is at
fault — the repair path surfaces these to operators."""

import pytest

from repro.network.routing import NoRouteError, shortest_path
from repro.network.topology import Network, TopologyError


def line() -> Network:
    net = Network()
    for name in ("A", "B", "C"):
        net.add_super_peer(name)
    net.add_link("A", "B")
    net.add_link("B", "C")
    return net


class TestUnknownEndpoints:
    def test_names_the_missing_endpoint(self):
        with pytest.raises(TopologyError, match=r"endpoint: 'Z' \(never existed\)"):
            shortest_path(line(), "A", "Z")

    def test_names_both_missing_endpoints(self):
        with pytest.raises(TopologyError) as excinfo:
            shortest_path(line(), "X", "Z")
        message = str(excinfo.value)
        assert "endpoints" in message
        assert "'X' (never existed)" in message
        assert "'Z' (never existed)" in message

    def test_distinguishes_removed_from_never_existed(self):
        net = line()
        net.remove_super_peer("C")
        with pytest.raises(
            TopologyError, match=r"'C' \(removed from the backbone\)"
        ):
            shortest_path(net, "A", "C")


class TestNoRoute:
    def test_mentions_removed_peers(self):
        net = line()
        net.remove_super_peer("B")
        with pytest.raises(NoRouteError, match="removed super-peers: B"):
            shortest_path(net, "A", "C")

    def test_mentions_removed_links(self):
        net = line()
        net.remove_link("A", "B")
        with pytest.raises(NoRouteError, match="removed links: A-B"):
            shortest_path(net, "A", "C")

    def test_no_churn_note_without_removals(self):
        net = Network()
        net.add_super_peer("A")
        net.add_super_peer("B")
        with pytest.raises(NoRouteError) as excinfo:
            shortest_path(net, "A", "B")
        assert str(excinfo.value) == "no route from A to B"
