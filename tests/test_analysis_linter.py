"""Linter rules: each fires on a seeded snippet and stays quiet on src/repro."""

from __future__ import annotations

import os
import textwrap

from repro.analysis import lint_paths, lint_source


def codes(source: str):
    return [d.code for d in lint_source(textwrap.dedent(source))]


# ----------------------------------------------------------------------
# L301 — mutable default arguments
# ----------------------------------------------------------------------
def test_mutable_default_list_fires():
    assert codes("def f(items=[]):\n    return items\n") == ["L301"]


def test_mutable_default_constructor_fires():
    assert codes("def f(seen=set(), *, index=dict()):\n    return seen\n") == [
        "L301",
        "L301",
    ]


def test_immutable_defaults_are_fine():
    assert codes("def f(a=(), b=None, c=1.5, d=frozenset()):\n    return a\n") == []


# ----------------------------------------------------------------------
# L302 — float literal equality
# ----------------------------------------------------------------------
def test_float_literal_equality_fires():
    assert codes("ok = cost == 1.0\n") == ["L302"]
    assert codes("ok = 0.5 != gamma\n") == ["L302"]
    assert codes("ok = x == -1.0\n") == ["L302"]


def test_float_ordering_and_int_equality_are_fine():
    assert codes("ok = cost >= 1.0\n") == []
    assert codes("ok = count == 1\n") == []
    assert codes("ok = a == b\n") == []  # variables: intent unknown


# ----------------------------------------------------------------------
# L303 / L305 — exception handling
# ----------------------------------------------------------------------
def test_bare_except_fires():
    source = """
    try:
        work()
    except:
        pass
    """
    assert codes(source) == ["L303"]


def test_silent_broad_except_fires():
    source = """
    try:
        work()
    except Exception:
        pass
    """
    assert codes(source) == ["L305"]


def test_handled_broad_except_is_fine():
    source = """
    try:
        work()
    except Exception as exc:
        log(exc)
    """
    assert codes(source) == []


def test_silent_narrow_except_is_fine():
    source = """
    try:
        work()
    except ValueError:
        pass
    """
    assert codes(source) == []


# ----------------------------------------------------------------------
# L304 — frozen dataclass mutation
# ----------------------------------------------------------------------
def test_setattr_outside_construction_fires():
    source = """
    def widen(stream, route):
        object.__setattr__(stream, "route", route)
    """
    assert codes(source) == ["L304"]


def test_setattr_in_post_init_is_fine():
    source = """
    class InstalledStream:
        def __post_init__(self):
            object.__setattr__(self, "route", tuple(self.route))
    """
    assert codes(source) == []


# ----------------------------------------------------------------------
# L306 — stateful operators
# ----------------------------------------------------------------------
def test_operator_rebinding_global_fires():
    source = """
    class Selection:
        def process(self, item):
            global COUNT
            COUNT += 1
    """
    assert codes(source) == ["L306"]


def test_operator_writing_class_attribute_fires():
    source = """
    class Window:
        buffer = []
        def flush(self):
            Window.buffer = []
    """
    assert codes(source) == ["L306"]
    source = """
    class Window:
        def process(self, item):
            self.__class__.count += 1
    """
    assert codes(source) == ["L306"]


def test_operator_instance_state_is_fine():
    source = """
    class Window:
        def process(self, item):
            self.buffer.append(item)
            self.count += 1
    """
    assert codes(source) == []


def test_module_level_process_function_is_fine():
    assert codes("def process(item):\n    queue = []\n    queue.append(item)\n") == []


# ----------------------------------------------------------------------
# L310 — nondeterministic set iteration
# ----------------------------------------------------------------------
def test_for_loop_over_set_arithmetic_fires():
    assert codes("for x in set(a) - set(b):\n    emit(x)\n") == ["L310"]


def test_comprehension_over_set_literal_fires():
    assert codes("out = [f(x) for x in {1, 2, 3}]\n") == ["L310"]


def test_order_sensitive_sinks_fire():
    assert codes("text = ', '.join(set(names))\n") == ["L310"]
    assert codes("items = list(frozenset(rows))\n") == ["L310"]
    assert codes("pairs = enumerate(left | right | set(extra))\n") == ["L310"]


def test_set_algebra_methods_fire():
    assert codes("for x in set(a).union(set(b)):\n    emit(x)\n") == ["L310"]


def test_serialization_sinks_fire():
    assert codes("payload = pickle.dumps(set(ids))\n") == ["L310"]
    assert codes("json.dump({x for x in rows}, handle)\n") == ["L310"]
    assert codes("conn.send(set(a) | set(b))\n") == ["L310"]
    assert codes("queue.put(frozenset(batch))\n") == ["L310"]
    assert codes("conn.send_bytes(set(chunks))\n") == ["L310"]


def test_serialization_sinks_check_every_argument():
    # The set payload need not be the first argument (json.dump's
    # object is, but protocol args can push it elsewhere).
    assert codes("pickle.dump(obj, handle)\n") == []
    assert codes("pickle.dumps((ids, set(extra)))\n") == []  # nested: not flagged
    assert codes("conn.send(('step', set(batch)))\n") == []  # nested: not flagged


def test_serialized_sorted_sets_are_fine():
    assert codes("payload = pickle.dumps(sorted(set(ids)))\n") == []
    assert codes("conn.send(list(range(3)))\n") == []


def test_sorted_set_iteration_is_fine():
    assert codes("for x in sorted(set(a) - set(b)):\n    emit(x)\n") == []
    assert codes("text = ', '.join(sorted({x for x in rows}))\n") == []


def test_membership_and_dict_iteration_are_fine():
    assert codes("ok = x in set(a) - set(b)\n") == []  # no iteration order
    assert codes("for k in mapping:\n    emit(k)\n") == []  # dicts are ordered
    assert codes("for x in [1, 2]:\n    emit(x)\n") == []


# ----------------------------------------------------------------------
# The whole tree is clean
# ----------------------------------------------------------------------
def test_src_repro_is_lint_clean():
    root = os.path.join(os.path.dirname(__file__), "..", "src", "repro")
    report = lint_paths([root])
    assert report.ok, report.render()


def test_syntax_error_becomes_diagnostic(tmp_path):
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    report = lint_paths([str(tmp_path)])
    assert report.codes() == ("L300",)
    assert not report.ok
