"""Unit tests for window aggregation, the wire format, and re-aggregation."""

from fractions import Fraction

import pytest

from repro.engine import (
    PartialAggregate,
    ReAggregateOperator,
    WindowAggregateOperator,
    filter_accepts,
    partial_to_wire,
    wire_to_partial,
)
from repro.predicates import PredicateGraph, normalize_comparison
from repro.properties import (
    RESULT_NODE,
    AggregationSpec,
    ReAggregationSpec,
    WindowSpec,
)
from repro.xmlkit import Element, Path, element

ITEM = Path("s/item")
VALUE = ITEM / "v"
TIME = ITEM / "t"


def F(value):
    return Fraction(str(value))


def item(t, v):
    return element("item", Element("t", text=float(t)), Element("v", text=float(v)))


def agg_spec(function="avg", size=4, step=2, filt=None):
    return AggregationSpec(
        function=function,
        aggregated_path=VALUE,
        window=WindowSpec("diff", F(size), F(step), TIME),
        pre_selection=PredicateGraph(),
        result_filter=filt if filt is not None else PredicateGraph(),
    )


def result_filter(op, const):
    return PredicateGraph(normalize_comparison(RESULT_NODE, op, None, F(const)))


class TestPartialAggregate:
    def test_fold_and_final(self):
        partial = PartialAggregate.of_values([1.0, 2.0, 3.0])
        assert partial.final("count") == 3
        assert partial.final("sum") == 6.0
        assert partial.final("min") == 1.0
        assert partial.final("max") == 3.0
        assert partial.final("avg") == 2.0

    def test_empty_window(self):
        empty = PartialAggregate()
        assert empty.final("count") == 0
        assert empty.final("sum") == 0.0
        assert empty.final("min") is None
        assert empty.final("avg") is None

    def test_merge(self):
        a = PartialAggregate.of_values([1.0, 5.0])
        b = PartialAggregate.of_values([3.0])
        a.merge(b)
        assert (a.count, a.total, a.minimum, a.maximum) == (3, 9.0, 1.0, 5.0)

    def test_merge_with_empty(self):
        a = PartialAggregate.of_values([2.0])
        a.merge(PartialAggregate())
        assert a.count == 1 and a.final("avg") == 2.0

    def test_unknown_function(self):
        from repro.engine.operators import EngineError

        with pytest.raises(EngineError):
            PartialAggregate().final("median")


class TestWireFormat:
    @pytest.mark.parametrize("function", ["min", "max", "sum", "count", "avg"])
    def test_roundtrip(self, function):
        partial = PartialAggregate.of_values([1.5, 2.5, 4.0])
        wire = partial_to_wire(partial, function)
        parsed = wire_to_partial(wire, function)
        assert parsed.count == partial.count
        assert parsed.final(function) == partial.final(function)

    def test_avg_carries_sum_and_count(self):
        """Section 3.3: avg aggregates travel as (sum, count) pairs."""
        wire = partial_to_wire(PartialAggregate.of_values([1.0, 3.0]), "avg")
        assert wire.child("sum").text == "4"
        assert wire.child("count").text == "2"

    def test_empty_minmax_window(self):
        wire = partial_to_wire(PartialAggregate(), "min")
        assert wire.child("min") is None
        assert wire_to_partial(wire, "min").final("min") is None

    def test_bad_wire_item_rejected(self):
        from repro.engine.operators import EngineError

        with pytest.raises(EngineError):
            wire_to_partial(element("other"), "avg")


class TestResultFilter:
    def test_accepts_within_bounds(self):
        assert filter_accepts(result_filter(">=", "1.3"), 1.5)
        assert not filter_accepts(result_filter(">=", "1.3"), 1.0)
        assert filter_accepts(result_filter(">=", "1.3"), 1.3)

    def test_empty_filter_accepts_everything(self):
        assert filter_accepts(PredicateGraph(), None)
        assert filter_accepts(PredicateGraph(), -100.0)

    def test_none_value_fails_nonempty_filter(self):
        assert not filter_accepts(result_filter(">=", 0), None)


class TestWindowAggregateOperator:
    def test_emits_per_step(self):
        op = WindowAggregateOperator(agg_spec("avg", size=4, step=2), ITEM)
        out = []
        for t in range(9):
            out.extend(op.process(item(t, t)))
        # Windows [0,4),[2,6),[4,8) complete by position 8.
        assert len(out) == 3
        finals = [wire_to_partial(w, "avg").final("avg") for w in out]
        assert finals == [1.5, 3.5, 5.5]

    def test_empty_windows_emitted_when_unfiltered(self):
        op = WindowAggregateOperator(agg_spec("avg", size=2, step=2), ITEM)
        out = list(op.process(item(0, 1.0)))
        out.extend(op.process(item(9, 2.0)))
        counts = [wire_to_partial(w, "avg").count for w in out]
        assert counts == [1, 0, 0, 0]  # [0,2) full, then empty cadence

    def test_filtered_windows_suppressed(self):
        spec = agg_spec("avg", size=2, step=2, filt=result_filter(">=", "2.0"))
        op = WindowAggregateOperator(spec, ITEM)
        out = []
        for t, v in [(0, 1.0), (1, 1.0), (2, 3.0), (3, 3.0), (4, 0.0)]:
            out.extend(op.process(item(t, v)))
        # [0,2) avg 1.0 suppressed; [2,4) avg 3.0 passes.
        assert len(out) == 1
        assert wire_to_partial(out[0], "avg").final("avg") == 3.0

    def test_item_without_reference_ignored(self):
        op = WindowAggregateOperator(agg_spec(), ITEM)
        assert op.process(element("item", Element("v", text=1))) == []

    def test_missing_value_still_counts_position(self):
        op = WindowAggregateOperator(agg_spec("count", size=2, step=2), ITEM)
        out = list(op.process(item(0, 1.0)))
        out.extend(op.process(element("item", Element("t", text=1.0))))
        out.extend(op.process(item(2.5, 1.0)))
        assert len(out) == 1
        assert wire_to_partial(out[0], "count").count == 1  # NaN dropped

    def test_count_window(self):
        spec = AggregationSpec(
            "sum", VALUE, WindowSpec("count", F(3), F(3)),
            PredicateGraph(), PredicateGraph(),
        )
        op = WindowAggregateOperator(spec, ITEM)
        out = []
        for t in range(7):
            out.extend(op.process(item(t, 1.0)))
        assert len(out) == 2
        assert wire_to_partial(out[0], "sum").total == 3.0


class TestReAggregateOperator:
    def _partials(self, values_per_window, function="avg"):
        return [
            partial_to_wire(PartialAggregate.of_values(values), function)
            for values in values_per_window
        ]

    def test_figure_5_recombination(self):
        """Q3 (|diff 20 step 10|) windows rebuilt into Q4 (|diff 60 step 40|).

        New window n needs reused arrival indices (n·µ' + j·∆)/µ =
        4n + 2j for j = 0..2 — exactly the Figure 5 picture.
        """
        reused = agg_spec("avg", size=20, step=10)
        new = agg_spec("avg", size=60, step=40)
        op = ReAggregateOperator(ReAggregationSpec(reused, new))
        out = []
        # Reused windows: [0,20),[10,30),[20,40),... values = window index.
        for index in range(13):
            out.extend(op.process(self._partials([[float(index)]])[0]))
        # New window 0 = reused 0,2,4; window 1 = reused 4,6,8; window 2 = 8,10,12.
        finals = [wire_to_partial(w, "avg").final("avg") for w in out]
        assert finals == [2.0, 6.0, 10.0]

    def test_identical_windows_pass_through(self):
        spec = ReAggregationSpec(agg_spec("avg"), agg_spec("avg"))
        op = ReAggregateOperator(spec)
        (wire,) = self._partials([[1.0, 2.0]])
        (out,) = op.process(wire)
        assert wire_to_partial(out, "avg").final("avg") == 1.5

    def test_operator_conversion_avg_to_sum(self):
        spec = ReAggregationSpec(agg_spec("avg"), agg_spec("sum"))
        op = ReAggregateOperator(spec)
        (wire,) = self._partials([[1.0, 2.0]])
        (out,) = op.process(wire)
        assert wire_to_partial(out, "sum").total == 3.0

    def test_additional_filter_applied(self):
        spec = ReAggregationSpec(
            agg_spec("avg"), agg_spec("avg", filt=result_filter(">=", "2.0"))
        )
        op = ReAggregateOperator(spec)
        low, high = self._partials([[1.0], [3.0]])
        assert op.process(low) == []
        assert len(op.process(high)) == 1

    def test_empty_reused_windows_merge_neutrally(self):
        reused = agg_spec("avg", size=2, step=2)
        new = agg_spec("avg", size=4, step=4)
        op = ReAggregateOperator(ReAggregationSpec(reused, new))
        out = []
        for values in ([1.0], [], [3.0], []):
            out.extend(op.process(self._partials([values])[0]))
        assert len(out) == 2
        assert wire_to_partial(out[0], "avg").final("avg") == 1.0  # 1.0 + empty
