"""CLI tests: ``python -m repro.obs record|summarize|diff|chrome``."""

import json

import pytest

from repro.obs.cli import hit_rates, main


@pytest.fixture(scope="module")
def run_log_path(tmp_path_factory):
    """One recorded churn-smoke run, shared by the read-only commands."""
    path = tmp_path_factory.mktemp("obs") / "run.jsonl"
    exit_code = main(
        ["record", "--scenario", "churn-smoke", "-o", str(path)]
    )
    assert exit_code == 0
    return str(path)


class TestHitRates:
    def test_pairs_hits_with_misses(self):
        rates = hit_rates(
            {"cache.route.hits": 8, "cache.route.misses": 2, "other": 5}
        )
        assert rates == {"cache.route": (8, 2, 0.8)}

    def test_zero_total_is_zero_rate(self):
        assert hit_rates({"cache.rate.hits": 0})["cache.rate"][2] == 0.0


class TestRecord:
    def test_record_writes_all_artifacts(self, tmp_path, capsys):
        out = tmp_path / "run.jsonl"
        chrome = tmp_path / "trace.json"
        prom = tmp_path / "metrics.txt"
        code = main(
            [
                "record", "--scenario", "churn-smoke",
                "-o", str(out), "--chrome", str(chrome), "--prom", str(prom),
            ]
        )
        assert code == 0
        assert out.exists() and chrome.exists() and prom.exists()
        with open(chrome, "r", encoding="utf-8") as handle:
            assert json.load(handle)["traceEvents"]
        assert prom.read_text().startswith("# TYPE repro_")
        assert "spans" in capsys.readouterr().out

    def test_unknown_scenario_exits(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["record", "--scenario", "nope", "-o", str(tmp_path / "x.jsonl")])


class TestSummarize:
    def test_prints_every_section(self, run_log_path, capsys):
        assert main(["summarize", run_log_path]) == 0
        out = capsys.readouterr().out
        # The acceptance-criterion surface: per-epoch peer CPU / link
        # traffic series, planner span timings, and cache hit rates.
        assert "Per-epoch peer CPU load" in out
        assert "Per-epoch link traffic" in out
        assert "Per-epoch item flow and churn transients" in out
        assert "planner span timings" in out
        assert "register" in out and "search" in out
        assert "cache.route" in out and "hit_rate" in out
        assert "== plan decisions ==" in out
        assert "== repairs ==" in out

    def test_churn_columns_present(self, run_log_path, capsys):
        main(["summarize", run_log_path])
        out = capsys.readouterr().out
        assert "rerouted_bits" in out and "faults" in out


class TestDiff:
    def test_self_diff_reports_identical_counters(self, run_log_path, capsys):
        assert main(["diff", run_log_path, run_log_path]) == 0
        out = capsys.readouterr().out
        assert "(identical)" in out
        assert "Epoch aggregates:" in out

    def test_diff_shows_changed_counters(self, run_log_path, tmp_path, capsys):
        other = tmp_path / "other.jsonl"
        with open(run_log_path, "r", encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle]
        for record in lines:
            if record.get("type") == "counter" and record["name"] == "exec.runs":
                record["value"] += 1
        with open(other, "w", encoding="utf-8") as handle:
            for record in lines:
                handle.write(json.dumps(record) + "\n")
        main(["diff", run_log_path, str(other)])
        out = capsys.readouterr().out
        assert "exec.runs" in out


class TestChromeCommand:
    def test_converts_run_log(self, run_log_path, tmp_path, capsys):
        out = tmp_path / "trace.json"
        assert main(["chrome", run_log_path, "-o", str(out)]) == 0
        with open(out, "r", encoding="utf-8") as handle:
            trace = json.load(handle)
        phases = {event["ph"] for event in trace["traceEvents"]}
        assert {"X", "C"} <= phases
