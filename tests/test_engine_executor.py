"""Integration tests for the measured stream simulator."""

import pytest

from tests.conftest import PAPER_QUERIES, make_system
from repro.engine.executor import ExecutionError, StreamSimulator
from repro.network.topology import example_topology
from repro.properties import raw_stream_properties
from repro.sharing.plan import Deployment, InstalledStream
from repro.workload.photons import PhotonGenerator, PhotonStreamConfig


class TestSimulatorBasics:
    def test_duration_validated(self, example_net):
        with pytest.raises(ExecutionError):
            StreamSimulator(example_net, Deployment(example_net), {}, duration=0)

    def test_missing_generator_detected(self, example_net):
        deployment = Deployment(example_net)
        deployment.install_stream(
            InstalledStream(
                stream_id="photons",
                content=raw_stream_properties("photons", "photons/photon").single_input(),
                origin_node="SP4",
                route=("SP4",),
            )
        )
        simulator = StreamSimulator(example_net, deployment, {}, duration=1.0)
        with pytest.raises(ExecutionError):
            simulator.run()

    def test_source_only_run(self, example_net):
        deployment = Deployment(example_net)
        deployment.install_stream(
            InstalledStream(
                stream_id="photons",
                content=raw_stream_properties("photons", "photons/photon").single_input(),
                origin_node="SP4",
                route=("SP4",),
            )
        )
        generator = PhotonGenerator(PhotonStreamConfig(seed=1, frequency=50.0))
        metrics = StreamSimulator(
            example_net, deployment, {"photons": generator}, duration=2.0
        ).run()
        # ~100 items generated; ingest work at SP4 only; no link traffic.
        assert metrics.items_generated["photons"] == pytest.approx(100, abs=20)
        assert metrics.peer_work.get("SP4", 0) > 0
        assert metrics.link_bits == {}

    def test_max_items_cap(self, example_net):
        deployment = Deployment(example_net)
        deployment.install_stream(
            InstalledStream(
                stream_id="photons",
                content=raw_stream_properties("photons", "photons/photon").single_input(),
                origin_node="SP4",
                route=("SP4",),
            )
        )
        generator = PhotonGenerator(PhotonStreamConfig(seed=1, frequency=50.0))
        metrics = StreamSimulator(
            example_net, deployment, {"photons": generator}, duration=10.0,
            max_items_per_source=7,
        ).run()
        assert metrics.items_generated["photons"] == 7


class TestEndToEndExecution:
    def test_q1_delivery_matches_direct_filtering(self):
        """Items delivered through the network equal direct evaluation."""
        system = make_system("stream-sharing")
        system.register_query("Q1", PAPER_QUERIES["Q1"], "P1")
        metrics = system.run(duration=20.0)

        from repro.workload.photons import VELA_REGION

        generator = PhotonGenerator(PhotonStreamConfig(seed=20060326, frequency=100.0))
        expected = 0
        while generator.clock < 20.0:
            item = generator.next_item()
            ra = float(item.find(["coord", "cel", "ra"]).text)
            dec = float(item.find(["coord", "cel", "dec"]).text)
            if VELA_REGION.contains(ra, dec):
                expected += 1
        assert metrics.items_delivered["Q1"] == expected

    def test_q2_subset_of_q1(self):
        system = make_system("stream-sharing")
        system.register_query("Q1", PAPER_QUERIES["Q1"], "P1")
        system.register_query("Q2", PAPER_QUERIES["Q2"], "P2")
        metrics = system.run(duration=20.0)
        assert 0 < metrics.items_delivered["Q2"] <= metrics.items_delivered["Q1"]

    def test_sharing_strategies_deliver_identical_results(self):
        """The optimizer must never change *what* is delivered."""
        deliveries = {}
        for strategy in ("data-shipping", "query-shipping", "stream-sharing"):
            system = make_system(strategy)
            for name, peer in [("Q1", "P1"), ("Q2", "P2"), ("Q3", "P3"), ("Q4", "P4")]:
                system.register_query(name, PAPER_QUERIES[name], peer)
            deliveries[strategy] = system.run(duration=30.0).items_delivered
        assert deliveries["data-shipping"] == deliveries["query-shipping"]
        assert deliveries["data-shipping"] == deliveries["stream-sharing"]

    def test_repeated_runs_identical(self):
        system = make_system("stream-sharing")
        system.register_query("Q1", PAPER_QUERIES["Q1"], "P1")
        first = system.run(duration=10.0)
        second = system.run(duration=10.0)
        assert first.items_delivered == second.items_delivered
        assert first.link_bits == second.link_bits
        assert first.peer_work == second.peer_work

    def test_metrics_derivations(self):
        system = make_system("data-shipping")
        system.register_query("Q1", PAPER_QUERIES["Q1"], "P1")
        metrics = system.run(duration=10.0)
        net = system.net
        total_kbps = sum(metrics.link_kbps(link) for link in net.links())
        assert total_kbps > 0
        assert metrics.total_mbit() == pytest.approx(
            total_kbps * 10.0 / 1000.0, rel=1e-6
        )
        cpu = dict(metrics.cpu_series(net))
        assert cpu["SP4"] > 0  # ingest at the source super-peer
        acc = metrics.peer_accumulated_mbit(net, "SP4")
        assert acc > 0
