"""Property-based tests for windows and aggregate sharing (hypothesis).

Key invariant (Figure 5): re-aggregating a stream of fine-window partial
aggregates into compatible coarser windows yields *exactly* the values a
fresh aggregation with the coarse window would have produced.
"""

from fractions import Fraction

from hypothesis import assume, given, settings, strategies as st

from repro.engine import (
    ReAggregateOperator,
    SlidingWindower,
    WindowAggregateOperator,
    wire_to_partial,
)
from repro.predicates import PredicateGraph
from repro.properties import AggregationSpec, ReAggregationSpec, WindowSpec
from repro.xmlkit import Element, Path, element

ITEM = Path("s/item")
VALUE = ITEM / "v"
TIME = ITEM / "t"


def agg_spec(function, size, step):
    return AggregationSpec(
        function=function,
        aggregated_path=VALUE,
        window=WindowSpec("diff", Fraction(size), Fraction(step), TIME),
        pre_selection=PredicateGraph(),
        result_filter=PredicateGraph(),
    )


def item(t, v):
    return element("item", Element("t", text=float(t)), Element("v", text=float(v)))


#: Compatible (fine, coarse) window lattices: coarse = (k·fine, m·step)
#: with fine.size a multiple of fine.step.
@st.composite
def window_pairs(draw):
    fine_step = draw(st.integers(min_value=1, max_value=4))
    fine_size = fine_step * draw(st.integers(min_value=1, max_value=3))
    coarse_size = fine_size * draw(st.integers(min_value=1, max_value=3))
    coarse_step = fine_step * draw(st.integers(min_value=1, max_value=4))
    return (fine_size, fine_step, coarse_size, coarse_step)


VALUES = st.lists(
    st.floats(min_value=-100, max_value=100, allow_nan=False, width=32),
    min_size=5,
    max_size=60,
)


class TestWindowerInvariants:
    @given(st.integers(1, 5), st.integers(1, 5), st.integers(5, 40))
    @settings(max_examples=100, deadline=None)
    def test_every_position_lands_in_its_windows(self, size, step, count):
        windower = SlidingWindower(float(size), float(step))
        emitted = []
        for position in range(count):
            emitted.extend(windower.add(float(position), position))
        for window in emitted:
            assert all(window.start <= p < window.end for p in window.contents)
            expected = [p for p in range(count) if window.start <= p < window.end]
            assert list(window.contents) == expected

    @given(st.integers(1, 5), st.integers(1, 5), st.integers(5, 40))
    @settings(max_examples=100, deadline=None)
    def test_window_bounds_follow_lattice(self, size, step, count):
        windower = SlidingWindower(float(size), float(step))
        emitted = []
        for position in range(count):
            emitted.extend(windower.add(float(position), position))
        for window in emitted:
            assert window.start == window.index * step
            assert window.end == window.start + size


class TestReAggregationEquivalence:
    @given(window_pairs(), VALUES, st.sampled_from(["avg", "sum", "count", "min", "max"]))
    @settings(max_examples=150, deadline=None)
    def test_matches_fresh_coarse_aggregation(self, windows, values, function):
        fine_size, fine_step, coarse_size, coarse_step = windows
        fine = agg_spec(function, fine_size, fine_step)
        coarse = agg_spec(function, coarse_size, coarse_step)
        assume(coarse.window.shareable_from(fine.window))

        items = [item(t, v) for t, v in enumerate(values)]

        fresh = WindowAggregateOperator(coarse, ITEM)
        expected = []
        for i in items:
            expected.extend(fresh.process(i))

        fine_op = WindowAggregateOperator(fine, ITEM)
        rebuild = ReAggregateOperator(ReAggregationSpec(fine, coarse))
        actual = []
        for i in items:
            for partial in fine_op.process(i):
                actual.extend(rebuild.process(partial))

        assert len(actual) == len(expected)
        for got, want in zip(actual, expected):
            got_partial = wire_to_partial(got, function)
            want_partial = wire_to_partial(want, function)
            assert got_partial.count == want_partial.count
            got_final = got_partial.final(function)
            want_final = want_partial.final(function)
            if want_final is None:
                assert got_final is None
            else:
                assert abs(got_final - want_final) < 1e-6


class TestWindowSpecLattice:
    @given(window_pairs())
    def test_shareability_is_reflexive_on_tiling_windows(self, windows):
        fine_size, fine_step, _, _ = windows
        spec = WindowSpec("count", Fraction(fine_size), Fraction(fine_step))
        assert spec.shareable_from(spec)

    @given(window_pairs(), window_pairs())
    @settings(max_examples=100)
    def test_shareability_transitive(self, first, second):
        a = WindowSpec("count", Fraction(first[0]), Fraction(first[1]))
        b = WindowSpec("count", Fraction(first[2]), Fraction(first[3]))
        c = WindowSpec(
            "count",
            Fraction(first[2] * second[2]),
            Fraction(first[3] * second[3]),
        )
        if b.shareable_from(a) and c.shareable_from(b):
            assert c.shareable_from(a)
