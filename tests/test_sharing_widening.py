"""Tests for stream widening (the Section 6 enhancement)."""

from fractions import Fraction

import pytest

from tests.conftest import PAPER_QUERIES, make_system
from repro.predicates import PredicateGraph, normalize_comparison
from repro.properties import (
    ProjectionSpec,
    SelectionSpec,
    StreamProperties,
    extract_properties,
)
from repro.sharing import widen_content
from repro.sharing.widening import widen_projection, widen_selection
from repro.wxquery import parse_query
from repro.xmlkit import Path

ITEM = Path("photons/photon")
RA = ITEM / "coord/cel/ra"
DEC = ITEM / "coord/cel/dec"
EN = ITEM / "en"
TIME = ITEM / "det_time"


def F(value):
    return Fraction(str(value))


def selection(*specs):
    atoms = []
    for path, op, const in specs:
        atoms.extend(normalize_comparison(path, op, None, F(const)))
    return SelectionSpec(PredicateGraph(atoms))


def sp(*operators):
    return StreamProperties("photons", ITEM, tuple(operators))


NARROW_QUERY = """<photons>{ for $p in stream("photons")/photons/photon
  where $p/coord/cel/ra >= 130.5 and $p/coord/cel/ra <= 135.5
  and $p/coord/cel/dec >= -48.0 and $p/coord/cel/dec <= -45.0
  return <rxj> { $p/coord/cel/ra } { $p/coord/cel/dec } { $p/en } { $p/det_time } </rxj> }</photons>"""

WIDE_QUERY = PAPER_QUERIES["Q1"]


class TestWidenSelection:
    def test_hull_takes_looser_bounds(self):
        narrow = selection((RA, ">=", "130.5"), (RA, "<=", "135.5"))
        wide = selection((RA, ">=", "120.0"), (RA, "<=", "138.0"))
        hull = widen_selection(narrow, wide)
        lower, upper = hull.graph.derived_interval(RA)
        assert (lower, upper) == (F("120"), F("138"))

    def test_disjoint_constraints_dropped(self):
        first = selection((RA, ">=", 120), (EN, ">=", "1.3"))
        second = selection((RA, ">=", 125), (DEC, "<=", -40))
        hull = widen_selection(first, second)
        # Only the shared RA lower bound survives, at the looser value.
        lower, upper = hull.graph.derived_interval(RA)
        assert lower == F(120)
        assert hull.graph.derived_interval(EN) == (None, None)

    def test_no_common_constraints_means_no_selection(self):
        first = selection((RA, ">=", 120))
        second = selection((DEC, "<=", -40))
        assert widen_selection(first, second) is None

    def test_missing_side_means_no_selection(self):
        assert widen_selection(None, selection((RA, ">=", 1))) is None
        assert widen_selection(selection((RA, ">=", 1)), None) is None


class TestWidenProjection:
    def test_union(self):
        first = ProjectionSpec(frozenset({EN}), frozenset({EN}))
        second = ProjectionSpec(frozenset({TIME}), frozenset({TIME, RA}))
        union = widen_projection(first, second)
        assert union.output_elements == {EN, TIME}
        assert union.referenced_elements == {EN, TIME, RA}

    def test_whole_item_side_drops_projection(self):
        first = ProjectionSpec(frozenset({EN}), frozenset({EN}))
        assert widen_projection(first, None) is None


class TestWidenContent:
    def q_props(self, text, name):
        return extract_properties(parse_query(text), name).single_input()

    def test_narrow_widens_to_cover_wide(self):
        narrow = self.q_props(NARROW_QUERY, "narrow")
        wide = self.q_props(WIDE_QUERY, "wide")
        widened = widen_content(narrow, wide)
        assert widened is not None
        from repro.matching import match_stream_properties

        assert match_stream_properties(widened, narrow)
        assert match_stream_properties(widened, wide)

    def test_already_matching_returns_none(self):
        wide = self.q_props(WIDE_QUERY, "wide")
        narrow = self.q_props(NARROW_QUERY, "narrow")
        # wide already matches narrow: widening must decline (nothing
        # changes).
        assert widen_content(wide, narrow) is None

    def test_aggregate_streams_never_widened(self):
        q3 = self.q_props(PAPER_QUERIES["Q3"], "Q3")
        wide = self.q_props(WIDE_QUERY, "wide")
        assert widen_content(q3, wide) is None
        assert widen_content(wide, q3) is None

    def test_different_streams_never_widened(self):
        other = StreamProperties("other", ITEM, (selection((RA, ">=", 1)),))
        wide = self.q_props(WIDE_QUERY, "wide")
        assert widen_content(other, wide) is None


class TestWideningEndToEnd:
    def _system(self):
        return make_system("stream-sharing", enable_widening=True)

    def test_widening_considered_and_results_unchanged(self):
        """Register a narrow query, then a wide one that the narrow
        stream cannot serve unwidened.  Whatever the optimizer picks,
        every query's results must equal the unwidened system's."""
        widened_system = self._system()
        widened_system.register_query("narrow", NARROW_QUERY, "P1")
        widened_system.register_query("wide", WIDE_QUERY, "P2")
        baseline = make_system("stream-sharing")
        baseline.register_query("narrow", NARROW_QUERY, "P1")
        baseline.register_query("wide", WIDE_QUERY, "P2")

        widened_metrics = widened_system.run(duration=30.0)
        baseline_metrics = baseline.run(duration=30.0)
        assert widened_metrics.items_delivered == baseline_metrics.items_delivered

    def test_widening_commits_consistent_state(self):
        system = self._system()
        system.register_query("narrow", NARROW_QUERY, "P1")
        result = system.register_query("wide", WIDE_QUERY, "P2")
        assert result.accepted
        deployment = system.deployment
        # Every query's delivered stream must exist and match its needs.
        from repro.matching import match_stream_properties

        for record in deployment.queries.values():
            for input_stream, stream_id in record.delivered:
                delivered = deployment.stream(stream_id)
                needed = record.properties.input_for(input_stream)
                assert match_stream_properties(delivered.content, needed), (
                    record.name, stream_id,
                )

    def test_widening_disabled_by_default(self):
        system = make_system("stream-sharing")
        assert system.registrar._subscriber._widening_planner is None

    def test_widening_used_when_it_wins(self):
        """On a path where the narrow stream flows right past the new
        subscriber, widening beats going back to the source."""
        system = self._system()
        # narrow at P2 (SP7): stream flows SP4 -> SP6 -> SP7.
        system.register_query("narrow", NARROW_QUERY, "P2")
        result = system.register_query("wide", WIDE_QUERY, "P2")
        plan = result.plan.inputs[0]
        if plan.widening is not None:
            widened = system.deployment.stream("narrow:photons")
            lower, upper = widened.content.selection.graph.derived_interval(RA)
            assert (lower, upper) == (F(120), F(138))
            # The narrow query's delivery now passes through a restore.
            record = system.deployment.queries["narrow"]
            assert record.delivered[0][1].startswith("narrow:photons#restore")
