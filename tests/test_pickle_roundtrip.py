"""Pickle round-trips for everything the sharded executor ships across
process boundaries: elements (item batches), compiled pipelines and
restructurers (reconcile payloads), plan records, and the ShardPlan
JSON certificate (``from_json(to_json(p)) == p``)."""

import pickle

import pytest

from repro.analysis import certify_shards
from repro.analysis.shards import BlockedEdge, CutEdge, Shard, ShardPlan
from repro.engine.pipeline import Pipeline
from repro.engine.restructure import Restructurer
from repro.workload import PhotonGenerator, PhotonStreamConfig
from repro.xmlkit import Element, Path, serialize

from .conftest import PAPER_QUERIES, make_system


def deployed_system():
    system = make_system()
    for name, text in PAPER_QUERIES.items():
        system.register_query(name, text, subscriber_peer=f"P{name[1]}")
    return system


# ----------------------------------------------------------------------
# Elements (exchange batches)
# ----------------------------------------------------------------------
def test_frozen_element_roundtrip_preserves_pinned_size():
    item = PhotonGenerator(PhotonStreamConfig(seed=11)).next_item()
    item.freeze()
    clone = pickle.loads(pickle.dumps(item))
    assert clone == item
    assert clone.frozen
    assert clone.serialized_size() == item.serialized_size()
    assert serialize(clone) == serialize(item)
    with pytest.raises(ValueError):
        clone.append(Element("extra"))


def test_unfrozen_element_roundtrip_stays_mutable():
    tree = Element("a", children=[Element("b", text=1.5)])
    clone = pickle.loads(pickle.dumps(tree))
    assert clone == tree
    assert not clone.frozen
    clone.append(Element("c"))  # must not raise


def test_path_roundtrip():
    path = Path("coord/cel/ra")
    clone = pickle.loads(pickle.dumps(path))
    assert clone == path
    with pytest.raises(AttributeError):
        clone.steps = ()


# ----------------------------------------------------------------------
# Compiled pipelines and restructurers (reconcile payloads)
# ----------------------------------------------------------------------
def pipelined_stream(system):
    for stream in system.deployment.streams.values():
        if stream.pipeline:
            return stream
    raise AssertionError("no pipelined stream deployed")


def test_pipeline_from_specs_roundtrip_processes_identically():
    system = deployed_system()
    stream = pipelined_stream(system)
    original = Pipeline.from_specs(stream.pipeline, stream.content.item_path)
    clone = pickle.loads(pickle.dumps(original))
    items = PhotonGenerator(PhotonStreamConfig(seed=3)).take(200)
    out_a = [serialize(x) for x in original.process_batch(items)]
    out_b = [serialize(x) for x in clone.process_batch(items)]
    assert out_a == out_b
    assert clone.input_counts == original.input_counts


def test_bare_pipeline_refuses_to_pickle():
    system = deployed_system()
    stream = pipelined_stream(system)
    compiled = Pipeline.from_specs(stream.pipeline, stream.content.item_path)
    bare = Pipeline(list(compiled.operators))
    with pytest.raises(pickle.PicklingError):
        pickle.dumps(bare)


def test_restructurer_roundtrip_builds_identically():
    system = deployed_system()
    record = system.deployment.queries["Q1"]
    original = Restructurer(record.analyzed)
    clone = pickle.loads(pickle.dumps(original))
    for item in PhotonGenerator(PhotonStreamConfig(seed=9)).take(100):
        a = [serialize(x) for x in original.build(item)]
        b = [serialize(x) for x in clone.build(item)]
        assert a == b


# ----------------------------------------------------------------------
# Plan records (reconcile add/rewire payloads)
# ----------------------------------------------------------------------
def test_installed_stream_and_registered_query_roundtrip():
    system = deployed_system()
    for stream in system.deployment.streams.values():
        clone = pickle.loads(pickle.dumps(stream))
        assert clone == stream
    for record in system.deployment.queries.values():
        clone = pickle.loads(pickle.dumps(record))
        assert clone.name == record.name
        assert clone.delivered == record.delivered
        assert clone.subscriber_node == record.subscriber_node


# ----------------------------------------------------------------------
# ShardPlan: pickle and the JSON certificate
# ----------------------------------------------------------------------
def test_certified_shard_plan_json_inverse():
    system = deployed_system()
    plan, _report = certify_shards(system.deployment)
    assert plan.certified
    restored = ShardPlan.from_json(plan.to_json())
    assert restored == plan
    assert restored.epoch_lag == plan.epoch_lag
    assert restored.cut_edges == plan.cut_edges
    assert pickle.loads(pickle.dumps(plan)) == plan


def test_shard_plan_json_inverse_covers_blocked_edges_and_lags():
    plan = ShardPlan(
        network_version=7,
        shards=(
            Shard(0, ("SP1",), ("photons",), ("Q1",)),
            Shard(1, ("SP2",), ("Q1:photons",), ()),
        ),
        cut_edges=(
            CutEdge(("SP1", "SP2"), 0, 1, ("photons",), "stateless"),
        ),
        blocked_edges=(
            BlockedEdge(
                ("SP2", "SP3"),
                "S502",
                ("Q1:photons",),
                "order-sensitive traffic may not cross shards",
            ),
        ),
        epoch_lag=(("Q1", 3), ("Q2", 1)),
        certified=False,
    )
    restored = ShardPlan.from_json(plan.to_json())
    # epoch_lag round-trips through a sorted mapping.
    assert dict(restored.epoch_lag) == dict(plan.epoch_lag)
    assert restored.blocked_edges == plan.blocked_edges
    assert restored.cut_edges == plan.cut_edges
    assert restored.certified is False
    assert restored.network_version == 7
