"""Unit tests for MatchProperties (Algorithm 2) and MatchAggregations."""

from fractions import Fraction

import pytest

from repro.matching import (
    functions_compatible,
    match_aggregations,
    match_properties,
    match_stream_properties,
    missing_operators,
)
from repro.predicates import PredicateGraph, normalize_comparison
from repro.properties import (
    RESULT_NODE,
    AggregationSpec,
    ProjectionSpec,
    Properties,
    SelectionSpec,
    StreamProperties,
    UdfSpec,
    WindowContentsSpec,
    WindowSpec,
)
from repro.xmlkit import Path

ITEM = Path("photons/photon")
EN = ITEM / "en"
RA = ITEM / "coord/cel/ra"
TIME = ITEM / "det_time"


def F(value):
    return Fraction(str(value))


def selection(*specs):
    atoms = []
    for path, op, const in specs:
        atoms.extend(normalize_comparison(path, op, None, F(const)))
    return SelectionSpec(PredicateGraph(atoms))


def result_filter(op, const):
    return PredicateGraph(normalize_comparison(RESULT_NODE, op, None, F(const)))


def stream_props(*operators, stream="photons"):
    return StreamProperties(stream=stream, item_path=ITEM, operators=tuple(operators))


def aggregation(function="avg", size=20, step=10, pre=None, filt=None):
    return AggregationSpec(
        function=function,
        aggregated_path=EN,
        window=WindowSpec("diff", F(size), F(step), TIME),
        pre_selection=pre if pre is not None else PredicateGraph(),
        result_filter=filt if filt is not None else PredicateGraph(),
    )


class TestMatchStreamProperties:
    def test_different_streams_never_match(self):
        assert not match_stream_properties(
            stream_props(stream="a"), stream_props(stream="b")
        )

    def test_different_item_paths_never_match(self):
        other = StreamProperties("photons", Path("photons/event"))
        assert not match_stream_properties(stream_props(), other)

    def test_raw_stream_matches_anything(self):
        subscription = stream_props(selection((EN, ">=", "1.3")))
        assert match_stream_properties(stream_props(), subscription)

    def test_selection_implication(self):
        stream = stream_props(selection((RA, "<=", 138)))
        tighter = stream_props(selection((RA, "<=", 135)))
        looser = stream_props(selection((RA, "<=", 140)))
        assert match_stream_properties(stream, tighter)
        assert not match_stream_properties(stream, looser)

    def test_selection_without_counterpart_fails(self):
        stream = stream_props(selection((RA, "<=", 138)))
        unfiltered = stream_props()
        assert not match_stream_properties(stream, unfiltered)

    def test_projection_superset_rule(self):
        stream = stream_props(
            ProjectionSpec(frozenset({EN, TIME}), frozenset({EN, TIME}))
        )
        narrower = stream_props(ProjectionSpec(frozenset({EN}), frozenset({EN})))
        wider = stream_props(
            ProjectionSpec(frozenset({EN, RA}), frozenset({EN, RA}))
        )
        assert match_stream_properties(stream, narrower)
        assert not match_stream_properties(stream, wider)

    def test_projection_subtree_semantics(self):
        cel = ITEM / "coord/cel"
        stream = stream_props(ProjectionSpec(frozenset({cel, EN}), frozenset({cel, EN})))
        needs_ra = stream_props(ProjectionSpec(frozenset({RA}), frozenset({RA, EN})))
        assert match_stream_properties(stream, needs_ra)

    def test_udf_requires_identical_parameters(self):
        stream = stream_props(UdfSpec("declination_correct", ("photons", "v2")))
        same = stream_props(UdfSpec("declination_correct", ("photons", "v2")))
        other_params = stream_props(UdfSpec("declination_correct", ("photons", "v3")))
        other_name = stream_props(UdfSpec("other", ("photons", "v2")))
        assert match_stream_properties(stream, same)
        assert not match_stream_properties(stream, other_params)
        assert not match_stream_properties(stream, other_name)

    def test_window_contents_requires_rebuildable_window(self):
        fine = stream_props(WindowContentsSpec(WindowSpec("count", F(10), F(5))))
        coarse = stream_props(WindowContentsSpec(WindowSpec("count", F(20), F(10))))
        assert match_stream_properties(fine, coarse)
        assert not match_stream_properties(coarse, fine)

    def test_aggregate_stream_vs_item_subscription_fails(self):
        stream = stream_props(aggregation())
        items = stream_props(selection((EN, ">=", 1)))
        assert not match_stream_properties(stream, items)

    def test_missing_operators_helper(self):
        stream = stream_props(selection((RA, "<=", 138)))
        subscription = stream_props(selection((RA, "<=", 135)), aggregation())
        missing = missing_operators(stream, subscription)
        assert [op.kind for op in missing] == ["aggregation"]
        assert missing_operators(stream_props(stream="x"), subscription) is None


class TestMatchProperties:
    def test_multi_input_candidate_rejected(self):
        multi = Properties("m", (stream_props(), stream_props(stream="other")))
        single = Properties("s", (stream_props(),))
        assert not match_properties(multi, single)

    def test_candidate_for_matching_input(self):
        candidate = Properties("c", (stream_props(),))
        subscription = Properties(
            "q", (stream_props(selection((EN, ">=", 1))),)
        )
        assert match_properties(candidate, subscription)

    def test_candidate_for_absent_stream(self):
        candidate = Properties("c", (stream_props(stream="zzz"),))
        subscription = Properties("q", (stream_props(),))
        assert not match_properties(candidate, subscription)


class TestMatchAggregations:
    def test_identical(self):
        assert match_aggregations(aggregation(), aggregation())

    def test_figure_5_windows(self):
        q3 = aggregation(size=20, step=10)
        q4 = aggregation(size=60, step=40, filt=result_filter(">=", "1.3"))
        assert match_aggregations(q3, q4)
        assert not match_aggregations(q4, q3)

    def test_function_compatibility_matrix(self):
        assert functions_compatible("avg", "sum")
        assert functions_compatible("avg", "count")
        assert functions_compatible("avg", "avg")
        assert not functions_compatible("sum", "avg")
        assert not functions_compatible("count", "sum")
        assert not functions_compatible("min", "max")
        assert functions_compatible("max", "max")

    def test_avg_stream_serves_sum_subscription(self):
        assert match_aggregations(aggregation("avg"), aggregation("sum"))

    def test_sum_stream_cannot_serve_avg(self):
        assert not match_aggregations(aggregation("sum"), aggregation("avg"))

    def test_different_aggregated_element_fails(self):
        other = AggregationSpec(
            "avg", ITEM / "phc", WindowSpec("diff", F(20), F(10), TIME),
            PredicateGraph(), PredicateGraph(),
        )
        assert not match_aggregations(aggregation(), other)

    def test_pre_selection_must_be_identical(self):
        vela = PredicateGraph(normalize_comparison(RA, "<=", None, F(138)))
        tighter = PredicateGraph(normalize_comparison(RA, "<=", None, F(130)))
        assert not match_aggregations(aggregation(pre=vela), aggregation(pre=tighter))
        assert match_aggregations(aggregation(pre=vela), aggregation(pre=vela))

    def test_filtered_stream_requires_equal_windows(self):
        filtered = aggregation(filt=result_filter(">=", "1.3"))
        coarser = aggregation(size=60, step=40, filt=result_filter(">=", "1.3"))
        assert not match_aggregations(filtered, coarser)

    def test_filtered_stream_requires_implied_filter(self):
        filtered = aggregation(filt=result_filter(">=", "1.3"))
        stricter = aggregation(filt=result_filter(">=", "1.5"))
        looser = aggregation(filt=result_filter(">=", "1.0"))
        unfiltered = aggregation()
        assert match_aggregations(filtered, stricter)
        assert not match_aggregations(filtered, looser)
        assert not match_aggregations(filtered, unfiltered)

    def test_unfiltered_stream_serves_filtered_subscription(self):
        assert match_aggregations(
            aggregation(), aggregation(filt=result_filter(">=", "1.3"))
        )
