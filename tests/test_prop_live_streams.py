"""Property test: reference-counted liveness vs a brute-force oracle.

``live_stream_ids`` drives both garbage collection and plan repair, so
it is checked here against an independently written reachability
oracle over random register / deregister / fault sequences.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import PAPER_QUERIES, make_system
from repro.faults import SuperPeerCrash, SuperPeerRejoin
from repro.sharing.deregister import live_stream_ids

QUERY_NAMES = tuple(PAPER_QUERIES)
SUBSCRIBERS = {"Q1": "P1", "Q2": "P2", "Q3": "P3", "Q4": "P4"}


def oracle_live_ids(deployment):
    """Brute force: originals, plus every stream some delivery can
    reach by walking parent pointers."""

    def ancestors(stream_id):
        chain = []
        while stream_id is not None:
            chain.append(stream_id)
            stream = deployment.streams.get(stream_id)
            stream_id = stream.parent_id if stream is not None else None
        return chain

    live = {
        stream.stream_id
        for stream in deployment.streams.values()
        if stream.is_original
    }
    for record in deployment.queries.values():
        for _, delivered_id in record.delivered:
            live.update(ancestors(delivered_id))
    return live


@settings(max_examples=20, deadline=None)
@given(
    register=st.permutations(QUERY_NAMES),
    keep=st.integers(min_value=1, max_value=len(QUERY_NAMES)),
    deregister=st.sets(st.sampled_from(QUERY_NAMES)),
    crash=st.sampled_from([None, "SP5", "SP6", "SP7"]),
    rejoin=st.booleans(),
)
def test_live_set_matches_oracle(register, keep, deregister, crash, rejoin):
    system = make_system()
    for name in register[:keep]:
        system.register_query(name, PAPER_QUERIES[name], SUBSCRIBERS[name])
    for name in deregister:
        if name in system.deployment.queries:
            system.deregister_query(name)
    if crash is not None:
        system.apply_fault(SuperPeerCrash(5.0, crash))
        if rejoin:
            system.apply_fault(SuperPeerRejoin(15.0, crash))

    deployment = system.deployment
    live = live_stream_ids(deployment)
    assert live == oracle_live_ids(deployment)
    # Garbage collection ran after every mutation above, so nothing
    # dead may remain installed.
    assert set(deployment.streams) == live
