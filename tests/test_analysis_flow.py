"""The F4xx abstract interpreter: domain, transformers, diagnostics."""

from __future__ import annotations

import math
from fractions import Fraction

import pytest

from tests.conftest import PAPER_QUERIES, make_system
from repro.analysis import (
    FlowFacts,
    Interval,
    analyze_flow,
    derive_stream_facts,
)
from repro.analysis.flow import _transform
from repro.costmodel import StatisticsCatalog
from repro.network.topology import example_topology
from repro.predicates import PredicateGraph, graph_from_atoms, normalize_comparison
from repro.properties import (
    RESULT_NODE,
    AggregationSpec,
    ProjectionSpec,
    ReAggregationSpec,
    RestructureSpec,
    SelectionSpec,
    StreamProperties,
    UdfSpec,
    WindowSpec,
)
from repro.sharing.plan import Deployment, InstalledStream
from repro.xmlkit import Path

EN = Path("photons/photon/en")
DET_TIME = Path("photons/photon/det_time")


# ----------------------------------------------------------------------
# The abstract domain
# ----------------------------------------------------------------------
def test_interval_validation():
    with pytest.raises(ValueError):
        Interval(-1.0, 2.0)
    with pytest.raises(ValueError):
        Interval(3.0, 2.0)
    with pytest.raises(ValueError):
        Interval(float("nan"), 2.0)


def test_interval_top_contains_everything():
    top = Interval.top()
    assert top.contains(0.0)
    assert top.contains(1e12)
    assert math.isinf(top.hi)


def test_interval_contains_with_tolerance():
    box = Interval(10.0, 20.0)
    assert box.contains(10.0) and box.contains(20.0)
    # A hair outside is floating-point noise, not a violation.
    assert box.contains(20.0 * (1 + 1e-9))
    assert not box.contains(21.0)
    assert not box.contains(9.0)


def test_interval_scale_and_hull():
    box = Interval(2.0, 4.0)
    assert box.scale(0.5) == Interval(1.0, 2.0)
    with pytest.raises(ValueError):
        box.scale(-1.0)
    assert box.hull(Interval(1.0, 3.0)) == Interval(1.0, 4.0)


def test_count_bounds():
    facts = FlowFacts(frequency=Interval(10.0, 20.0), item_size=Interval(0, 1), burst=1.0)
    lo, hi = facts.count_bounds(2.0)
    assert lo == 19.0  # floor(10 · 2) − 1
    assert hi == 41.0  # 20 · 2 + 1
    with pytest.raises(ValueError):
        facts.count_bounds(-1.0)
    top = FlowFacts(Interval.top(), Interval.top(), burst=0.0)
    assert top.count_bounds(5.0) == (0.0, float("inf"))


# ----------------------------------------------------------------------
# Transformers (the abstract semantics of each operator kind)
# ----------------------------------------------------------------------
def _base_facts():
    return FlowFacts(
        frequency=Interval(50.0, 200.0),
        item_size=Interval(80.0, 320.0),
        burst=1.0,
    )


def _selection():
    atoms = normalize_comparison(EN, ">=", None, Fraction("1.3"))
    return SelectionSpec(graph_from_atoms(atoms))


def _aggregation(window, result_filter=None):
    return AggregationSpec(
        function="avg",
        aggregated_path=EN,
        window=window,
        pre_selection=PredicateGraph(),
        result_filter=result_filter or PredicateGraph(),
    )


def test_selection_zeroes_the_lower_bound(photon_stats):
    out = _transform(_selection(), _base_facts(), photon_stats)
    assert out.frequency == Interval(0.0, 200.0)
    assert out.item_size == _base_facts().item_size  # sizes untouched


def test_projection_only_shrinks_items(photon_stats):
    spec = ProjectionSpec(
        output_elements=frozenset({EN}), referenced_elements=frozenset({EN})
    )
    out = _transform(spec, _base_facts(), photon_stats)
    assert out.frequency == _base_facts().frequency
    assert out.item_size == Interval(0.0, 320.0)


def test_count_window_divides_the_rate(photon_stats):
    window = WindowSpec("count", Fraction(10), Fraction(10))
    out = _transform(_aggregation(window), _base_facts(), photon_stats)
    assert out.frequency == Interval(0.0, 20.0)  # 200 / µ
    assert out.burst > _base_facts().burst  # the first-window offset


def test_filtered_aggregation_keeps_zero_floor(photon_stats):
    window = WindowSpec("count", Fraction(10), Fraction(10))
    having = graph_from_atoms(
        normalize_comparison(RESULT_NODE, ">=", None, Fraction("1.3"))
    )
    out = _transform(_aggregation(window, having), _base_facts(), photon_stats)
    assert out.frequency.lo == 0.0


def test_diff_window_bounded_through_the_reference(photon_stats):
    window = WindowSpec("diff", Fraction(20), Fraction(10), reference=DET_TIME)
    out = _transform(_aggregation(window), _base_facts(), photon_stats)
    # The reference advances at most max_increment · slack per raw
    # arrival, and each µ of span completes one window — finite.
    assert not math.isinf(out.frequency.hi)
    assert out.frequency.lo == 0.0


def test_diff_window_without_statistics_is_top():
    window = WindowSpec("diff", Fraction(20), Fraction(10), reference=DET_TIME)
    out = _transform(_aggregation(window), _base_facts(), None)
    assert math.isinf(out.frequency.hi)


def test_reaggregation_strides_the_reused_rate(photon_stats):
    fine = WindowSpec("diff", Fraction(20), Fraction(10), reference=DET_TIME)
    coarse = WindowSpec("diff", Fraction(60), Fraction(20), reference=DET_TIME)
    spec = ReAggregationSpec(_aggregation(fine), _aggregation(coarse))
    out = _transform(spec, _base_facts(), photon_stats)
    assert out.frequency == Interval(0.0, 100.0)  # 200 / (20/10)


def test_udf_and_restructure_lose_information(photon_stats):
    udf = _transform(UdfSpec(name="calibrate"), _base_facts(), photon_stats)
    assert math.isinf(udf.frequency.hi) and math.isinf(udf.item_size.hi)
    restructured = _transform(RestructureSpec("Q1"), _base_facts(), photon_stats)
    assert restructured.frequency == _base_facts().frequency
    assert math.isinf(restructured.item_size.hi)


# ----------------------------------------------------------------------
# Fact derivation over real deployments
# ----------------------------------------------------------------------
def test_source_facts_bracket_the_catalog_mean():
    system = make_system()
    facts = derive_stream_facts(system.deployment, system.catalog)
    photons = facts["photons"]
    assert photons.frequency.contains(100.0)
    assert photons.frequency == Interval(50.0, 200.0)


def test_every_registered_stream_gets_facts():
    system = make_system()
    for name in ("Q1", "Q2", "Q3", "Q4"):
        system.register_query(name, PAPER_QUERIES[name], "P1")
    facts = derive_stream_facts(system.deployment, system.catalog)
    assert set(facts) == set(system.deployment.streams)
    for stream_facts in facts.values():
        assert stream_facts.frequency.lo >= 0.0


def test_paper_workload_is_flow_clean():
    system = make_system()
    for name in ("Q1", "Q2", "Q3", "Q4"):
        system.register_query(name, PAPER_QUERIES[name], "P1")
    report = analyze_flow(system.deployment, system.catalog)
    assert report.ok, report.render()
    assert not [d for d in report.diagnostics if d.code in ("F400", "F401")]


def test_deterministic_counts_fall_inside_the_bounds():
    """A straight (non-hypothesis) soundness check on the paper workload."""
    from repro.engine import StreamSimulator

    system = make_system()
    for name in ("Q1", "Q2", "Q3", "Q4"):
        system.register_query(name, PAPER_QUERIES[name], "P1")
    facts = derive_stream_facts(system.deployment, system.catalog)
    duration = 5.0
    generators = {
        name: source.generator_factory() for name, source in system.sources.items()
    }
    simulator = StreamSimulator(system.net, system.deployment, generators, duration)
    simulator.run()
    for stream_id, measured in simulator.stream_counts().items():
        lo, hi = facts[stream_id].count_bounds(duration)
        assert lo <= measured <= hi, (stream_id, lo, measured, hi)


# ----------------------------------------------------------------------
# F400 — missing catalog statistics
# ----------------------------------------------------------------------
def test_f400_original_without_statistics():
    deployment = Deployment(example_topology())
    content = StreamProperties(stream="mystery", item_path=Path("m/i"))
    deployment.install_stream(
        InstalledStream("mystery", content, origin_node="SP0", route=("SP0",))
    )
    report = analyze_flow(deployment, StatisticsCatalog())
    assert "F400" in report.codes(), report.render()
    (f400,) = [d for d in report.diagnostics if d.code == "F400"]
    assert f400.severity == "warning"
    assert "mystery" in f400.subject
    assert report.ok  # warnings never fail the gate
    # No facts are derivable for the uncharted stream.
    assert derive_stream_facts(deployment, StatisticsCatalog()) == {}


# ----------------------------------------------------------------------
# F401 — committed estimate outside the derived interval
# ----------------------------------------------------------------------
def test_f401_content_disagreeing_with_derivation():
    system = make_system()
    system.register_query("Q1", PAPER_QUERIES["Q1"], "P1")
    parent = system.deployment.streams["photons"]
    window = WindowSpec("count", Fraction(10), Fraction(10))
    # The installed pipeline aggregates (≤ 20 items/s derivable), but
    # the content claims the raw stream — the planner would commit the
    # raw 100 items/s, provably outside the derived interval.
    bogus = InstalledStream(
        stream_id="bogus",
        content=parent.content,
        origin_node=parent.origin_node,
        route=parent.route,
        parent_id="photons",
        pipeline=(_aggregation(window),),
        query="Q1",
    )
    system.deployment.install_stream(bogus)
    report = analyze_flow(system.deployment, system.catalog)
    f401 = [d for d in report.diagnostics if d.code == "F401"]
    assert f401, report.render()
    assert all(d.severity == "error" for d in f401)
    assert any("bogus" in d.subject for d in f401)
    assert not report.ok


# ----------------------------------------------------------------------
# F402 — dead streams
# ----------------------------------------------------------------------
def test_f402_dead_administrative_stream_is_a_warning():
    system = make_system()
    system.register_query("Q1", PAPER_QUERIES["Q1"], "P1")
    system.install_derived_stream(
        "photons#udf", "photons", [UdfSpec(name="calibrate")], target="P2"
    )
    report = analyze_flow(system.deployment, system.catalog)
    f402 = [d for d in report.diagnostics if d.code == "F402"]
    assert [d.subject for d in f402] == ["stream photons#udf"]
    assert f402[0].severity == "warning"
    assert report.ok  # dead administrative streams must not block installs


# ----------------------------------------------------------------------
# F403 — missed sharing
# ----------------------------------------------------------------------
def test_f403_recomputation_despite_matching_stream():
    # Query shipping recomputes every subscription from the raw stream;
    # Q2 is subsumable by Q1's stream (the paper's running example), so
    # the analyzer must point out the missed reuse.
    system = make_system("query-shipping")
    system.register_query("Q1", PAPER_QUERIES["Q1"], "P1")
    system.register_query("Q2", PAPER_QUERIES["Q2"], "P2")
    report = analyze_flow(system.deployment, system.catalog)
    f403 = [d for d in report.diagnostics if d.code == "F403"]
    assert f403, report.render()
    assert all(d.severity == "warning" for d in f403)
    assert report.ok


def test_f403_silent_when_sharing_strategy_reuses():
    system = make_system("stream-sharing")
    system.register_query("Q1", PAPER_QUERIES["Q1"], "P1")
    system.register_query("Q2", PAPER_QUERIES["Q2"], "P2")
    report = analyze_flow(system.deployment, system.catalog)
    assert "F403" not in report.codes(), report.render()
