"""Exporter tests: JSONL round-trip, Chrome traces, Prometheus text."""

import json

import pytest

from repro.network.topology import example_topology
from repro.obs import (
    Recorder,
    chrome_trace,
    load_jsonl,
    prometheus_text,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.recorder import HISTOGRAM_BUCKETS
from repro.obs.timeseries import EpochSnapshot


@pytest.fixture()
def recorder():
    r = Recorder()
    with r.span("register", query="Q1") as span:
        with r.span("plan"):
            pass
        span.set(accepted=True)
    r.event("plan.decision", query="Q1", accepted=True)
    r.inc("cache.route.hits", 7)
    r.inc("cache.route.misses", 3)
    r.set_gauge("cache.route.hit_rate", 0.7)
    r.observe("op.select.batch_s", 0.004)
    r.add_epoch(
        EpochSnapshot(
            index=0,
            t_start=0.0,
            t_end=5.0,
            peer_cpu_percent={"SP4": 12.5},
            link_kbps={"SP4-SP5": 80.0},
            items_generated=100,
            items_delivered=90,
            inflight_peak=6,
        )
    )
    return r


class TestJsonlRoundTrip:
    def test_full_round_trip(self, recorder, tmp_path):
        path = str(tmp_path / "run.jsonl")
        write_jsonl(recorder, path, net=example_topology(), extra={"scenario": "t"})
        log = load_jsonl(path)
        assert log.meta["format"] == "repro.obs/1"
        assert log.meta["scenario"] == "t"
        assert log.meta["peers"]["SP4"] > 0
        assert [s["name"] for s in log.spans] == ["plan", "register"]
        assert log.spans[0]["parent"] == log.spans[1]["id"]
        assert log.events_named("plan.decision")[0]["fields"]["query"] == "Q1"
        assert log.counters["cache.route.hits"] == 7
        assert log.gauges["cache.route.hit_rate"] == 0.7
        assert log.histograms["op.select.batch_s"]["count"] == 1
        (epoch,) = log.epochs
        assert epoch.peer_cpu_percent == {"SP4": 12.5}
        assert epoch.items_delivered == 90

    def test_every_line_is_valid_json(self, recorder, tmp_path):
        path = str(tmp_path / "run.jsonl")
        write_jsonl(recorder, path)
        with open(path, "r", encoding="utf-8") as handle:
            lines = [json.loads(line) for line in handle if line.strip()]
        assert lines[0]["type"] == "meta"
        assert {line["type"] for line in lines} == {
            "meta", "span", "event", "epoch", "counter", "gauge", "hist",
        }

    def test_span_totals_match_recorder(self, recorder, tmp_path):
        path = str(tmp_path / "run.jsonl")
        write_jsonl(recorder, path)
        log = load_jsonl(path)
        assert log.span_totals().keys() == recorder.span_totals().keys()
        for name, entry in recorder.span_totals().items():
            assert log.span_totals()[name]["count"] == entry["count"]


class TestChromeTrace:
    def test_spans_become_complete_events(self, recorder):
        trace = chrome_trace(recorder)
        xs = [e for e in trace["traceEvents"] if e["ph"] == "X"]
        assert {e["name"] for e in xs} == {"register", "plan"}
        register = next(e for e in xs if e["name"] == "register")
        assert register["dur"] >= 0
        assert register["args"]["accepted"] is True

    def test_epochs_become_counter_events(self, recorder):
        trace = chrome_trace(recorder)
        counters = [e for e in trace["traceEvents"] if e["ph"] == "C"]
        names = {e["name"] for e in counters}
        assert "data-plane CPU (%)" in names
        assert "in-flight items" in names

    def test_runlog_source_equivalent(self, recorder, tmp_path):
        path = str(tmp_path / "run.jsonl")
        write_jsonl(recorder, path)
        from_log = chrome_trace(load_jsonl(path))
        from_recorder = chrome_trace(recorder)
        assert len(from_log["traceEvents"]) == len(from_recorder["traceEvents"])

    def test_write_chrome_trace_is_json(self, recorder, tmp_path):
        path = str(tmp_path / "trace.json")
        write_chrome_trace(recorder, path)
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
        assert data["displayTimeUnit"] == "ms"


class TestPrometheusText:
    def test_counters_and_gauges(self, recorder):
        text = prometheus_text(recorder)
        assert "# TYPE repro_cache_route_hits counter" in text
        assert "repro_cache_route_hits 7" in text
        assert "# TYPE repro_cache_route_hit_rate gauge" in text

    def test_histogram_buckets_are_cumulative(self, recorder):
        recorder.observe("op.select.batch_s", 50.0)  # large value
        text = prometheus_text(recorder)
        counts = []
        for line in text.splitlines():
            if line.startswith('repro_op_batch_seconds_bucket{op="select"'):
                counts.append(int(line.rsplit(" ", 1)[1]))
        assert len(counts) == len(HISTOGRAM_BUCKETS) + 1
        assert counts == sorted(counts)  # monotone
        assert counts[-1] == 2  # +Inf bucket sees every observation
        assert 'repro_op_batch_seconds_count{op="select"} 2' in text

    def test_labeled_series(self, recorder):
        recorder.inc("exchange.cell0->cell1.items", 803)
        recorder.inc("op.selection.items", 42)
        recorder.set_gauge("exec.peak_live_items.shard1", 9)
        recorder.set_gauge("peer.work.SP0", 3.5)
        recorder.set_gauge("link.bits.SP0-SP1", 128.0)
        text = prometheus_text(recorder)
        assert (
            'repro_exchange_pair_items_total'
            '{src_shard="0",dst_shard="1"} 803' in text
        )
        assert 'repro_op_items_total{op="selection"} 42' in text
        assert 'repro_exec_peak_live_items{shard="1"} 9' in text
        assert 'repro_peer_work{peer="SP0"} 3.5' in text
        assert 'repro_link_bits{a="SP0",b="SP1"} 128' in text
        # One TYPE line per family even with many labeled series.
        recorder.inc("exchange.cell1->cell0.items", 7)
        text = prometheus_text(recorder)
        type_lines = [
            line
            for line in text.splitlines()
            if line.startswith("# TYPE repro_exchange_pair_items_total ")
        ]
        assert len(type_lines) == 1

    def test_compat_flag_restores_mangled_names(self, recorder):
        recorder.inc("exchange.cell0->cell1.items", 803)
        text = prometheus_text(recorder, compat=True)
        assert "repro_exchange_cell0__cell1_items 803" in text
        # Only the mandatory histogram `le` label survives in compat.
        labeled = [
            line for line in text.splitlines()
            if "{" in line and 'le="' not in line
        ]
        assert labeled == []
        assert "repro_op_select_batch_s_count 1" in text
