"""The stream-availability index: signatures, probes, lookup, and the
``P14x`` index-consistency invariants.

The index must satisfy one contract: at every node, the candidates it
serves are a *superset* of the streams Algorithm 2 accepts there (it
only ever prunes guaranteed non-matches), and it mirrors the
deployment's availability facts exactly through registration,
deregistration, and churn.  These tests pin both halves, plus the
deterministic tie-breaking and the batch-admission front-end that ride
on it.
"""

from __future__ import annotations

import pytest

from tests.conftest import PAPER_QUERIES, make_system
from repro.analysis import verify_system
from repro.faults import SuperPeerCrash, SuperPeerRejoin
from repro.matching import MatchMemo, match_stream_properties
from repro.network.routing import RouteCache
from repro.network.topology import example_topology
from repro.properties import extract_properties
from repro.sharing.index import (
    SubscriptionProbe,
    admission_order_key,
    content_signature,
)
from repro.wxquery import parse_query


def properties_of(text, name="Q"):
    return extract_properties(parse_query(text), name)


def registered_system(queries=("Q1", "Q2", "Q3", "Q4"), **kwargs):
    system = make_system("stream-sharing", **kwargs)
    for name in queries:
        system.register_query(name, PAPER_QUERIES[name], "P1")
    return system


# ----------------------------------------------------------------------
# Content signatures
# ----------------------------------------------------------------------
def test_raw_stream_signature_has_no_details():
    raw = registered_system(queries=()).deployment.streams["photons"]
    signature = content_signature(raw.content)
    assert signature.stream == "photons"
    assert signature.details == frozenset()


def test_selection_query_signature_details():
    content = properties_of(PAPER_QUERIES["Q1"]).single_input()
    signature = content_signature(content)
    kinds = {detail[0] for detail in signature.details}
    assert kinds == {"selection", "projection"}


def test_aggregation_signature_pins_function_path_and_window_class():
    content = properties_of(PAPER_QUERIES["Q3"]).single_input()
    signature = content_signature(content)
    [detail] = [d for d in signature.details if d[0] == "aggregation"]
    assert detail[1] == "avg"
    assert str(detail[2]) == "photons/photon/en"
    assert detail[3] == "diff"  # window kind (time-difference window)


# ----------------------------------------------------------------------
# Probes
# ----------------------------------------------------------------------
def test_probe_covers_matching_candidates():
    """Coverage is a necessary condition of Algorithm 2: every matching
    candidate's signature must be covered by the subscription's probe."""
    subscriptions = {
        name: properties_of(text, name).single_input()
        for name, text in PAPER_QUERIES.items()
    }
    for sub_name, subscription in subscriptions.items():
        probe = SubscriptionProbe.from_subscription(subscription)
        for cand_name, candidate in subscriptions.items():
            if match_stream_properties(candidate, subscription):
                assert probe.covers(content_signature(candidate)), (
                    f"{cand_name} matches {sub_name} but its signature "
                    "is not covered — the index would hide a true match"
                )


def test_probe_enumeration_agrees_with_bucket_scan():
    """The adaptive lookup's two paths must return identical ids."""
    system = registered_system()
    index = system.deployment.sharing_index
    for text in PAPER_QUERIES.values():
        subscription = properties_of(text).single_input()
        probe = SubscriptionProbe.from_subscription(subscription)
        assert probe.signatures is not None
        scan_probe = SubscriptionProbe(
            stream=probe.stream,
            item_path=probe.item_path,
            details=probe.details,
            signatures=None,  # force the bucket-scan path
        )
        for node in system.net.super_peer_names():
            assert index.candidate_ids(node, probe) == index.candidate_ids(
                node, scan_probe
            )


def test_avg_probe_accepts_sum_and_count_signatures():
    """``sum``/``count`` subscriptions can be served by ``avg`` streams,
    so their probes must cover avg signatures (serving fan-out)."""
    avg_content = properties_of(PAPER_QUERIES["Q3"]).single_input()
    sum_text = PAPER_QUERIES["Q3"].replace("avg($w/en)", "sum($w/en)")
    probe = SubscriptionProbe.from_subscription(
        properties_of(sum_text).single_input()
    )
    assert probe.covers(content_signature(avg_content))


# ----------------------------------------------------------------------
# Lookup against a live deployment
# ----------------------------------------------------------------------
def test_candidates_are_superset_of_matches_everywhere():
    system = registered_system()
    deployment = system.deployment
    for text in PAPER_QUERIES.values():
        subscription = properties_of(text).single_input()
        probe = SubscriptionProbe.from_subscription(subscription)
        for node in system.net.super_peer_names():
            served = set(deployment.sharing_index.candidate_ids(node, probe))
            for stream in deployment.streams_at(node):
                if stream.content.stream != subscription.stream:
                    continue
                if match_stream_properties(stream.content, subscription):
                    assert stream.stream_id in served
            # ... and everything served is genuinely available there.
            available = {s.stream_id for s in deployment.streams_at(node)}
            assert served <= available


def test_candidate_ids_are_sorted():
    system = registered_system()
    subscription = properties_of(PAPER_QUERIES["Q1"]).single_input()
    probe = SubscriptionProbe.from_subscription(subscription)
    for node in system.net.super_peer_names():
        ids = system.deployment.sharing_index.candidate_ids(node, probe)
        assert ids == sorted(ids)


def test_distinct_candidates_group_by_content():
    """Grouped lookup partitions the flat candidate list: one minimal-id
    representative per content, targets covering the whole group."""
    system = registered_system()
    # Re-register Q1 under a second name: a duplicate-content stream.
    system.register_query("Q1b", PAPER_QUERIES["Q1"], "P2")
    deployment = system.deployment
    subscription = properties_of(PAPER_QUERIES["Q1"]).single_input()
    probe = SubscriptionProbe.from_subscription(subscription)
    for node in system.net.super_peer_names():
        flat = deployment.candidates_at(node, probe)
        grouped = deployment.distinct_candidates_at(node, probe)
        regrouped = {}
        for stream in flat:
            regrouped.setdefault(stream.content, []).append(stream)
        assert len(grouped) == len(regrouped)
        for representative, targets in grouped:
            group = regrouped[representative.content]
            assert representative.stream_id == min(s.stream_id for s in group)
            assert targets == {s.target_node for s in group}


# ----------------------------------------------------------------------
# Consistency through the full lifecycle (P14x stays green)
# ----------------------------------------------------------------------
def index_facts(deployment):
    return sorted(deployment.sharing_index.entries(), key=repr)


def test_index_consistent_after_register_deregister_crash_rejoin():
    system = registered_system()
    assert verify_system(system).ok

    system.deregister_query("Q2")
    assert verify_system(system).ok

    system.apply_fault(SuperPeerCrash(5.0, "SP5"))
    assert verify_system(system).ok

    system.apply_fault(SuperPeerRejoin(15.0, "SP5"))
    assert verify_system(system).ok

    for name in list(system.deployment.queries):
        system.deregister_query(name)
    assert verify_system(system).ok
    # Only the original stream remains; its index entry with it.
    assert len(system.deployment.sharing_index) == 1


def test_deregistration_order_is_deterministic():
    """Tearing the same deployment down in different deregistration
    orders leaves identical index facts (GC iterates sorted ids)."""
    facts = []
    for order in (("Q1", "Q3"), ("Q3", "Q1")):
        system = registered_system(queries=("Q1", "Q2", "Q3"))
        for name in order:
            system.deregister_query(name)
        facts.append(index_facts(system.deployment))
    assert facts[0] == facts[1]


# ----------------------------------------------------------------------
# P140–P143 fire on seeded corruption
# ----------------------------------------------------------------------
def test_stale_index_entry_is_rejected():
    system = registered_system(queries=("Q1",))
    ghost_content = system.deployment.streams["photons"].content
    system.deployment.sharing_index.add("ghost", ghost_content, ("SP4",))
    report = verify_system(system)
    assert "P140" in report.codes(), report.render()


def test_entry_off_route_is_rejected():
    system = registered_system(queries=("Q1",))
    stream = system.deployment.streams["photons"]
    assert "SP7" not in stream.route
    system.deployment.sharing_index.add("photons", stream.content, ("SP7",))
    report = verify_system(system)
    assert "P141" in report.codes(), report.render()


def test_missing_stream_is_rejected():
    system = registered_system(queries=("Q1",))
    stream = system.deployment.streams["photons"]
    system.deployment.sharing_index.discard("photons", stream.route)
    report = verify_system(system)
    assert "P142" in report.codes(), report.render()


def test_missing_route_node_is_rejected():
    system = registered_system(queries=("Q1",))
    delivered = system.deployment.queries["Q1"].delivered[0][1]
    stream = system.deployment.streams[delivered]
    index = system.deployment.sharing_index
    signature = index.signature_of(delivered)
    node = stream.route[-1]
    index._buckets[node][signature].discard(delivered)
    report = verify_system(system)
    assert "P142" in report.codes(), report.render()


def test_signature_mismatch_is_rejected():
    system = registered_system(queries=("Q1", "Q3"))
    index = system.deployment.sharing_index
    delivered = system.deployment.queries["Q1"].delivered[0][1]
    stream = system.deployment.streams[delivered]
    other = system.deployment.queries["Q3"].delivered[0][1]
    wrong_content = system.deployment.streams[other].content
    index.discard(delivered, stream.route)
    index.add(delivered, wrong_content, stream.route)
    report = verify_system(system)
    assert "P143" in report.codes(), report.render()


# ----------------------------------------------------------------------
# Deterministic tie-breaking
# ----------------------------------------------------------------------
@pytest.mark.parametrize("use_index", [True, False])
def test_repeated_registration_is_deterministic(use_index):
    decisions = []
    for _ in range(2):
        system = registered_system(use_index=use_index)
        decisions.append(
            [
                (name, plan.reused_id, plan.tap_node, plan.placement_node)
                for name, record in sorted(system.deployment.queries.items())
                for plan in [
                    next(
                        r.plan.inputs[0]
                        for r in system.results
                        if r.query == name and r.plan is not None
                    )
                ]
                if record is not None
            ]
        )
    assert decisions[0] == decisions[1]


# ----------------------------------------------------------------------
# Route cache
# ----------------------------------------------------------------------
def test_route_cache_hits_and_matches_direct_routing():
    from repro.network.routing import shortest_path

    net = example_topology()
    cache = RouteCache(net)
    for source in net.super_peer_names():
        for target in net.super_peer_names():
            assert cache.path(source, target) == tuple(
                shortest_path(net, source, target)
            )
    assert cache.hits == 0
    cache.path("SP1", "SP4")
    assert cache.hits == 1


def test_route_cache_invalidated_by_churn():
    net = example_topology()
    cache = RouteCache(net)
    before = cache.path("SP4", "SP1")
    crashed = before[1]  # an intermediate hop
    net.remove_super_peer(crashed)
    after = cache.path("SP4", "SP1")
    assert crashed not in after  # stale route would still contain it


# ----------------------------------------------------------------------
# Match memo
# ----------------------------------------------------------------------
def test_match_memo_caches_without_changing_verdicts():
    contents = {
        name: properties_of(text, name).single_input()
        for name, text in PAPER_QUERIES.items()
    }
    memo = MatchMemo()
    fresh = {
        (a, b): match_stream_properties(contents[a], contents[b])
        for a in contents
        for b in contents
    }
    for _ in range(2):  # second round must be all hits
        for (a, b), verdict in fresh.items():
            assert (
                match_stream_properties(contents[a], contents[b], memo=memo)
                == verdict
            )
    assert memo.misses > 0
    assert memo.hits >= len(fresh)


# ----------------------------------------------------------------------
# Batch admission
# ----------------------------------------------------------------------
def test_batch_results_in_caller_order():
    system = make_system()
    batch = [(name, text, "P1") for name, text in PAPER_QUERIES.items()]
    results = system.register_queries(batch)
    assert [r.query for r in results] == [name for name, _, _ in batch]
    assert all(r.accepted for r in results)


def test_batch_rejects_duplicate_names():
    system = make_system()
    with pytest.raises(ValueError, match="duplicate"):
        system.register_queries(
            [("Q1", PAPER_QUERIES["Q1"], "P1"), ("Q1", PAPER_QUERIES["Q2"], "P2")]
        )


def test_batch_orders_general_before_specific():
    """Q2 ⊂ Q1 (narrower region + energy cut): submitted narrow-first,
    batch admission still registers Q1 first so Q2 can tap it."""
    system = make_system()
    system.register_queries(
        [("Q2", PAPER_QUERIES["Q2"], "P2"), ("Q1", PAPER_QUERIES["Q1"], "P1")]
    )
    delivered_q2 = system.deployment.queries["Q2"].delivered[0][1]
    parent = system.deployment.streams[delivered_q2].parent_id
    chain = set()
    while parent is not None:
        chain.add(parent)
        parent = system.deployment.streams[parent].parent_id
    assert any(stream_id.startswith("Q1:") for stream_id in chain)


def test_batch_admission_never_shares_worse_than_sequential():
    system_batch = make_system()
    system_batch.register_queries(
        [(name, text, "P1") for name, text in sorted(PAPER_QUERIES.items(),
                                                     reverse=True)]
    )
    system_seq = make_system()
    for name, text in sorted(PAPER_QUERIES.items(), reverse=True):
        system_seq.register_query(name, text, "P1")
    assert len(system_batch.deployment.streams) <= len(
        system_seq.deployment.streams
    )


def test_admission_order_key_prefers_general_queries():
    q1 = properties_of(PAPER_QUERIES["Q1"], "Q1")
    q2 = properties_of(PAPER_QUERIES["Q2"], "Q2")  # extra energy atom
    q3 = properties_of(PAPER_QUERIES["Q3"], "Q3")  # aggregate
    assert admission_order_key(q1) < admission_order_key(q2)
    assert admission_order_key(q1) < admission_order_key(q3)
    assert admission_order_key(q2) < admission_order_key(q3)
