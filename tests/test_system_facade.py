"""Edge-case tests for the StreamGlobe facade."""

import pytest

from tests.conftest import PAPER_QUERIES, make_system
from repro.network.topology import example_topology
from repro.sharing import StreamGlobe
from repro.workload.photons import PhotonGenerator, PhotonStreamConfig


class TestStreamRegistration:
    def test_duplicate_stream_rejected(self):
        system = make_system()
        config = PhotonStreamConfig(seed=9)
        with pytest.raises(ValueError):
            system.register_stream(
                "photons", "photons/photon", lambda: PhotonGenerator(config),
                frequency=10.0, source_peer="P0",
            )

    def test_stream_available_at_home_only(self):
        system = make_system()
        original = system.deployment.stream("photons")
        assert original.route == ("SP4",)
        assert [s.stream_id for s in system.deployment.streams_at("SP4")] == ["photons"]
        assert system.deployment.streams_at("SP0") == []

    def test_statistics_registered(self):
        system = make_system()
        stats = system.catalog.for_stream("photons")
        assert stats.frequency == 100.0
        assert stats.avg_item_size > 0


class TestQueryRegistration:
    def test_duplicate_query_name_rejected(self):
        system = make_system()
        system.register_query("Q1", PAPER_QUERIES["Q1"], "P1")
        with pytest.raises(ValueError):
            system.register_query("Q1", PAPER_QUERIES["Q2"], "P2")

    def test_accepts_parsed_query_object(self):
        from repro.wxquery import parse_query

        system = make_system()
        result = system.register_query("q", parse_query(PAPER_QUERIES["Q1"]), "P1")
        assert result.accepted

    def test_subscriber_may_be_super_peer(self):
        system = make_system()
        result = system.register_query("q", PAPER_QUERIES["Q1"], "SP3")
        assert result.plan.inputs[0].delivered.target_node == "SP3"

    def test_unknown_subscriber_rejected(self):
        system = make_system()
        from repro.network.topology import TopologyError

        with pytest.raises(TopologyError):
            system.register_query("q", PAPER_QUERIES["Q1"], "P99")

    def test_result_bookkeeping(self):
        system = make_system()
        system.register_query("a", PAPER_QUERIES["Q1"], "P1")
        system.register_query("b", PAPER_QUERIES["Q2"], "P2")
        assert system.accepted_queries() == ["a", "b"]
        assert system.rejected_queries() == []
        assert len(system.registration_times_ms()) == 2


class TestRunBehaviour:
    def test_run_without_queries(self):
        system = make_system()
        metrics = system.run(duration=2.0)
        assert metrics.items_delivered == {}
        assert metrics.items_generated["photons"] > 0

    def test_run_is_repeatable_after_new_registration(self):
        system = make_system()
        system.register_query("a", PAPER_QUERIES["Q1"], "P1")
        first = system.run(duration=5.0)
        system.register_query("b", PAPER_QUERIES["Q2"], "P2")
        second = system.run(duration=5.0)
        # Q1's results are unaffected by Q2's registration.
        assert second.items_delivered["a"] == first.items_delivered["a"]

    def test_invalid_gamma_rejected(self):
        with pytest.raises(ValueError):
            StreamGlobe(example_topology(), gamma=-0.1)
