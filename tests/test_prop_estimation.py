"""Property-based tests on cost-model estimation invariants."""

from fractions import Fraction

from hypothesis import assume, given, settings, strategies as st

from repro.costmodel import estimate_stream_rate
from repro.predicates import PredicateGraph, normalize_comparison
from repro.properties import (
    AggregationSpec,
    ProjectionSpec,
    SelectionSpec,
    StreamProperties,
    WindowSpec,
)
from repro.xmlkit import Path

ITEM = Path("photons/photon")
LEAVES = [
    ITEM / "phc",
    ITEM / "coord/cel/ra",
    ITEM / "coord/cel/dec",
    ITEM / "coord/det/dx",
    ITEM / "coord/det/dy",
    ITEM / "en",
    ITEM / "det_time",
]

ra_bounds = st.tuples(
    st.floats(min_value=90, max_value=170, allow_nan=False),
    st.floats(min_value=90, max_value=170, allow_nan=False),
).map(lambda pair: (min(pair), max(pair)))

leaf_subsets = st.lists(st.sampled_from(LEAVES), min_size=1, max_size=7, unique=True)


def selection_of(low, high):
    atoms = []
    atoms.extend(
        normalize_comparison(ITEM / "coord/cel/ra", ">=", None, Fraction(str(low)))
    )
    atoms.extend(
        normalize_comparison(ITEM / "coord/cel/ra", "<=", None, Fraction(str(high)))
    )
    return SelectionSpec(PredicateGraph(atoms))


def _props(operators):
    return StreamProperties("photons", ITEM, tuple(operators))


@given(ra_bounds)
@settings(max_examples=80, deadline=None)
def test_selectivity_in_unit_interval(catalog, bounds):
    low, high = bounds
    stats = catalog.for_stream("photons")
    spec = selection_of(low, high)
    selectivity = stats.selectivity(spec.graph)
    assert 0.0 < selectivity <= 1.0


@given(ra_bounds)
@settings(max_examples=80, deadline=None)
def test_selection_never_raises_frequency(catalog, bounds):
    low, high = bounds
    assume(high > low)
    raw = estimate_stream_rate(_props([]), catalog)
    selected = estimate_stream_rate(_props([selection_of(low, high)]), catalog)
    assert selected.frequency <= raw.frequency + 1e-9
    assert selected.size == raw.size


@given(ra_bounds, ra_bounds)
@settings(max_examples=80, deadline=None)
def test_tighter_selection_is_rarer(catalog, outer, inner):
    (outer_low, outer_high) = outer
    inner_low = max(inner[0], outer_low)
    inner_high = min(inner[1], outer_high)
    assume(inner_high > inner_low)
    wide = estimate_stream_rate(_props([selection_of(outer_low, outer_high)]), catalog)
    narrow = estimate_stream_rate(_props([selection_of(inner_low, inner_high)]), catalog)
    assert narrow.frequency <= wide.frequency + 1e-9


@given(leaf_subsets)
@settings(max_examples=80, deadline=None)
def test_projection_never_grows_items(catalog, leaves):
    spec = ProjectionSpec(frozenset(leaves), frozenset(leaves))
    raw = estimate_stream_rate(_props([]), catalog)
    projected = estimate_stream_rate(_props([spec]), catalog)
    assert projected.size <= raw.size + 1e-9
    assert projected.frequency == raw.frequency


@given(leaf_subsets, leaf_subsets)
@settings(max_examples=60, deadline=None)
def test_projection_monotone_in_outputs(catalog, first, second):
    smaller = frozenset(first) & frozenset(second)
    larger = frozenset(first) | frozenset(second)
    assume(smaller)
    small_rate = estimate_stream_rate(
        _props([ProjectionSpec(smaller, larger)]), catalog
    )
    large_rate = estimate_stream_rate(
        _props([ProjectionSpec(larger, larger)]), catalog
    )
    assert small_rate.size <= large_rate.size + 1e-9


@given(
    st.integers(min_value=1, max_value=20),
    st.integers(min_value=1, max_value=4),
    st.sampled_from(["min", "max", "sum", "count", "avg"]),
)
@settings(max_examples=80, deadline=None)
def test_aggregate_frequency_scales_with_step(catalog, step, multiplier, function):
    def agg(step_value):
        return AggregationSpec(
            function,
            ITEM / "en",
            WindowSpec(
                "diff",
                Fraction(step_value) * 4,
                Fraction(step_value),
                ITEM / "det_time",
            ),
            PredicateGraph(),
            PredicateGraph(),
        )

    fine = estimate_stream_rate(_props([agg(step)]), catalog)
    coarse = estimate_stream_rate(_props([agg(step * multiplier)]), catalog)
    assert coarse.frequency <= fine.frequency + 1e-9
    # Aggregate item size is input-independent.
    assert coarse.size == fine.size
