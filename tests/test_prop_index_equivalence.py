"""Property test: indexed registration is plan-equivalent to brute force.

The StreamAvailabilityIndex, the match memo, the content-grouped
candidate lookup, and the route cache are all *optimizations*: on any
workload — including deregistration and churn with plan repair — the
indexed system must accept the same subscriptions, reuse the same
streams at the same nodes with the same placements and costs, and end
with an identical deployment.  Randomized here over template-generated
workloads plus the paper's example queries.
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from tests.conftest import PAPER_QUERIES, make_system
from repro.analysis import verify_system
from repro.faults import SuperPeerCrash, SuperPeerRejoin
from repro.workload.templates import QueryTemplateGenerator

#: A fixed pool of template queries (seeded: reproducible examples).
_POOL = [g.text for g in QueryTemplateGenerator(seed=99).generate(12)]
_POOL += list(PAPER_QUERIES.values())

SUBSCRIBERS = ("P1", "P2", "P3", "P4")


def _register_workload(use_index, picks):
    system = make_system("stream-sharing", use_index=use_index)
    results = []
    for i, pick in enumerate(picks):
        result = system.register_query(
            f"W{i:02d}", _POOL[pick], SUBSCRIBERS[i % len(SUBSCRIBERS)]
        )
        results.append(result)
    return system, results


def _decisions(results):
    out = []
    for r in results:
        inputs = ()
        if r.plan is not None:
            inputs = tuple(
                (
                    p.input_stream,
                    p.reused_id,
                    p.tap_node,
                    p.placement_node,
                    p.cost,
                    p.effects.link_bits,
                    p.effects.peer_work,
                )
                for p in r.plan.inputs
            )
        out.append((r.query, r.accepted, inputs))
    return out


def _deployment_facts(system):
    deployment = system.deployment
    return {
        "streams": {
            sid: (s.content, s.origin_node, s.route, s.parent_id, s.pipeline)
            for sid, s in deployment.streams.items()
        },
        "queries": sorted(
            (name, record.subscriber_node, record.delivered)
            for name, record in deployment.queries.items()
        ),
    }


@settings(max_examples=15, deadline=None)
@given(
    picks=st.lists(
        st.integers(min_value=0, max_value=len(_POOL) - 1),
        min_size=1,
        max_size=10,
    ),
    drop=st.sets(st.integers(min_value=0, max_value=9)),
    crash=st.sampled_from([None, "SP5", "SP6", "SP7"]),
    rejoin=st.booleans(),
)
def test_indexed_equals_brute_force(picks, drop, crash, rejoin):
    indexed, indexed_results = _register_workload(True, picks)
    brute, brute_results = _register_workload(False, picks)

    # Identical plan decisions, including costs, on registration ...
    assert _decisions(indexed_results) == _decisions(brute_results)
    assert _deployment_facts(indexed) == _deployment_facts(brute)

    # ... identical teardown through deregistration GC ...
    for index in sorted(drop):
        name = f"W{index:02d}"
        if name in indexed.deployment.queries:
            indexed.deregister_query(name)
            brute.deregister_query(name)
    assert _deployment_facts(indexed) == _deployment_facts(brute)

    # ... and identical repair under churn.
    if crash is not None:
        indexed.apply_fault(SuperPeerCrash(5.0, crash))
        brute.apply_fault(SuperPeerCrash(5.0, crash))
        if rejoin:
            indexed.apply_fault(SuperPeerRejoin(15.0, crash))
            brute.apply_fault(SuperPeerRejoin(15.0, crash))
        assert _deployment_facts(indexed) == _deployment_facts(brute)

    # The indexed deployment stays verifier-clean (P14x included).
    report = verify_system(indexed)
    assert report.ok, report.render()


@settings(max_examples=10, deadline=None)
@given(
    picks=st.lists(
        st.integers(min_value=0, max_value=len(_POOL) - 1),
        min_size=2,
        max_size=8,
    )
)
def test_batch_admission_matches_some_sequential_order(picks):
    """Batch admission must behave exactly like sequential registration
    in admission order: same final stream set as registering the sorted
    batch one by one."""
    batch_system = make_system("stream-sharing")
    batch = [
        (f"W{i:02d}", _POOL[pick], SUBSCRIBERS[i % len(SUBSCRIBERS)])
        for i, pick in enumerate(picks)
    ]
    batch_results = batch_system.register_queries(batch)
    assert [r.query for r in batch_results] == [name for name, _, _ in batch]

    from repro.properties import extract_properties
    from repro.sharing.index import admission_order_key
    from repro.wxquery import parse_query

    order = sorted(
        range(len(batch)),
        key=lambda i: admission_order_key(
            extract_properties(parse_query(batch[i][1]), batch[i][0])
        ),
    )
    sequential = make_system("stream-sharing")
    for i in order:
        name, text, subscriber = batch[i]
        sequential.register_query(name, text, subscriber)
    assert _deployment_facts(batch_system) == _deployment_facts(sequential)
