"""Unit tests for topology and routing."""

import pytest

from repro.network import (
    Link,
    Network,
    NoRouteError,
    TopologyError,
    all_distances,
    eccentricity,
    example_topology,
    grid_topology,
    hop_distance,
    path_links,
    shortest_path,
)


class TestLink:
    def test_canonical_orientation(self):
        assert Link("SP2", "SP1") == Link("SP1", "SP2")
        assert Link("SP2", "SP1").ends == ("SP1", "SP2")

    def test_other_endpoint(self):
        link = Link("A", "B")
        assert link.other("A") == "B"
        assert link.other("B") == "A"
        with pytest.raises(TopologyError):
            link.other("C")

    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError):
            Link("A", "A")

    def test_nonpositive_bandwidth_rejected(self):
        with pytest.raises(TopologyError):
            Link("A", "B", bandwidth=0)


class TestNetwork:
    def test_duplicate_super_peer(self):
        net = Network()
        net.add_super_peer("SP0")
        with pytest.raises(TopologyError):
            net.add_super_peer("SP0")

    def test_duplicate_link(self):
        net = Network()
        net.add_super_peer("A")
        net.add_super_peer("B")
        net.add_link("A", "B")
        with pytest.raises(TopologyError):
            net.add_link("B", "A")

    def test_link_requires_known_peers(self):
        net = Network()
        net.add_super_peer("A")
        with pytest.raises(TopologyError):
            net.add_link("A", "X")

    def test_thin_peer_registration(self):
        net = Network()
        net.add_super_peer("SP0")
        net.add_thin_peer("P0", "SP0")
        assert net.home_of("P0") == "SP0"
        assert net.home_of("SP0") == "SP0"
        with pytest.raises(TopologyError):
            net.add_thin_peer("P0", "SP0")
        with pytest.raises(TopologyError):
            net.add_thin_peer("P1", "SPX")

    def test_neighbors(self):
        net = example_topology()
        assert set(net.neighbors("SP4")) == {"SP6", "SP5"}

    def test_capacity_validation(self):
        net = Network()
        with pytest.raises(TopologyError):
            net.add_super_peer("X", capacity=-1)

    def test_connectivity_check(self):
        net = Network()
        net.add_super_peer("A")
        net.add_super_peer("B")
        with pytest.raises(TopologyError):
            net.check_connected()


class TestExampleTopology:
    def test_shape(self):
        net = example_topology()
        assert len(net) == 8
        assert len(net.links()) == 11
        assert len(net.thin_peers()) == 5

    def test_paper_route_q1(self):
        """Query 1's result is routed SP4 → SP5 → SP1 (Section 1)."""
        assert shortest_path(example_topology(), "SP4", "SP1") == ["SP4", "SP5", "SP1"]

    def test_source_is_sp4(self):
        assert example_topology().home_of("P0") == "SP4"


class TestGridTopology:
    def test_shape(self):
        net = grid_topology(4, 4)
        assert len(net) == 16
        assert len(net.links()) == 24  # 2 * 4 * 3

    def test_corner_distance(self):
        assert hop_distance(grid_topology(4, 4), "SP0", "SP15") == 6

    def test_invalid_dimensions(self):
        with pytest.raises(TopologyError):
            grid_topology(0, 4)

    def test_rectangular(self):
        net = grid_topology(2, 3)
        assert len(net) == 6
        assert len(net.links()) == 7


class TestRouting:
    def test_trivial_route(self):
        assert shortest_path(example_topology(), "SP4", "SP4") == ["SP4"]

    def test_route_is_shortest(self):
        net = grid_topology(4, 4)
        path = shortest_path(net, "SP0", "SP15")
        assert len(path) == 7

    def test_route_traverses_links(self):
        net = example_topology()
        path = shortest_path(net, "SP4", "SP3")
        for link in path_links(net, path):
            assert net.has_link(link.a, link.b)

    def test_unknown_endpoint(self):
        with pytest.raises(TopologyError):
            shortest_path(example_topology(), "SP4", "SPX")

    def test_disconnected(self):
        net = Network()
        net.add_super_peer("A")
        net.add_super_peer("B")
        with pytest.raises(NoRouteError):
            shortest_path(net, "A", "B")
        with pytest.raises(NoRouteError):
            eccentricity(net, "A")

    def test_all_distances(self):
        distances = all_distances(example_topology(), "SP4")
        assert distances["SP4"] == 0
        assert distances["SP5"] == 1
        assert len(distances) == 8

    def test_eccentricity(self):
        assert eccentricity(grid_topology(4, 4), "SP0") == 6
        assert eccentricity(grid_topology(4, 4), "SP5") == 4

    def test_deterministic_tie_breaking(self):
        net = example_topology()
        assert shortest_path(net, "SP4", "SP1") == shortest_path(net, "SP4", "SP1")
