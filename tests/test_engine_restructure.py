"""Unit tests for post-processing (the restructuring step)."""

import pytest

from tests.conftest import PAPER_QUERIES
from repro.engine import PartialAggregate, Restructurer, partial_to_wire
from repro.wxquery import analyze, parse_query
from repro.xmlkit import Element, element


def restructurer(text):
    return Restructurer(analyze(parse_query(text)))


def photon(ra=130.0, dec=-45.0, en=1.5, det_time=1.0, phc=42):
    return element(
        "photon",
        element("phc", text=phc),
        element(
            "coord",
            element("cel", element("ra", text=ra), element("dec", text=dec)),
            element("det", element("dx", text=1), element("dy", text=2)),
        ),
        element("en", text=en),
        element("det_time", text=det_time),
    )


class TestPlainQueries:
    def test_q1_structure(self):
        builder = restructurer(PAPER_QUERIES["Q1"])
        (result,) = builder.build(photon())
        assert result.tag == "vela"
        assert [c.tag for c in result.children] == ["ra", "dec", "phc", "en", "det_time"]
        assert result.child("ra").text == "130.0"

    def test_q2_structure(self):
        builder = restructurer(PAPER_QUERIES["Q2"])
        (result,) = builder.build(photon())
        assert result.tag == "rxj"
        assert [c.tag for c in result.children] == ["ra", "dec", "en", "det_time"]

    def test_whole_item_output(self):
        builder = restructurer('<r>{ for $p in stream("s")/photons/photon return $p }</r>')
        (result,) = builder.build(photon())
        assert result == photon()
        assert result is not photon()  # a copy, not the input

    def test_missing_path_produces_no_output(self):
        builder = restructurer(
            '<r>{ for $p in stream("s")/photons/photon return <x> { $p/nope } </x> }</r>'
        )
        (result,) = builder.build(photon())
        assert result == Element("x")

    def test_sequence_output(self):
        builder = restructurer(
            '<r>{ for $p in stream("s")/photons/photon return ($p/en, $p/phc) }</r>'
        )
        results = builder.build(photon())
        assert [r.tag for r in results] == ["en", "phc"]

    def test_empty_element_constructor(self):
        builder = restructurer(
            '<r>{ for $p in stream("s")/photons/photon return <mark/> }</r>'
        )
        assert builder.build(photon()) == [Element("mark")]


class TestAggregateQueries:
    def test_q3_final_avg(self):
        builder = restructurer(PAPER_QUERIES["Q3"])
        wire = partial_to_wire(PartialAggregate.of_values([1.0, 2.0]), "avg")
        (result,) = builder.build(wire)
        assert result.tag == "avg_en"
        assert result.text == "1.5"

    def test_integer_rendering(self):
        builder = restructurer(PAPER_QUERIES["Q3"])
        wire = partial_to_wire(PartialAggregate.of_values([2.0, 2.0]), "avg")
        (result,) = builder.build(wire)
        assert result.text == "2"

    def test_empty_window_produces_nothing(self):
        builder = restructurer(PAPER_QUERIES["Q3"])
        wire = partial_to_wire(PartialAggregate(), "avg")
        assert builder.build(wire) == []

    def test_if_expression_over_aggregate(self):
        builder = restructurer(
            '<r>{ for $w in stream("s")/photons/photon |count 2| '
            "let $a := avg($w/en) "
            "return if $a >= 1 then <hi/> else <lo/> }</r>"
        )
        high = partial_to_wire(PartialAggregate.of_values([2.0]), "avg")
        low = partial_to_wire(PartialAggregate.of_values([0.5]), "avg")
        assert builder.build(high) == [Element("hi")]
        assert builder.build(low) == [Element("lo")]


class TestWindowContents:
    def test_var_output_flattens_window(self):
        builder = restructurer(
            '<r>{ for $w in stream("s")/photons/photon |count 2| return <batch> { $w } </batch> }</r>'
        )
        window = Element("window", children=[photon(en=1.0), photon(en=2.0)])
        (result,) = builder.build(window)
        assert result.tag == "batch"
        assert len(result.children) == 2

    def test_path_output_over_window(self):
        builder = restructurer(
            '<r>{ for $w in stream("s")/photons/photon |count 2| return <ens> { $w/en } </ens> }</r>'
        )
        window = Element("window", children=[photon(en=1.0), photon(en=2.0)])
        (result,) = builder.build(window)
        assert [c.text for c in result.children] == ["1.0", "2.0"]
