"""Integration tests for Algorithm 1 and the strategy registrars.

These tests assert the *decisions* of the paper's running example
(Section 1, Figure 2): Query 1 pushed to the source super-peer, Query 2
answered from Query 1's stream, Query 4 answered from Query 3's
aggregates via re-aggregation.
"""

import pytest

from tests.conftest import PAPER_QUERIES, make_system
from repro.sharing.planner import PlanningError


class TestStreamSharingDecisions:
    def test_q1_pushed_into_network(self):
        """'its execution can be pushed into the network and computed at
        SP4 instead of SP1' (Section 1)."""
        system = make_system("stream-sharing")
        result = system.register_query("Q1", PAPER_QUERIES["Q1"], "P1")
        plan = result.plan.inputs[0]
        assert plan.reused_id == "photons"
        assert plan.placement_node == "SP4"
        assert plan.delivered.route == ("SP4", "SP5", "SP1")

    def test_q2_reuses_q1_stream(self):
        """'it can reuse the stream constituting the answer for Query 1
        ... because the result of Query 2 is completely contained in the
        answer for Query 1'."""
        system = make_system("stream-sharing")
        system.register_query("Q1", PAPER_QUERIES["Q1"], "P1")
        result = system.register_query("Q2", PAPER_QUERIES["Q2"], "P2")
        plan = result.plan.inputs[0]
        assert plan.reused_id == "Q1:photons"
        assert {s.kind for s in plan.delivered.pipeline} <= {"selection", "projection"}

    def test_q4_reuses_q3_aggregates(self):
        """Figure 5: Q4's coarser windows rebuilt from Q3's aggregates."""
        system = make_system("stream-sharing")
        system.register_query("Q3", PAPER_QUERIES["Q3"], "P3")
        result = system.register_query("Q4", PAPER_QUERIES["Q4"], "P4")
        plan = result.plan.inputs[0]
        assert plan.reused_id == "Q3:photons"
        assert [s.kind for s in plan.delivered.pipeline] == ["reaggregation"]

    def test_q3_does_not_reuse_q4(self):
        """The reverse direction is not shareable (finer windows and a
        filtered aggregate): Q3 must fall back to the original stream."""
        system = make_system("stream-sharing")
        system.register_query("Q4", PAPER_QUERIES["Q4"], "P4")
        result = system.register_query("Q3", PAPER_QUERIES["Q3"], "P3")
        assert result.plan.inputs[0].reused_id == "photons"

    def test_identical_query_fully_reused(self):
        system = make_system("stream-sharing")
        system.register_query("Q1", PAPER_QUERIES["Q1"], "P1")
        result = system.register_query("Q1b", PAPER_QUERIES["Q1"], "P2")
        plan = result.plan.inputs[0]
        assert plan.reused_id == "Q1:photons"
        assert plan.delivered.pipeline == ()

    def test_search_telemetry_populated(self):
        system = make_system("stream-sharing")
        system.register_query("Q1", PAPER_QUERIES["Q1"], "P1")
        result = system.register_query("Q2", PAPER_QUERIES["Q2"], "P2")
        assert result.plan.visited_nodes >= 1
        assert result.plan.candidate_matches >= 1

    def test_unknown_stream_rejected(self):
        system = make_system("stream-sharing")
        with pytest.raises(PlanningError):
            system.register_query(
                "bad",
                '<r>{ for $p in stream("nonexistent")/a/b return $p }</r>',
                "P1",
            )

    def test_registration_time_reported(self):
        system = make_system("stream-sharing")
        result = system.register_query("Q1", PAPER_QUERIES["Q1"], "P1")
        assert result.registration_ms > 0


class TestBaselineStrategies:
    def test_data_shipping_evaluates_at_subscriber(self):
        system = make_system("data-shipping")
        result = system.register_query("Q1", PAPER_QUERIES["Q1"], "P1")
        plan = result.plan.inputs[0]
        assert plan.placement_node == "SP1"
        assert plan.relay is not None
        assert plan.relay.content.is_raw

    def test_query_shipping_evaluates_at_source(self):
        system = make_system("query-shipping")
        result = system.register_query("Q1", PAPER_QUERIES["Q1"], "P1")
        plan = result.plan.inputs[0]
        assert plan.placement_node == "SP4"
        assert plan.relay is None

    def test_baselines_never_share(self):
        for strategy in ("data-shipping", "query-shipping"):
            system = make_system(strategy)
            system.register_query("Q1", PAPER_QUERIES["Q1"], "P1")
            result = system.register_query("Q1b", PAPER_QUERIES["Q1"], "P2")
            assert result.plan.inputs[0].reused_id == "photons"

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            make_system("carrier-pigeon")


class TestDfsVariant:
    def test_dfs_finds_valid_plans(self):
        system = make_system("stream-sharing", search_order="dfs")
        system.register_query("Q1", PAPER_QUERIES["Q1"], "P1")
        result = system.register_query("Q2", PAPER_QUERIES["Q2"], "P2")
        assert result.accepted
        assert result.plan.inputs[0].reused_id in ("photons", "Q1:photons")

    def test_invalid_order_rejected(self):
        with pytest.raises(ValueError):
            make_system("stream-sharing", search_order="sideways")


class TestAdmissionControl:
    def test_rejection_under_tight_bandwidth(self):
        from repro.bench.harness import scale_network
        from repro.network.topology import example_topology
        from repro.sharing import StreamGlobe
        from repro.workload.photons import PhotonGenerator, PhotonStreamConfig

        # 100 kbit/s links cannot carry the raw 100-items/s XML stream.
        net = scale_network(example_topology(), link_bandwidth=100_000.0)
        config = PhotonStreamConfig(seed=1, frequency=100.0)
        system = StreamGlobe(net, strategy="data-shipping", admission_control=True)
        system.register_stream(
            "photons", "photons/photon", lambda: PhotonGenerator(config),
            frequency=100.0, source_peer="P0",
        )
        result = system.register_query("Q1", PAPER_QUERIES["Q1"], "P1")
        assert not result.accepted
        assert result.rejection_reason is not None
        assert system.rejected_queries() == ["Q1"]

    def test_rejected_query_leaves_no_streams(self):
        from repro.bench.harness import scale_network
        from repro.network.topology import example_topology
        from repro.sharing import StreamGlobe
        from repro.workload.photons import PhotonGenerator, PhotonStreamConfig

        net = scale_network(example_topology(), link_bandwidth=100_000.0)
        config = PhotonStreamConfig(seed=1, frequency=100.0)
        system = StreamGlobe(net, strategy="data-shipping", admission_control=True)
        system.register_stream(
            "photons", "photons/photon", lambda: PhotonGenerator(config),
            frequency=100.0, source_peer="P0",
        )
        system.register_query("Q1", PAPER_QUERIES["Q1"], "P1")
        assert list(system.deployment.streams) == ["photons"]
        assert system.deployment.queries == {}
