"""Drift detector unit tests: thresholds, hysteresis, sustain, cooldown."""

import pytest

from repro.obs import DriftConfig, DriftDetector, EpochSnapshot


def _snapshot(index, cpu_by_peer):
    return EpochSnapshot(
        index=index,
        t_start=float(index),
        t_end=float(index + 1),
        peer_cpu_percent=dict(cpu_by_peer),
    )


def _feed(detector, series):
    """Feed per-epoch CPU maps; return the epoch indices that alerted."""
    fired = []
    for index, cpu_by_peer in enumerate(series):
        if detector.observe(_snapshot(index, cpu_by_peer)):
            fired.append(index)
    return fired


class TestDriftConfig:
    def test_defaults_are_valid(self):
        config = DriftConfig()
        assert config.clear_threshold < config.cpu_threshold

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"cpu_threshold": 0.0},
            {"clear_threshold": -1.0},
            {"cpu_threshold": 50.0, "clear_threshold": 50.0},
            {"window": 0},
            {"sustain": 0},
            {"cooldown": -1},
        ],
    )
    def test_invalid_configs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            DriftConfig(**kwargs)


class TestDriftDetector:
    CONFIG = DriftConfig(
        cpu_threshold=50.0, clear_threshold=20.0, window=2, sustain=2, cooldown=3
    )

    def test_sustained_breach_alerts_once(self):
        detector = DriftDetector(self.CONFIG)
        # Window means: 10, 40, 70, 90 — breaches at epochs 2 and 3,
        # so sustain=2 fires exactly at epoch 3.
        fired = _feed(detector, [{"SP0": 10}, {"SP0": 70}, {"SP0": 70}, {"SP0": 110}])
        assert fired == [3]
        alert = detector.alerts[0]
        assert alert.epoch_index == 3
        assert alert.peer_names == ("SP0",)

    def test_single_spike_does_not_alert(self):
        detector = DriftDetector(self.CONFIG)
        # A one-epoch burst of 70% (instantaneously over threshold) is
        # absorbed by the window=2 mean (40, 37.5): never breaches.
        assert _feed(detector, [{"SP0": 10}, {"SP0": 70}, {"SP0": 5}, {"SP0": 5}]) == []

    def test_hysteresis_holds_streak_between_thresholds(self):
        detector = DriftDetector(self.CONFIG)
        # Mean dips below cpu_threshold but stays above clear_threshold:
        # the streak holds (is not reset) and the next breach completes
        # the sustain count.
        series = [{"SP0": 60}, {"SP0": 60}, {"SP0": 20}, {"SP0": 100}]
        # means: 60 (breach, streak 1), 60 (breach, streak 2 -> alert) ...
        fired = _feed(detector, series)
        assert fired[0] == 1

    def test_clear_threshold_resets_streak(self):
        detector = DriftDetector(self.CONFIG)
        # A mean below clear_threshold zeroes the streak, so two
        # non-consecutive breaches never alert.
        series = [
            {"SP0": 120},  # mean 120: streak 1
            {"SP0": -100},  # mean 10 < clear: reset
            {"SP0": 120},  # mean 10: below
        ]
        assert _feed(detector, series) == []

    def test_cooldown_suppresses_repeat_alerts(self):
        detector = DriftDetector(self.CONFIG)
        hot = {"SP0": 100}
        fired = _feed(detector, [hot] * 10)
        assert fired[0] == 1
        # cooldown=3 epochs pass alert-free, then sustain must rebuild.
        assert all(b - a >= self.CONFIG.cooldown + self.CONFIG.sustain
                   for a, b in zip(fired, fired[1:]))
        assert len(fired) >= 2

    def test_hot_peers_sorted_by_severity_then_name(self):
        detector = DriftDetector(
            DriftConfig(cpu_threshold=50.0, clear_threshold=20.0,
                        window=1, sustain=1, cooldown=0)
        )
        alerts = detector.observe(
            _snapshot(0, {"SP2": 80.0, "SP0": 95.0, "SP1": 80.0})
        )
        assert len(alerts) == 1
        assert alerts[0].peer_names == ("SP0", "SP1", "SP2")

    def test_independent_peer_states(self):
        detector = DriftDetector(self.CONFIG)
        # SP1 ramps while SP0 idles; only SP1 alerts.
        series = [{"SP0": 5, "SP1": 90}, {"SP0": 5, "SP1": 90}]
        _feed(detector, series)
        assert [a.peer_names for a in detector.alerts] == [("SP1",)]
