"""Tests for stream trace recording and replay."""

import pytest

from repro.workload.photons import PhotonGenerator, PhotonStreamConfig
from repro.workload.trace import (
    TraceError,
    TraceReplayGenerator,
    load_trace,
    record_trace,
    save_trace,
)
from repro.xmlkit import Path, parse_stream


@pytest.fixture()
def photons():
    return PhotonGenerator(PhotonStreamConfig(seed=11, frequency=50.0)).take(40)


class TestRecording:
    def test_roundtrip_text(self, photons):
        text = record_trace(photons)
        assert parse_stream(text) == photons

    def test_roundtrip_file(self, photons, tmp_path):
        path = str(tmp_path / "trace.xml")
        count = save_trace(photons, path)
        assert count == 40
        assert load_trace(path) == photons


class TestReplay:
    def test_empty_trace_rejected(self):
        with pytest.raises(TraceError):
            TraceReplayGenerator([])

    def test_replays_in_order(self, photons):
        replay = TraceReplayGenerator(photons)
        replayed = [replay.next_item() for _ in range(len(photons))]
        assert replayed == photons
        assert replayed[0] is not photons[0]  # defensive copies

    def test_clock_follows_reference(self, photons):
        replay = TraceReplayGenerator(photons)
        first = replay.next_item()
        assert replay.clock == 0.0  # rebased to zero
        replay.next_item()
        expected = (
            float(photons[1].find(["det_time"]).text)
            - float(photons[0].find(["det_time"]).text)
        )
        assert replay.clock == pytest.approx(expected)
        del first

    def test_exhaustion_without_loop(self, photons):
        replay = TraceReplayGenerator(photons[:3])
        for _ in range(3):
            replay.next_item()
        assert replay.remaining == 0
        with pytest.raises(TraceError):
            replay.next_item()

    def test_looping_keeps_clock_monotone(self, photons):
        replay = TraceReplayGenerator(photons[:5], loop=True)
        clocks = []
        for _ in range(17):
            replay.next_item()
            clocks.append(replay.clock)
        assert all(b > a for a, b in zip(clocks, clocks[1:]))

    def test_fallback_frequency_without_reference(self, photons):
        replay = TraceReplayGenerator(photons, reference=None, frequency=10.0)
        replay.next_item()
        replay.next_item()
        assert replay.clock == pytest.approx(0.2)

    def test_from_file(self, photons, tmp_path):
        path = str(tmp_path / "trace.xml")
        save_trace(photons, path)
        replay = TraceReplayGenerator.from_file(path)
        assert replay.next_item() == photons[0]


class TestReplayDrivesTheSystem:
    def test_trace_as_stream_source(self, photons, tmp_path):
        """A recorded trace can back a registered stream end to end."""
        from repro.network.topology import example_topology
        from repro.sharing import StreamGlobe

        path = str(tmp_path / "trace.xml")
        save_trace(photons, path)

        system = StreamGlobe(example_topology(), strategy="stream-sharing")
        system.register_stream(
            "photons",
            "photons/photon",
            lambda: TraceReplayGenerator.from_file(path, loop=True),
            frequency=50.0,
            source_peer="P0",
        )
        result = system.register_query(
            "all",
            '<photons>{ for $p in stream("photons")/photons/photon '
            "where $p/en >= 0.0 return <r> { $p/en } </r> }</photons>",
            "P1",
        )
        assert result.accepted
        metrics = system.run(duration=2.0)
        assert metrics.items_delivered["all"] > 0
        assert metrics.items_delivered["all"] == metrics.items_generated["photons"]
