"""The S5xx shard certifier: effect lattice, partition, certificates."""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fractions import Fraction

from tests.conftest import PAPER_QUERIES, make_system
from repro.analysis import (
    KEYED_STATE,
    ORDER_SENSITIVE,
    STATELESS,
    AnalysisReport,
    certify_shards,
    operator_effect,
    stream_effect,
)
from repro.analysis.preflight import build_churned_system, build_shard_plan
from repro.network.topology import Network
from repro.predicates import PredicateGraph
from repro.properties import (
    AggregationSpec,
    ProjectionSpec,
    RestructureSpec,
    SelectionSpec,
    UdfSpec,
    WindowSpec,
)
from repro.sharing import StreamGlobe
from repro.sharing.plan import InstalledStream
from repro.workload.photons import PhotonGenerator, PhotonStreamConfig
from repro.workload.scenarios import scenario_churn, scenario_grid, scenario_one
from repro.xmlkit import Path

EN = Path("photons/photon/en")
DET_TIME = Path("photons/photon/det_time")

TWO_STREAM_QUERY = """
<pair>{ for $p in stream("left")/photons/photon
        for $q in stream("right")/photons/photon
        return <both> { $p/en } { $q/en } </both> }</pair>
"""


def _aggregation(window):
    return AggregationSpec(
        function="avg",
        aggregated_path=EN,
        window=window,
        pre_selection=PredicateGraph(),
        result_filter=PredicateGraph(),
    )


# ----------------------------------------------------------------------
# The effect lattice
# ----------------------------------------------------------------------
def test_per_item_operators_are_stateless(catalog):
    assert operator_effect(SelectionSpec(PredicateGraph()), catalog, "photons") == STATELESS
    projection = ProjectionSpec(
        output_elements=frozenset({EN}), referenced_elements=frozenset({EN})
    )
    assert operator_effect(projection, catalog, "photons") == STATELESS
    assert operator_effect(RestructureSpec("Q1"), catalog, "photons") == STATELESS


def test_count_windows_are_keyed_state(catalog):
    window = WindowSpec("count", Fraction(10), Fraction(10))
    assert operator_effect(_aggregation(window), catalog, "photons") == KEYED_STATE


def test_certified_diff_window_is_keyed_state(catalog):
    # The catalog certifies det_time as nondecreasing, so the window's
    # reorder buffering is provably segmentation-independent.
    assert catalog.for_stream("photons").is_nondecreasing(DET_TIME)
    window = WindowSpec("diff", Fraction(20), Fraction(10), reference=DET_TIME)
    assert operator_effect(_aggregation(window), catalog, "photons") == KEYED_STATE


def test_uncertified_diff_window_is_order_sensitive(catalog):
    window = WindowSpec("diff", Fraction(20), Fraction(10), reference=DET_TIME)
    # No catalog: the reference ordering cannot be certified.
    assert operator_effect(_aggregation(window), None, "photons") == ORDER_SENSITIVE
    # Non-monotone reference (photon energies are random).
    jitter = WindowSpec("diff", Fraction(20), Fraction(10), reference=EN)
    assert operator_effect(_aggregation(jitter), catalog, "photons") == ORDER_SENSITIVE


def test_udf_is_order_sensitive(catalog):
    assert operator_effect(UdfSpec(name="calibrate"), catalog, "photons") == ORDER_SENSITIVE


@dataclass(frozen=True)
class _TeleportSpec:
    """An operator kind the certifier has never heard of."""

    kind: str = field(default="teleport", init=False)


def test_unknown_kind_reports_s501(catalog):
    assert operator_effect(_TeleportSpec(), catalog, "photons") is None
    system = make_system()
    parent = system.deployment.streams["photons"]
    stream = InstalledStream(
        stream_id="weird",
        content=parent.content,
        origin_node=parent.origin_node,
        route=parent.route,
        parent_id="photons",
        pipeline=(_TeleportSpec(),),
        query="QX",
    )
    report = AnalysisReport()
    assert stream_effect(stream, catalog, report) == ORDER_SENSITIVE
    (diag,) = report.diagnostics
    assert diag.code == "S501" and diag.severity == "error"
    # An unclassifiable plan must never certify.
    system.deployment.install_stream(stream)
    plan, shard_report = certify_shards(system.deployment, system.catalog)
    assert "S501" in shard_report.codes()
    assert not plan.certified
    assert not json.loads(plan.to_json())["certified"]


# ----------------------------------------------------------------------
# The certified partition
# ----------------------------------------------------------------------
def test_grid_scenario_certifies_multiple_shards():
    scenario = scenario_grid(rows=3, cols=3, query_count=24)
    plan, report = build_shard_plan(scenario, "stream-sharing")
    assert report.ok, report.render()
    assert plan.certified
    assert plan.shard_count >= 2  # the acceptance bar: real parallelism
    # The shards partition the live super-peers exactly.
    seen = [node for shard in plan.shards for node in shard.nodes]
    assert sorted(seen) == sorted(set(seen))
    for shard in plan.shards:
        assert plan.shard_of(shard.nodes[0]) == shard.shard_id
    assert plan.shard_of("no-such-node") is None


def test_paper_scenario_partition_is_deterministic():
    scenario = scenario_one()
    first, _ = build_shard_plan(scenario, "stream-sharing")
    second, _ = build_shard_plan(scenario_one(), "stream-sharing")
    assert first.to_json() == second.to_json()


def test_shard_plan_json_schema():
    plan, _ = build_shard_plan(scenario_grid(rows=3, cols=3, query_count=24), "stream-sharing")
    data = json.loads(plan.to_json())
    assert data["version"] == 1
    assert data["network_version"] == plan.network_version
    assert set(data) == {
        "version",
        "network_version",
        "certified",
        "shards",
        "cut_edges",
        "blocked_edges",
        "epoch_lag",
    }
    for shard in data["shards"]:
        assert set(shard) == {"id", "nodes", "streams", "queries"}
    for edge in data["cut_edges"]:
        assert set(edge) == {"link", "from_shard", "to_shard", "streams", "effect"}
        assert edge["effect"] in (STATELESS, KEYED_STATE, ORDER_SENSITIVE)
        assert edge["from_shard"] != edge["to_shard"]
    # Every query has a lag; no cut on a path means lag 0.
    assert set(data["epoch_lag"]) == set(q for s in data["shards"] for q in s["queries"])
    assert all(lag >= 0 for lag in data["epoch_lag"].values())


def test_cut_edges_connect_distinct_shards():
    plan, _ = build_shard_plan(scenario_grid(rows=3, cols=3, query_count=24), "stream-sharing")
    assert plan.cut_edges  # a 3×3 grid with local queries always cuts
    for edge in plan.cut_edges:
        assert plan.shard_of(edge.link[0]) == edge.from_shard
        assert plan.shard_of(edge.link[1]) == edge.to_shard
        assert edge.from_shard != edge.to_shard


# ----------------------------------------------------------------------
# S510 — order-sensitive consumers pin their feed path
# ----------------------------------------------------------------------
def test_s510_udf_pins_its_feed_path():
    system = make_system()
    system.register_query("Q1", PAPER_QUERIES["Q1"], "P1")
    delivered_id = system.deployment.queries["Q1"].delivered[0][1]
    route = system.deployment.streams[delivered_id].route
    assert len(route) >= 2  # the delivered stream crosses links
    # Tap the delivered stream at the far end of its route: the whole
    # multi-hop feed now ends in an order-sensitive (UDF) pipeline.
    system.install_derived_stream(
        "Q1:udf", delivered_id, [UdfSpec(name="calibrate")],
        target=route[-1], tap_node=route[-1],
    )
    plan, report = certify_shards(system.deployment, system.catalog)
    s510 = [d for d in report.diagnostics if d.code == "S510"]
    assert s510, report.render()
    assert all(d.severity == "warning" for d in s510)
    assert plan.certified  # blocked edges coarsen the plan, not fail it
    blocked = [e for e in plan.blocked_edges if e.code == "S510"]
    assert {e.link for e in blocked} == set(
        tuple(sorted(pair)) for pair in zip(route, route[1:])
    )
    # Blocked edges were honoured: both endpoints share a shard.
    for edge in blocked:
        assert plan.shard_of(edge.link[0]) == plan.shard_of(edge.link[1])


def test_stateless_pipelines_do_not_block():
    system = make_system()
    system.register_query("Q1", PAPER_QUERIES["Q1"], "P1")
    plan, report = certify_shards(system.deployment, system.catalog)
    assert report.ok and not report.diagnostics, report.render()
    assert plan.blocked_edges == ()


# ----------------------------------------------------------------------
# S511 — multi-input subscriptions need uniform epoch lag
# ----------------------------------------------------------------------
def _two_stream_system():
    net = Network()
    for name in ("SPL", "SPM", "SPR"):
        net.add_super_peer(name)
    net.add_link("SPL", "SPM")
    net.add_link("SPM", "SPR")
    net.add_thin_peer("L", "SPL")
    net.add_thin_peer("R", "SPR")
    net.add_thin_peer("U", "SPM")
    system = StreamGlobe(net, strategy="stream-sharing")
    for name, seed, peer in [("left", 1, "L"), ("right", 2, "R")]:
        config = PhotonStreamConfig(seed=seed, frequency=40.0)
        system.register_stream(
            name, "photons/photon",
            (lambda cfg: (lambda: PhotonGenerator(cfg)))(config),
            frequency=40.0, source_peer=peer,
        )
    return system


def test_s511_multi_input_subscription_pins_both_inputs():
    system = _two_stream_system()
    result = system.register_query("pair", TWO_STREAM_QUERY, "U")
    assert result.accepted and len(result.plan.inputs) == 2
    plan, report = certify_shards(system.deployment, system.catalog)
    s511 = [d for d in report.diagnostics if d.code == "S511"]
    assert s511, report.render()
    assert all(d.severity == "warning" for d in s511)
    assert plan.certified
    # The combiner pairs r-th items: everything collapses to one shard.
    assert plan.shard_count == 1
    assert plan.cut_edges == ()
    assert {e.code for e in plan.blocked_edges} == {"S511"}
    assert dict(plan.epoch_lag) == {"pair": 0}


def test_single_input_queries_cut_freely():
    system = _two_stream_system()
    single = '<r>{ for $p in stream("left")/photons/photon return $p/en }</r>'
    system.register_query("solo", single, "U")
    plan, report = certify_shards(system.deployment, system.catalog)
    assert "S511" not in report.codes()
    # The unused right source's island may split off.
    assert plan.shard_count >= 2


# ----------------------------------------------------------------------
# Certificates through churn and the system facade
# ----------------------------------------------------------------------
def test_certificates_revalidate_through_churn():
    reports = build_churned_system(
        scenario_churn(), "stream-sharing", passes=("shards",)
    )
    assert reports  # one report per fault event
    for report in reports:
        assert report.ok, report.render()


def test_churn_runs_every_requested_pass():
    reports = build_churned_system(
        scenario_churn(), "stream-sharing", passes=("plan", "flow", "shards")
    )
    for report in reports:
        assert report.ok, report.render()


def test_shard_plan_facade_caches_per_plan_state():
    system = make_system()
    system.register_query("Q1", PAPER_QUERIES["Q1"], "P1")
    plan = system.shard_plan()
    assert plan.network_version == system.net.version
    assert system.shard_plan() is plan  # cached: same certificate object
    system.register_query("Q2", PAPER_QUERIES["Q2"], "P2")
    fresh = system.shard_plan()
    assert fresh is not plan  # a plan mutation invalidates the cache
    assert system.shard_plan() is fresh


def test_verify_flag_runs_the_certifier():
    # An unclassifiable operator must abort the registration pre-flight.
    import pytest

    from repro.analysis import InvariantViolation

    system = make_system(verify=True)
    system.register_query("Q1", PAPER_QUERIES["Q1"], "P1")
    parent = system.deployment.streams["photons"]
    system.deployment.install_stream(
        InstalledStream(
            stream_id="weird",
            content=parent.content,
            origin_node=parent.origin_node,
            route=parent.route,
            parent_id="photons",
            pipeline=(_TeleportSpec(),),
            query="Q1",
        )
    )
    with pytest.raises(InvariantViolation) as exc:
        system.register_query("Q2", PAPER_QUERIES["Q2"], "P2")
    assert "S501" in exc.value.report.codes()


# ----------------------------------------------------------------------
# Runtime partition (ShardPlan -> worker cells)
# ----------------------------------------------------------------------
def certified_plan():
    system = make_system()
    for name, text in PAPER_QUERIES.items():
        system.register_query(name, text, subscriber_peer=f"P{name[1]}")
    plan = system.shard_plan()
    assert plan.certified
    return plan, system.deployment


def test_partition_for_workers_is_deterministic():
    from repro.analysis import partition_for_workers

    plan, deployment = certified_plan()
    first = partition_for_workers(plan, deployment, 3)
    second = partition_for_workers(plan, deployment, 3)
    assert first.cells == second.cells
    assert first.node_cell == second.node_cell


def test_partition_never_splits_a_certified_shard():
    from repro.analysis import partition_for_workers

    plan, deployment = certified_plan()
    for workers in (2, 3, 4, plan.shard_count, plan.shard_count + 5):
        partition = partition_for_workers(plan, deployment, workers)
        # Weight-0 shards coalesce, so the cap is an upper bound.
        assert 1 < partition.cell_count <= min(workers, plan.shard_count)
        for shard in plan.shards:
            holders = [
                cell_index
                for cell_index, shard_ids in enumerate(partition.cells)
                if shard.shard_id in shard_ids
            ]
            assert len(holders) == 1  # coarsening only, never splitting


def test_partition_balances_by_stream_weight():
    from repro.analysis import partition_for_workers
    from repro.analysis.shards import shard_weights

    plan, deployment = certified_plan()
    partition = partition_for_workers(plan, deployment, 2)
    weights = shard_weights(plan, deployment)
    loads = [
        sum(weights[shard_id] for shard_id in shard_ids)
        for shard_ids in partition.cells
    ]
    # LPT greedy: no cell may carry everything while another is empty.
    assert min(loads) > 0
    assert max(loads) <= sum(loads) - min(loads) or partition.cell_count == 1


def test_query_lags_never_exceed_certificate():
    from repro.analysis import partition_for_workers

    plan, deployment = certified_plan()
    certified = dict(plan.epoch_lag)
    for workers in (2, 4):
        partition = partition_for_workers(plan, deployment, workers)
        for query, lag in partition.query_lags(deployment).items():
            assert 0 <= lag <= certified[query]
