"""Paper-conformance suite: direct checks of the paper's concrete
claims, figures, and running-example assertions, in one place."""

from fractions import Fraction

import pytest

from tests.conftest import PAPER_QUERIES, make_system
from repro.predicates import ZERO, Bound
from repro.xmlkit import Path

ITEM = Path("photons/photon")
RA = ITEM / "coord/cel/ra"
DEC = ITEM / "coord/cel/dec"
EN = ITEM / "en"


class TestFigure3Properties:
    """'An abstract schematic illustration of the properties of Query 1
    ... described by a set of original input data streams, a set of
    operators ... and, for each operator, a set of conditions.'"""

    def test_q1_input_stream(self, paper_properties):
        p1 = paper_properties["Q1"]
        assert [sp.stream for sp in p1.inputs] == ["photons"]

    def test_q1_predicate_graph_structure(self, paper_properties):
        """Figure 3's graph: nodes {0, ra, dec}; edges ra→0 (138),
        0→ra (−120), dec→0 (−40), 0→dec (49)."""
        graph = paper_properties["Q1"].single_input().selection.graph
        assert set(graph.nodes) == {ZERO, RA, DEC}
        assert graph.bound(RA, ZERO) == Bound(Fraction(138))
        assert graph.bound(ZERO, RA) == Bound(Fraction(-120))
        assert graph.bound(DEC, ZERO) == Bound(Fraction(-40))
        assert graph.bound(ZERO, DEC) == Bound(Fraction(49))

    def test_q1_projection_elements_match_figure(self, paper_properties):
        projection = paper_properties["Q1"].single_input().projection
        marked = {str(p.relative_to(ITEM)) for p in projection.output_elements}
        assert marked == {"coord/cel/ra", "coord/cel/dec", "phc", "en", "det_time"}


class TestFigure4Matching:
    """'An example matching for the predicate graphs of Queries 1 and 2.'"""

    def test_q2_graph_has_en_node(self, paper_properties):
        graph = paper_properties["Q2"].single_input().selection.graph
        assert EN in graph.nodes
        assert graph.bound(ZERO, EN) == Bound(Fraction("-1.3"))

    def test_matching_direction(self, paper_properties):
        from repro.matching import match_properties

        assert match_properties(paper_properties["Q1"], paper_properties["Q2"])
        assert not match_properties(paper_properties["Q2"], paper_properties["Q1"])


class TestFigure5WindowArithmetic:
    """'∆' mod ∆ = 0, ∆ mod µ = 0, and µ' mod µ = 0' over Q3/Q4."""

    def test_conditions_hold_for_q3_q4(self, paper_properties):
        q3 = paper_properties["Q3"].single_input().aggregation.window
        q4 = paper_properties["Q4"].single_input().aggregation.window
        assert q4.size % q3.size == 0          # 60 mod 20
        assert q3.size % q3.step == 0          # 20 mod 10
        assert q4.step % q3.step == 0          # 40 mod 10

    def test_sharing_only_one_direction(self, paper_properties):
        from repro.matching import match_aggregations

        q3 = paper_properties["Q3"].single_input().aggregation
        q4 = paper_properties["Q4"].single_input().aggregation
        assert match_aggregations(q3, q4)
        assert not match_aggregations(q4, q3)


class TestSection1Narrative:
    """The Figure 1 → Figure 2 story, executed."""

    @pytest.fixture(scope="class")
    def system(self):
        system = make_system("stream-sharing")
        for name, peer in [("Q1", "P1"), ("Q2", "P2"), ("Q3", "P3"), ("Q4", "P4")]:
            system.register_query(name, PAPER_QUERIES[name], peer)
        return system

    def test_q1_computed_at_sp4_not_sp1(self, system):
        """'its execution can be pushed into the network and computed at
        SP4 instead of SP1'."""
        plan = system.results[0].plan.inputs[0]
        assert plan.placement_node == "SP4"

    def test_q1_routed_via_sp5_and_sp1(self, system):
        """'The result is then routed to P1 via SP5 and SP1.'"""
        plan = system.results[0].plan.inputs[0]
        assert plan.delivered.route == ("SP4", "SP5", "SP1")

    def test_q2_reuses_q1(self, system):
        """'it can reuse the stream constituting the answer for Query 1
        ... because the result of Query 2 is completely contained in the
        answer for Query 1'."""
        plan = system.results[1].plan.inputs[0]
        assert plan.reused_id == "Q1:photons"

    def test_q2_compensation_is_selection_and_projection(self, system):
        """'One [copy] is used to answer Query 1, the other is filtered
        using the selection and projection specified by Query 2.'"""
        plan = system.results[1].plan.inputs[0]
        assert [s.kind for s in plan.delivered.pipeline] == ["selection", "projection"]

    def test_sharing_reduces_traffic_vs_no_sharing(self, system):
        no_sharing = make_system("data-shipping")
        for name, peer in [("Q1", "P1"), ("Q2", "P2"), ("Q3", "P3"), ("Q4", "P4")]:
            no_sharing.register_query(name, PAPER_QUERIES[name], peer)
        shared = system.run(duration=30.0).total_mbit()
        shipped = no_sharing.run(duration=30.0).total_mbit()
        assert shared < shipped / 3


class TestSection2LanguageRules:
    def test_step_defaults_to_window_size(self):
        """'If omitted, the step size defaults to the value of ∆'."""
        from repro.wxquery import parse_query
        from repro.properties import extract_properties

        text = ('<r>{ for $w in stream("photons")/photons/photon |count 20| '
                "let $a := sum($w/en) return <s> { $a } </s> }</r>")
        window = extract_properties(parse_query(text), "t").single_input().aggregation.window
        assert window.step == window.size == 20

    def test_theta_excludes_not_equals(self):
        """'θ ∈ {=, <, ≤, >, ≥}' — no inequality."""
        from repro.wxquery import AnalysisError, analyze, parse_query

        with pytest.raises(AnalysisError):
            analyze(parse_query(
                '<r>{ for $p in stream("s")/a/b where $p/x != 3 return $p }</r>'
            ))

    def test_restructured_output_not_reused(self):
        """'The result of the post-processing ... is not considered for
        reuse in the network' — no installed stream carries a
        restructure operator."""
        system = make_system("stream-sharing")
        for name, peer in [("Q1", "P1"), ("Q2", "P2")]:
            system.register_query(name, PAPER_QUERIES[name], peer)
        for stream in system.deployment.streams.values():
            assert all(op.kind != "restructure" for op in stream.pipeline)
            assert all(op.kind != "restructure" for op in stream.content.operators)


class TestSection33AvgRepresentation:
    def test_avg_travels_as_sum_count(self):
        """'we internally represent such aggregates by their appropriate
        sum and count values. These values are actually transmitted in
        the super-peer network.'"""
        from repro.engine import PartialAggregate, partial_to_wire

        wire = partial_to_wire(PartialAggregate.of_values([1.0, 2.0]), "avg")
        assert {child.tag for child in wire.children} == {"sum", "count"}

    def test_final_value_computed_at_subscriber(self):
        """'The final aggregate value is computed at the super-peer at
        which the corresponding subscription is registered by evaluating
        (sum/count).'"""
        from repro.engine import PartialAggregate, Restructurer, partial_to_wire
        from repro.wxquery import analyze, parse_query

        restructurer = Restructurer(analyze(parse_query(PAPER_QUERIES["Q3"])))
        wire = partial_to_wire(PartialAggregate.of_values([1.0, 2.0, 3.0]), "avg")
        (result,) = restructurer.build(wire)
        assert result.text == "2"
