"""Unit tests for the serializers (compact and pretty forms)."""

from repro.xmlkit import Element, element, parse, pretty, serialize


class TestCompactSerializer:
    def test_empty_element(self):
        assert serialize(Element("a")) == "<a/>"

    def test_text_element(self):
        assert serialize(Element("a", text="hi")) == "<a>hi</a>"

    def test_nested(self):
        tree = element("a", Element("b"), Element("c", text="1"))
        assert serialize(tree) == "<a><b/><c>1</c></a>"

    def test_escaping(self):
        assert serialize(Element("a", text="x<y&z>w")) == "<a>x&lt;y&amp;z&gt;w</a>"

    def test_roundtrip_with_escapes(self):
        original = Element("a", text="1 < 2 & 3 > 2")
        assert parse(serialize(original)) == original


class TestPrettySerializer:
    def test_empty_element(self):
        assert pretty(Element("a")) == "<a/>"

    def test_text_inline(self):
        assert pretty(Element("a", text="1")) == "<a>1</a>"

    def test_indentation(self):
        tree = element("a", element("b", Element("c", text="1")))
        assert pretty(tree) == "<a>\n  <b>\n    <c>1</c>\n  </b>\n</a>"

    def test_custom_indent(self):
        tree = element("a", Element("b"))
        assert pretty(tree, indent="    ") == "<a>\n    <b/>\n</a>"

    def test_escaping_in_pretty(self):
        assert pretty(Element("a", text="<")) == "<a>&lt;</a>"

    def test_pretty_parses_back(self):
        tree = element(
            "photon",
            element("coord", element("cel", Element("ra", text="1.5"))),
            Element("en", text="0.8"),
        )
        assert parse(pretty(tree)) == tree
