"""Unit tests for semantic analysis."""

import pytest

from tests.conftest import PAPER_QUERIES
from repro.wxquery import AnalysisError, analyze, parse_query
from repro.xmlkit import Path


def analyzed(text):
    return analyze(parse_query(text))


class TestBindings:
    def test_stream_binding(self):
        result = analyzed('<r>{ for $p in stream("s")/root/item return $p }</r>')
        binding = result.bindings["p"]
        assert binding.stream == "s"
        assert binding.absolute_path == Path("root/item")

    def test_chained_binding_absolutized(self):
        result = analyzed(
            '<r>{ for $p in stream("s")/a/b for $q in $p/c/d return $q }</r>'
        )
        assert result.bindings["q"].absolute_path == Path("a/b/c/d")

    def test_let_binding(self):
        result = analyzed(
            '<r>{ for $w in stream("s")/a/b |count 4| let $a := sum($w/x) return $a }</r>'
        )
        binding = result.bindings["a"]
        assert binding.kind == "let"
        assert binding.aggregate == "sum"
        assert binding.absolute_path == Path("a/b/x")

    def test_undefined_variable_in_for(self):
        with pytest.raises(AnalysisError):
            analyzed('<r>{ for $q in $nope/c return $q }</r>')

    def test_undefined_variable_in_let(self):
        with pytest.raises(AnalysisError):
            analyzed('<r>{ for $w in stream("s")/a |count 2| let $a := avg($x/y) return $a }</r>')

    def test_let_requires_window(self):
        with pytest.raises(AnalysisError) as err:
            analyzed('<r>{ for $w in stream("s")/a/b let $a := avg($w/x) return $a }</r>')
        assert "window" in str(err.value)

    def test_duplicate_variable(self):
        with pytest.raises(AnalysisError):
            analyzed('<r>{ for $p in stream("s")/a for $p in stream("t")/b return $p }</r>')

    def test_self_join_rejected(self):
        with pytest.raises(AnalysisError):
            analyzed(
                '<r>{ for $p in stream("s")/a for $q in stream("s")/a return $p }</r>'
            )

    def test_doc_source_rejected(self):
        with pytest.raises(AnalysisError):
            analyzed('<r>{ for $d in doc("ref")/a return $d }</r>')

    def test_iterating_aggregate_rejected(self):
        with pytest.raises(AnalysisError):
            analyzed(
                '<r>{ for $w in stream("s")/a |count 2| let $a := avg($w/x) '
                "for $z in $a/y return $z }</r>"
            )


class TestConditionClassification:
    def test_selection_vs_aggregate_filter(self):
        result = analyzed(PAPER_QUERIES["Q4"])
        assert len(result.selection) == 4
        assert len(result.aggregate_filters) == 1
        assert result.aggregate_filters[0].left_binding.var == "a"

    def test_not_equals_rejected(self):
        with pytest.raises(AnalysisError):
            analyzed('<r>{ for $p in stream("s")/a/b where $p/x != 1 return $p }</r>')

    def test_cross_stream_join_rejected(self):
        with pytest.raises(AnalysisError):
            analyzed(
                '<r>{ for $p in stream("s")/a for $q in stream("t")/b '
                "where $p/x <= $q/y return $p }</r>"
            )

    def test_same_stream_variable_comparison_allowed(self):
        result = analyzed(
            '<r>{ for $p in stream("s")/a/b where $p/x <= $p/y + 2 return $p }</r>'
        )
        atom = result.selection[0]
        assert atom.right_path == Path("a/b/y")

    def test_aggregate_compared_to_variable_rejected(self):
        with pytest.raises(AnalysisError):
            analyzed(
                '<r>{ for $w in stream("s")/a/b |count 2| let $a := avg($w/x) '
                "where $a >= $w/y return $a }</r>"
            )

    def test_navigation_into_aggregate_rejected(self):
        with pytest.raises(AnalysisError):
            analyzed(
                '<r>{ for $w in stream("s")/a/b |count 2| let $a := avg($w/x) '
                "where $a/y >= 1 return $a }</r>"
            )

    def test_path_condition_resolved_to_binding(self):
        result = analyzed(
            '<r>{ for $w in stream("s")/a/b[x >= 1] |count 2| '
            "let $a := avg($w/x) return $a }</r>"
        )
        assert result.selection[0].left_path == Path("a/b/x")


class TestOutputs:
    def test_referenced_and_output_paths(self):
        result = analyzed(PAPER_QUERIES["Q1"])
        outputs = {str(p) for p in result.output_paths["photons"]}
        assert outputs == {
            "photons/photon/coord/cel/ra",
            "photons/photon/coord/cel/dec",
            "photons/photon/phc",
            "photons/photon/en",
            "photons/photon/det_time",
        }
        assert result.referenced_paths["photons"] >= result.output_paths["photons"]

    def test_whole_item_output(self):
        result = analyzed('<r>{ for $p in stream("s")/a/b return $p }</r>')
        assert Path("a/b") in result.output_paths["s"]

    def test_undefined_output_variable(self):
        with pytest.raises(AnalysisError):
            analyzed('<r>{ for $p in stream("s")/a return $zzz }</r>')

    def test_nested_flwr_rejected(self):
        with pytest.raises(AnalysisError):
            analyzed(
                '<r>{ for $p in stream("s")/a/b return '
                '<x>{ for $q in $p/c return $q }</x> }</r>'
            )

    def test_no_flwr_rejected(self):
        with pytest.raises(AnalysisError):
            analyzed("<r/>")

    def test_multiple_top_level_flwrs_rejected(self):
        with pytest.raises(AnalysisError):
            analyzed(
                '<r>{ for $p in stream("s")/a return $p }'
                '{ for $q in stream("t")/b return $q }</r>'
            )


class TestStreamLists:
    def test_single_stream(self):
        result = analyzed(PAPER_QUERIES["Q3"])
        assert result.streams() == ["photons"]

    def test_two_streams(self):
        result = analyzed(
            '<r>{ for $p in stream("s")/a/b for $q in stream("t")/c/d '
            "return ($p, $q) }</r>"
        )
        assert result.streams() == ["s", "t"]
        assert result.binding_for_stream("t").var == "q"

    def test_binding_for_unknown_stream(self):
        result = analyzed('<r>{ for $p in stream("s")/a/b return $p }</r>')
        with pytest.raises(AnalysisError):
            result.binding_for_stream("other")
