"""Unit tests for predicate graphs: satisfiability, closure, minimization."""

from fractions import Fraction

import pytest

from repro.predicates import (
    ZERO,
    Bound,
    PredicateGraph,
    UnsatisfiableError,
    graph_from_atoms,
    normalize_comparison,
)
from repro.xmlkit import Path

A = Path("s/i/a")
B = Path("s/i/b")
C = Path("s/i/c")


def F(value):
    return Fraction(str(value))


def atoms(*specs):
    out = []
    for left, op, right, const in specs:
        out.extend(normalize_comparison(left, op, right, F(const)))
    return out


class TestConstruction:
    def test_parallel_edges_keep_tightest(self):
        graph = PredicateGraph(atoms((A, "<=", None, 5), (A, "<=", None, 3)))
        assert graph.bound(A, ZERO) == Bound(F(3))
        assert len(graph) == 1

    def test_trivial_self_edge_dropped(self):
        graph = PredicateGraph(atoms((A, "<=", A, 0)))
        assert graph.is_empty()

    def test_contradictory_self_edge_rejected(self):
        with pytest.raises(UnsatisfiableError):
            PredicateGraph(atoms((A, "<", A, 0)))

    def test_describe(self):
        graph = PredicateGraph(atoms((A, ">=", None, 1)))
        assert "s/i/a >= 1" in graph.describe()
        assert PredicateGraph().describe() == "true"

    def test_edges_at(self):
        graph = PredicateGraph(atoms((A, "<=", None, 5), (B, "<=", None, 2)))
        assert len(graph.edges_at(A)) == 1
        assert len(graph.edges_at(ZERO)) == 2


class TestSatisfiability:
    def test_empty_is_satisfiable(self):
        assert PredicateGraph().is_satisfiable()

    def test_simple_range(self):
        graph = PredicateGraph(atoms((A, ">=", None, 1), (A, "<=", None, 5)))
        assert graph.is_satisfiable()

    def test_empty_range_rejected(self):
        graph = PredicateGraph(atoms((A, ">=", None, 5), (A, "<=", None, 1)))
        assert not graph.is_satisfiable()
        with pytest.raises(UnsatisfiableError):
            graph.check_satisfiable()

    def test_boundary_is_satisfiable(self):
        graph = PredicateGraph(atoms((A, ">=", None, 5), (A, "<=", None, 5)))
        assert graph.is_satisfiable()

    def test_strict_boundary_unsatisfiable(self):
        graph = PredicateGraph(atoms((A, ">", None, 5), (A, "<=", None, 5)))
        assert not graph.is_satisfiable()

    def test_transitive_contradiction(self):
        # a <= b, b <= c, c <= a - 1 is a negative cycle.
        graph = PredicateGraph(
            atoms((A, "<=", B, 0), (B, "<=", C, 0), (C, "<=", A, -1))
        )
        assert not graph.is_satisfiable()

    def test_equality_cycle_satisfiable(self):
        graph = PredicateGraph(atoms((A, "=", B, 0), (B, "=", C, 0), (C, "=", A, 0)))
        assert graph.is_satisfiable()


class TestClosure:
    def test_derives_transitive_bound(self):
        graph = PredicateGraph(atoms((A, "<=", B, 2), (B, "<=", None, 5)))
        closure = graph.closure()
        assert closure[(A, ZERO)] == Bound(F(7))

    def test_strictness_propagates(self):
        graph = PredicateGraph(atoms((A, "<", B, 0), (B, "<=", None, 5)))
        assert graph.closure()[(A, ZERO)] == Bound(F(5), True)

    def test_derived_interval(self):
        graph = PredicateGraph(
            atoms((A, "<=", B, 0), (B, "<=", None, 5), (A, ">=", None, 1))
        )
        assert graph.derived_interval(A) == (F(1), F(5))
        assert graph.derived_interval(B) == (F(1), F(5))  # b >= a >= 1

    def test_unbounded_side(self):
        graph = PredicateGraph(atoms((A, ">=", None, 1)))
        assert graph.derived_interval(A) == (F(1), None)


class TestMinimization:
    def test_redundant_bound_dropped(self):
        graph = PredicateGraph(atoms((A, "<=", None, 3), (A, "<=", None, 5)))
        assert len(graph.minimized()) == 1

    def test_transitively_redundant_edge_dropped(self):
        # a <= b, b <= 5 make a <= 9 redundant.
        graph = PredicateGraph(
            atoms((A, "<=", B, 0), (B, "<=", None, 5), (A, "<=", None, 9))
        )
        minimized = graph.minimized()
        assert minimized.bound(A, ZERO) is None
        assert len(minimized) == 2

    def test_tighter_direct_bound_kept(self):
        graph = PredicateGraph(
            atoms((A, "<=", B, 0), (B, "<=", None, 5), (A, "<=", None, 3))
        )
        assert graph.minimized().bound(A, ZERO) == Bound(F(3))

    def test_equality_cycle_preserves_information(self):
        graph = PredicateGraph(atoms((A, "=", B, 0), (B, "=", C, 0), (C, "=", A, 0)))
        minimized = graph.minimized()
        closure = minimized.closure()
        assert closure[(A, C)] == Bound(F(0))
        assert closure[(C, A)] == Bound(F(0))

    def test_minimization_preserves_closure(self):
        graph = PredicateGraph(
            atoms(
                (A, ">=", None, 1),
                (A, "<=", None, 5),
                (A, "<=", B, 0),
                (B, "<=", None, 5),
                (A, "<=", None, 9),
            )
        )
        original = graph.closure()
        minimized = graph.minimized().closure()
        for key, bound in minimized.items():
            assert original[key] == bound
        for key, bound in original.items():
            assert minimized[key] == bound

    def test_graph_from_atoms_pipeline(self):
        graph = graph_from_atoms(atoms((A, ">=", None, 1), (A, ">=", None, 0)))
        assert len(graph) == 1
        with pytest.raises(UnsatisfiableError):
            graph_from_atoms(atoms((A, ">", None, 1), (A, "<", None, 1)))

    def test_isolated_nodes_preserved(self):
        graph = PredicateGraph(atoms((A, "<=", None, 5), (A, "<=", None, 9)))
        assert set(graph.minimized().nodes) == set(graph.nodes)
