"""Unit tests for MatchPredicates (Algorithm 3, Figure 4)."""

from fractions import Fraction

import pytest

from repro.predicates import PredicateGraph, match_predicates, normalize_comparison
from repro.xmlkit import Path

RA = Path("photons/photon/coord/cel/ra")
DEC = Path("photons/photon/coord/cel/dec")
EN = Path("photons/photon/en")
A = Path("s/i/a")
B = Path("s/i/b")


def graph(*specs):
    atoms = []
    for left, op, right, const in specs:
        atoms.extend(normalize_comparison(left, op, right, Fraction(str(const))))
    return PredicateGraph(atoms)


#: Query 1's selection (the stream considered for reuse).
G_Q1 = graph(
    (RA, ">=", None, "120.0"),
    (RA, "<=", None, "138.0"),
    (DEC, ">=", None, "-49.0"),
    (DEC, "<=", None, "-40.0"),
)

#: Query 2's selection (the new subscription).
G_Q2 = graph(
    (EN, ">=", None, "1.3"),
    (RA, ">=", None, "130.5"),
    (RA, "<=", None, "135.5"),
    (DEC, ">=", None, "-48.0"),
    (DEC, "<=", None, "-45.0"),
)


class TestPaperFigure4:
    """The matching example of Figure 4: G(Q1) matched by G'(Q2)."""

    @pytest.mark.parametrize("mode", ["edgewise", "closure"])
    def test_q2_implies_q1(self, mode):
        assert match_predicates(G_Q1, G_Q2, mode)

    @pytest.mark.parametrize("mode", ["edgewise", "closure"])
    def test_q1_does_not_imply_q2(self, mode):
        assert not match_predicates(G_Q2, G_Q1, mode)


class TestEdgewise:
    def test_empty_stream_graph_always_matches(self):
        assert match_predicates(PredicateGraph(), G_Q2)

    def test_empty_subscription_never_matches_nonempty(self):
        assert not match_predicates(G_Q1, PredicateGraph())

    def test_identical_graphs_match(self):
        assert match_predicates(G_Q1, G_Q1)

    def test_missing_node_fails(self):
        needs_en = graph((EN, ">=", None, 1))
        lacks_en = graph((RA, ">=", None, 120))
        assert not match_predicates(needs_en, lacks_en)

    def test_looser_subscription_bound_fails(self):
        stream = graph((RA, "<=", None, 130))
        subscription = graph((RA, "<=", None, 135))
        assert not match_predicates(stream, subscription)

    def test_equal_bound_matches(self):
        stream = graph((RA, "<=", None, 130))
        assert match_predicates(stream, graph((RA, "<=", None, 130)))

    def test_strictness_direction(self):
        non_strict = graph((RA, "<=", None, 130))
        strict = graph((RA, "<", None, 130))
        assert match_predicates(non_strict, strict)   # ra < 130 ⇒ ra <= 130
        assert not match_predicates(strict, non_strict)

    def test_wrong_orientation_fails(self):
        stream = graph((A, "<=", B, 0))
        subscription = graph((B, "<=", A, 0))
        assert not match_predicates(stream, subscription)

    def test_variable_edge_matches(self):
        stream = graph((A, "<=", B, 5))
        subscription = graph((A, "<=", B, 2))
        assert match_predicates(stream, subscription)
        assert not match_predicates(subscription, stream)

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            match_predicates(G_Q1, G_Q2, mode="telepathy")


class TestClosureCompleteness:
    def test_derived_implication_found_only_by_closure(self):
        # G: a <= 7.  G': a <= b and b <= 5, which *derives* a <= 5.
        stream = graph((A, "<=", None, 7))
        subscription = graph((A, "<=", B, 0), (B, "<=", None, 5))
        assert not match_predicates(stream, subscription, "edgewise")
        assert match_predicates(stream, subscription, "closure")

    def test_closure_still_sound(self):
        stream = graph((A, "<=", None, 4))
        subscription = graph((A, "<=", B, 0), (B, "<=", None, 5))
        assert not match_predicates(stream, subscription, "closure")
