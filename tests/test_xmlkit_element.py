"""Unit tests for the XML element model."""

import pytest

from repro.xmlkit import Element, element, serialize
from repro.xmlkit.element import _coerce_text


class TestConstruction:
    def test_plain_element(self):
        node = Element("photon")
        assert node.tag == "photon"
        assert node.text is None
        assert node.children == []

    def test_text_element(self):
        assert Element("en", text="1.5").text == "1.5"

    def test_int_text_canonicalized(self):
        assert Element("phc", text=42).text == "42"

    def test_float_text_roundtrips(self):
        node = Element("ra", text=130.4567)
        assert float(node.text) == 130.4567

    def test_bool_text_rejected(self):
        with pytest.raises(TypeError):
            Element("flag", text=True)

    def test_invalid_tag_rejected(self):
        for bad in ("", "a b", "a<b", "a&b", "a/b", 'a"b'):
            with pytest.raises(ValueError):
                Element(bad)

    def test_mixed_content_rejected(self):
        with pytest.raises(ValueError):
            Element("x", text="t", children=[Element("y")])

    def test_append_to_text_element_rejected(self):
        node = Element("x", text="t")
        with pytest.raises(ValueError):
            node.append(Element("y"))

    def test_element_constructor_helper(self):
        node = element("a", element("b"), element("c"))
        assert [c.tag for c in node.children] == ["b", "c"]

    def test_coerce_unsupported_type(self):
        with pytest.raises(TypeError):
            _coerce_text(object())


class TestNavigation:
    @pytest.fixture()
    def tree(self):
        return element(
            "photon",
            element("coord", element("cel", element("ra", text=130.0), element("dec", text=-45.0))),
            element("en", text=1.2),
        )

    def test_child(self, tree):
        assert tree.child("en").text == "1.2"
        assert tree.child("missing") is None

    def test_find(self, tree):
        assert tree.find(["coord", "cel", "ra"]).text == "130.0"
        assert tree.find(["coord", "det"]) is None
        assert tree.find([]) is tree

    def test_find_all(self, tree):
        assert len(tree.find_all(["coord", "cel", "ra"])) == 1
        assert tree.find_all(["nope"]) == []

    def test_find_all_multiple_occurrences(self):
        tree = element("r", element("x", text=1), element("x", text=2))
        assert [e.text for e in tree.find_all(["x"])] == ["1", "2"]

    def test_value_and_number(self, tree):
        assert tree.value(["en"]) == "1.2"
        assert tree.number(["en"]) == 1.2
        assert tree.number(["coord"]) is None  # no text
        assert tree.number(["missing"]) is None

    def test_number_non_numeric(self):
        assert element("r", element("x", text="abc")).number(["x"]) is None

    def test_iter_preorder(self, tree):
        tags = [node.tag for node in tree.iter()]
        assert tags == ["photon", "coord", "cel", "ra", "dec", "en"]


class TestSizeAccounting:
    def test_empty_element(self):
        assert Element("ab").serialized_size() == len("<ab/>")

    def test_text_element(self):
        node = Element("en", text="1.5")
        assert node.serialized_size() == len("<en>1.5</en>")

    def test_escaped_text_counted(self):
        node = Element("t", text="a<b&c")
        assert node.serialized_size() == len("<t>a&lt;b&amp;c</t>")

    def test_matches_serializer(self, photon_sample):
        for item in photon_sample[:50]:
            assert item.serialized_size() == len(serialize(item).encode("utf-8"))

    def test_unicode_counted_in_bytes(self):
        node = Element("t", text="π")
        assert node.serialized_size() == len("<t>π</t>".encode("utf-8"))


class TestValueSemantics:
    def test_equality(self):
        a = element("x", element("y", text=1))
        b = element("x", element("y", text=1))
        assert a == b and hash(a) == hash(b)

    def test_inequality(self):
        assert element("x") != element("y")
        assert element("x", element("y")) != element("x")
        assert Element("x", text="1") != Element("x", text="2")

    def test_copy_is_deep(self):
        original = element("x", element("y", text=1))
        clone = original.copy()
        assert clone == original
        clone.children[0].children.append(Element("z"))
        assert clone != original

    def test_repr_forms(self):
        assert "text" in repr(Element("x", text="1"))
        assert "children" in repr(element("x", element("y")))
        assert repr(Element("x")) == "Element('x')"
