"""Tests for the structural element diff."""

import pytest

from repro.xmlkit import Element, element
from repro.xmlkit.diff import assert_elements_equal, diff_elements, first_difference


def photon(en="1.5", extra=False):
    children = [
        element("coord", element("cel", Element("ra", text="130.0"))),
        Element("en", text=en),
    ]
    if extra:
        children.append(Element("flag"))
    return Element("photon", children=children)


class TestDiffElements:
    def test_equal_trees(self):
        assert diff_elements(photon(), photon()) == []
        assert first_difference(photon(), photon()) == "equal"

    def test_tag_difference_short_circuits(self):
        diffs = diff_elements(Element("a"), Element("b"))
        assert len(diffs) == 1
        assert "tag" in diffs[0].reason

    def test_text_difference_addressed(self):
        diffs = diff_elements(photon("1.5"), photon("2.0"))
        (diff,) = diffs
        assert diff.path == "photon/en[1]"
        assert "'1.5'" in diff.reason and "'2.0'" in diff.reason

    def test_missing_child(self):
        diffs = diff_elements(photon(extra=True), photon())
        (diff,) = diffs
        assert diff.path == "photon/flag[2]"
        assert diff.reason == "missing from actual"

    def test_unexpected_child(self):
        diffs = diff_elements(photon(), photon(extra=True))
        (diff,) = diffs
        assert diff.reason == "unexpected in actual"

    def test_nested_difference_path(self):
        left = photon()
        right = photon()
        right.children[0].children[0].children[0].text = "99.0"
        (diff,) = diff_elements(left, right)
        assert diff.path == "photon/coord[0]/cel[0]/ra[0]"

    def test_multiple_differences_all_reported(self):
        left = element("r", Element("a", text="1"), Element("b", text="2"))
        right = element("r", Element("a", text="9"), Element("b", text="8"))
        assert len(diff_elements(left, right)) == 2


class TestAssertHelper:
    def test_passes_on_equal(self):
        assert_elements_equal(photon(), photon())

    def test_raises_with_listing(self):
        with pytest.raises(AssertionError) as error:
            assert_elements_equal(photon("1.5"), photon("2.0"))
        assert "photon/en[1]" in str(error.value)

    def test_diff_agrees_with_equality(self):
        """diff is empty exactly when == holds (spot-checked)."""
        from repro.workload.photons import PhotonGenerator, PhotonStreamConfig

        items = PhotonGenerator(PhotonStreamConfig(seed=3)).take(10)
        for first in items[:3]:
            for second in items[:3]:
                assert (diff_elements(first, second) == []) == (first == second)
