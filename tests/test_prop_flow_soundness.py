"""Property test: flow-analysis bounds contain measured stream counts.

The F4xx abstract interpreter promises (see ``repro.analysis.flow``)
that over any run of virtual duration ``D``, every stream with derived
:class:`~repro.analysis.FlowFacts` produces a number of items inside
``count_bounds(D)``.  This test checks that soundness claim against the
ground truth: :meth:`StreamSimulator.stream_counts` measured on the
paper's benchmark scenarios (1, 2, and the grid).
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import derive_stream_facts
from repro.engine import StreamSimulator
from repro.workload.scenarios import scenario_grid, scenario_one, scenario_two

_SYSTEMS = {}


def _system(key):
    """Scenario systems are expensive; register each workload once."""
    if key not in _SYSTEMS:
        from repro.sharing import StreamGlobe

        scenario = {
            "1": scenario_one,
            "2": scenario_two,
            "grid": lambda: scenario_grid(rows=3, cols=3, query_count=12),
        }[key]()
        system = StreamGlobe(scenario.build_network(), strategy="stream-sharing")
        for source in scenario.sources:
            system.register_stream(
                source.name,
                "photons/photon",
                source.generator_factory(),
                frequency=source.frequency,
                source_peer=source.source_peer,
            )
        for spec in scenario.queries:
            system.register_query(spec.name, spec.text, spec.subscriber_peer)
        _SYSTEMS[key] = (system, derive_stream_facts(system.deployment, system.catalog))
    return _SYSTEMS[key]


@settings(max_examples=20, deadline=None)
@given(
    key=st.sampled_from(["1", "2", "grid"]),
    duration=st.floats(min_value=0.25, max_value=6.0, allow_nan=False),
)
def test_measured_counts_fall_inside_derived_bounds(key, duration):
    system, facts = _system(key)
    # Facts cover every installed stream of these scenarios.
    assert set(facts) == set(system.deployment.streams)
    generators = {
        name: source.generator_factory() for name, source in system.sources.items()
    }
    simulator = StreamSimulator(system.net, system.deployment, generators, duration)
    simulator.run()
    counts = simulator.stream_counts()
    for stream_id, measured in counts.items():
        lo, hi = facts[stream_id].count_bounds(duration)
        assert lo <= measured <= hi, (
            f"{key}: stream {stream_id} produced {measured} items over "
            f"{duration:.3f}s, outside [{lo}, {hi}]"
        )


def test_stream_counts_requires_a_run():
    from repro.engine.executor import ExecutionError

    system, _ = _system("1")
    generators = {
        name: source.generator_factory() for name, source in system.sources.items()
    }
    simulator = StreamSimulator(system.net, system.deployment, generators, 1.0)
    with pytest.raises(ExecutionError):
        simulator.stream_counts()
