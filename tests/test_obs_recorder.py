"""Unit tests for the instrumentation core (repro.obs.recorder)."""

import time

import pytest

from repro.obs import NULL_RECORDER, NullRecorder, Recorder, default_recorder
from repro.obs.recorder import (
    EPOCH_ENV_VAR,
    HISTOGRAM_BUCKETS,
    TRACE_ENV_VAR,
    Histogram,
)
from repro.obs.timeseries import EpochSnapshot


class TestHistogram:
    def test_observe_accumulates(self):
        hist = Histogram()
        for value in (0.001, 0.002, 0.5):
            hist.observe(value)
        assert hist.count == 3
        assert hist.total == pytest.approx(0.503)
        assert hist.min == pytest.approx(0.001)
        assert hist.max == pytest.approx(0.5)
        assert hist.mean() == pytest.approx(0.503 / 3)

    def test_bucket_placement(self):
        hist = Histogram()
        hist.observe(5e-8)  # below the smallest bound
        hist.observe(0.5)   # between 0.1 and 1
        hist.observe(1e9)   # beyond the largest bound -> overflow bucket
        assert hist.buckets[0] == 1
        assert hist.buckets[HISTOGRAM_BUCKETS.index(1.0)] == 1
        assert hist.buckets[-1] == 1
        assert sum(hist.buckets) == hist.count

    def test_empty_to_dict_has_no_infinities(self):
        data = Histogram().to_dict()
        assert data["min"] == 0.0 and data["max"] == 0.0
        assert data["count"] == 0 and data["mean"] == 0.0


class TestRecorderScalars:
    def test_counters_and_gauges(self):
        recorder = Recorder()
        recorder.inc("cache.route.hits")
        recorder.inc("cache.route.hits", 2)
        recorder.set_gauge("exec.peak_live_items", 42)
        assert recorder.counters["cache.route.hits"] == 3
        assert recorder.gauges["exec.peak_live_items"] == 42

    def test_observe_creates_named_histograms(self):
        recorder = Recorder()
        recorder.observe("op.select.batch_s", 0.01)
        recorder.observe("op.select.batch_s", 0.02)
        assert recorder.histograms["op.select.batch_s"].count == 2

    def test_events_are_time_stamped(self):
        recorder = Recorder()
        recorder.event("fault.applied", fault="SP1 crashes")
        (event,) = recorder.events
        assert event["name"] == "fault.applied"
        assert event["fields"] == {"fault": "SP1 crashes"}
        assert event["t"] >= 0.0

    def test_add_epoch_stamps_wall_time(self):
        recorder = Recorder()
        snapshot = EpochSnapshot(index=0, t_start=0.0, t_end=1.0)
        recorder.add_epoch(snapshot)
        assert recorder.epochs == [snapshot]
        assert snapshot.wall_s >= 0.0


class TestSpans:
    def test_nesting_assigns_parents(self):
        recorder = Recorder()
        with recorder.span("register", query="Q1") as outer:
            with recorder.span("parse") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        # Completion order: inner closed first.
        assert [s.name for s in recorder.spans] == ["parse", "register"]

    def test_attrs_and_set(self):
        recorder = Recorder()
        with recorder.span("register", query="Q1") as span:
            span.set(accepted=True)
        assert span.attrs == {"query": "Q1", "accepted": True}
        assert span.end_s >= span.start_s

    def test_exception_records_error_and_propagates(self):
        recorder = Recorder()
        with pytest.raises(ValueError):
            with recorder.span("plan") as span:
                raise ValueError("boom")
        assert span.attrs["error"] == "ValueError: boom"
        assert span.end_s is not None
        assert recorder._open == []

    def test_exception_unwinds_nested_open_spans(self):
        recorder = Recorder()
        with pytest.raises(RuntimeError):
            with recorder.span("register"):
                recorder.span("plan")  # left open deliberately
                raise RuntimeError("unwound")
        assert recorder._open == []

    def test_span_totals_aggregates_by_name(self):
        recorder = Recorder()
        for _ in range(3):
            with recorder.span("search"):
                pass
        totals = recorder.span_totals()
        assert totals["search"]["count"] == 3
        assert totals["search"]["total_s"] >= totals["search"]["max_s"]


class TestNullRecorder:
    def test_disabled_and_inert(self):
        assert NULL_RECORDER.enabled is False
        assert isinstance(NULL_RECORDER, NullRecorder)
        NULL_RECORDER.inc("x")
        NULL_RECORDER.set_gauge("g", 1.0)
        NULL_RECORDER.observe("h", 0.5)
        NULL_RECORDER.event("e", a=1)
        NULL_RECORDER.add_epoch(object())

    def test_span_is_the_shared_noop(self):
        with NULL_RECORDER.span("register", query="Q1") as span:
            span.set(accepted=True)
        assert span is NULL_RECORDER.span("anything")


class TestDefaultRecorder:
    def test_null_unless_env_set(self, monkeypatch):
        monkeypatch.delenv(TRACE_ENV_VAR, raising=False)
        assert default_recorder() is NULL_RECORDER

    def test_env_yields_fresh_recorders(self, monkeypatch):
        monkeypatch.setenv(TRACE_ENV_VAR, "1")
        first, second = default_recorder(), default_recorder()
        assert first.enabled and second.enabled
        assert first is not second  # per-system ownership


class TestEpochPin:
    """Satellite (PR 8): ``REPRO_OBS_EPOCH`` pins ``created_unix`` so
    exports diff byte-stable across runs (tests and CI set it to 0)."""

    def test_unset_uses_wall_clock(self, monkeypatch):
        monkeypatch.delenv(EPOCH_ENV_VAR, raising=False)
        before = time.time()
        recorder = Recorder()
        assert before <= recorder.created_unix <= time.time()

    def test_pinned_value_is_used_verbatim(self, monkeypatch):
        monkeypatch.setenv(EPOCH_ENV_VAR, "0")
        assert Recorder().created_unix == 0.0
        monkeypatch.setenv(EPOCH_ENV_VAR, "1234.5")
        assert Recorder().created_unix == 1234.5

    def test_empty_value_falls_back_to_wall_clock(self, monkeypatch):
        monkeypatch.setenv(EPOCH_ENV_VAR, "")
        assert Recorder().created_unix > 1_000_000.0

    def test_garbage_value_raises(self, monkeypatch):
        monkeypatch.setenv(EPOCH_ENV_VAR, "yesterday")
        with pytest.raises(ValueError, match=EPOCH_ENV_VAR):
            Recorder()

    def test_pin_makes_exports_byte_stable(self, monkeypatch, tmp_path):
        from repro.obs import write_jsonl

        monkeypatch.setenv(EPOCH_ENV_VAR, "0")
        paths = []
        for run in range(2):
            recorder = Recorder()
            recorder.inc("cache.hits", 3)
            path = tmp_path / f"run{run}.jsonl"
            write_jsonl(recorder, str(path))
            paths.append(path.read_bytes())
        assert paths[0] == paths[1]
