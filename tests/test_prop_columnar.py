"""Property test: tree and columnar evaluation are observationally equal.

For random photon batches — including irregular documents (missing
paths, extra children) that force the whole-batch tree fallback — a
pipeline run under ``REPRO_COLUMNAR=on`` must produce byte-identical
outputs and identical per-stage ``input_counts`` to the same pipeline
run under ``REPRO_COLUMNAR=off`` (see DESIGN.md §14).
"""

import os
from contextlib import contextmanager
from fractions import Fraction

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Pipeline
from repro.predicates import PredicateGraph, normalize_comparison
from repro.properties import AggregationSpec, ProjectionSpec, SelectionSpec, WindowSpec
from repro.xmlkit import Path, element
from repro.xmlkit.serializer import serialize

ITEM = Path("photons/photon")
RA = ITEM / "coord/cel/ra"
EN = ITEM / "en"
TIME = ITEM / "det_time"

finite = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)

# A row is (ra, en, det_time, variant).  Variant 0 is the regular
# photon shape; 1 drops the selected path, 2 adds an extra child —
# either irregularity must force the encoder's whole-batch fallback.
rows = st.lists(
    st.tuples(finite, finite, finite, st.integers(min_value=0, max_value=2)),
    min_size=0,
    max_size=40,
)


def photon(ra, en, t, variant):
    children = [
        element("coord", element("cel", element("ra", text=ra))),
        element("en", text=en),
        element("det_time", text=t),
    ]
    if variant == 1:
        children = children[1:]  # no coord/cel/ra: selection path missing
    elif variant == 2:
        children.append(element("flag", text=1))
    return element("photon", *children).freeze()


def graph(path, op, const):
    return PredicateGraph(
        normalize_comparison(path, op, None, Fraction(str(const)))
    )


def pipelines():
    select_project = [
        SelectionSpec(graph(RA, ">=", "0.0")),
        ProjectionSpec(frozenset({RA, EN}), frozenset({RA, EN})),
    ]
    aggregate = [
        AggregationSpec(
            function="avg",
            aggregated_path=EN,
            window=WindowSpec("diff", Fraction(10), Fraction(5), TIME),
            pre_selection=graph(EN, ">=", "-1000.0"),
            result_filter=PredicateGraph(),
        )
    ]
    return {"select_project": select_project, "aggregate": aggregate}


@contextmanager
def columnar_env(mode):
    prior = os.environ.get("REPRO_COLUMNAR")
    os.environ["REPRO_COLUMNAR"] = mode
    try:
        yield
    finally:
        if prior is None:
            del os.environ["REPRO_COLUMNAR"]
        else:
            os.environ["REPRO_COLUMNAR"] = prior


def run(specs, batches, mode):
    with columnar_env(mode):
        pipeline = Pipeline.from_specs(specs, ITEM)
        outputs = []
        for batch in batches:
            outputs.extend(
                serialize(out) for out in pipeline.process_batch(list(batch))
            )
    return outputs, list(pipeline.input_counts)


@settings(max_examples=40, deadline=None)
@given(data=rows, name=st.sampled_from(["select_project", "aggregate"]))
def test_tree_vs_columnar_identity(data, name):
    if name == "aggregate":
        # Time-based windows require a det_time-sorted stream.
        data = sorted(data, key=lambda row: row[2])
    items = [photon(*row) for row in data]
    # Two batches so stateful (window) operators cross a batch boundary;
    # det_time order within the stream is whatever hypothesis drew.
    half = len(items) // 2
    batches = [items[:half], items[half:]]
    specs = pipelines()[name]
    tree_out, tree_counts = run(specs, batches, "off")
    cols_out, cols_counts = run(specs, batches, "on")
    assert cols_out == tree_out
    assert cols_counts == tree_counts


@settings(max_examples=25, deadline=None)
@given(data=rows)
def test_auto_mode_matches_off(data):
    items = [photon(*row) for row in data]
    specs = pipelines()["select_project"]
    tree_out, tree_counts = run(specs, [items], "off")
    auto_out, auto_counts = run(specs, [items], "auto")
    assert auto_out == tree_out
    assert auto_counts == tree_counts
