"""Unit tests for bounds and normalization."""

from fractions import Fraction

import pytest

from repro.predicates import (
    ZERO,
    Bound,
    NormalizationError,
    interval_of,
    normalize_comparison,
)
from repro.xmlkit import Path

X = Path("s/i/x")
Y = Path("s/i/y")


def F(value):
    return Fraction(str(value))


class TestBound:
    def test_addition(self):
        assert Bound(F(2)) + Bound(F(3)) == Bound(F(5))

    def test_addition_propagates_strictness(self):
        assert (Bound(F(2), True) + Bound(F(3))).strict is True
        assert (Bound(F(2)) + Bound(F(3))).strict is False

    def test_tightness_order_by_value(self):
        assert Bound(F(3)) < Bound(F(5))
        assert not Bound(F(5)) < Bound(F(3))

    def test_strict_is_tighter_at_equal_value(self):
        assert Bound(F(3), True) < Bound(F(3), False)
        assert Bound(F(3), True) <= Bound(F(3), True)

    def test_implication(self):
        # v <= 3 implies v <= 5
        assert Bound(F(3)).implies(Bound(F(5)))
        # v < 3 implies v <= 3
        assert Bound(F(3), True).implies(Bound(F(3)))
        # v <= 3 does NOT imply v < 3
        assert not Bound(F(3)).implies(Bound(F(3), True))

    def test_infeasible_cycles(self):
        assert Bound(F(-1)).is_infeasible_cycle()
        assert Bound(F(0), True).is_infeasible_cycle()
        assert not Bound(F(0)).is_infeasible_cycle()
        assert not Bound(F(1)).is_infeasible_cycle()


class TestNormalization:
    def test_upper_bound(self):
        (atom,) = normalize_comparison(X, "<=", None, F(5))
        assert (atom.source, atom.target) == (X, ZERO)
        assert atom.bound == Bound(F(5))

    def test_strict_upper_bound(self):
        (atom,) = normalize_comparison(X, "<", None, F(5))
        assert atom.bound == Bound(F(5), True)

    def test_lower_bound(self):
        (atom,) = normalize_comparison(X, ">=", None, F(5))
        assert (atom.source, atom.target) == (ZERO, X)
        assert atom.bound == Bound(F(-5))

    def test_strict_lower_bound(self):
        (atom,) = normalize_comparison(X, ">", None, F(5))
        assert atom.bound == Bound(F(-5), True)

    def test_equality_creates_two_atoms(self):
        atoms = normalize_comparison(X, "=", None, F(5))
        assert len(atoms) == 2
        directions = {(a.source, a.target) for a in atoms}
        assert directions == {(X, ZERO), (ZERO, X)}

    def test_variable_comparison(self):
        (atom,) = normalize_comparison(X, "<=", Y, F(3))
        assert (atom.source, atom.target) == (X, Y)
        assert atom.bound == Bound(F(3))

    def test_variable_ge_swaps_direction(self):
        (atom,) = normalize_comparison(X, ">=", Y, F(3))
        assert (atom.source, atom.target) == (Y, X)
        assert atom.bound == Bound(F(-3))

    def test_unknown_operator(self):
        with pytest.raises(NormalizationError):
            normalize_comparison(X, "!=", None, F(1))


class TestIntervalOf:
    def test_bounds_recovered(self):
        atoms = normalize_comparison(X, ">=", None, F(1)) + normalize_comparison(
            X, "<=", None, F(5)
        )
        lower, upper = interval_of(atoms, X)
        assert lower.value == F(1)
        assert upper.value == F(5)

    def test_tightest_kept(self):
        atoms = (
            normalize_comparison(X, "<=", None, F(5))
            + normalize_comparison(X, "<=", None, F(3))
            + normalize_comparison(X, ">=", None, F(0))
            + normalize_comparison(X, ">", None, F(0))
        )
        lower, upper = interval_of(atoms, X)
        assert upper.value == F(3)
        assert lower.strict is True

    def test_unconstrained(self):
        assert interval_of([], X) == (None, None)
