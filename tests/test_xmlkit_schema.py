"""Unit tests for schemas and the photon DTD."""

import pytest

from repro.xmlkit import PHOTON_SCHEMA, Path, Schema, SchemaNode, XmlSchemaError, element


class TestPhotonSchema:
    def test_paths_match_the_paper_dtd(self):
        paths = {str(p) for p in PHOTON_SCHEMA.paths()}
        assert paths == {
            "phc",
            "coord",
            "coord/cel",
            "coord/cel/ra",
            "coord/cel/dec",
            "coord/det",
            "coord/det/dx",
            "coord/det/dy",
            "en",
            "det_time",
        }

    def test_leaf_paths(self):
        leaves = {str(p) for p in PHOTON_SCHEMA.leaf_paths()}
        assert leaves == {
            "phc",
            "coord/cel/ra",
            "coord/cel/dec",
            "coord/det/dx",
            "coord/det/dy",
            "en",
            "det_time",
        }

    def test_subtree_leaves(self):
        leaves = {str(p) for p in PHOTON_SCHEMA.subtree_leaves(Path("coord/cel"))}
        assert leaves == {"coord/cel/ra", "coord/cel/dec"}

    def test_node_lookup(self):
        assert PHOTON_SCHEMA.node_at(Path("en")).value_type == "decimal"
        assert PHOTON_SCHEMA.node_at(Path("phc")).value_type == "int"
        with pytest.raises(XmlSchemaError):
            PHOTON_SCHEMA.node_at(Path("nope"))

    def test_has_path(self):
        assert PHOTON_SCHEMA.has_path(Path("coord/det/dx"))
        assert not PHOTON_SCHEMA.has_path(Path("coord/x"))

    def test_generated_photons_validate(self, photon_sample):
        for item in photon_sample[:50]:
            PHOTON_SCHEMA.validate(item)


class TestValidation:
    @pytest.fixture()
    def schema(self):
        return Schema(
            root=SchemaNode(
                "item",
                children=(
                    SchemaNode("n", value_type="int"),
                    SchemaNode("wrap", children=(SchemaNode("s", value_type="string"),)),
                ),
            ),
            stream_tag="items",
        )

    def test_valid(self, schema):
        schema.validate(element("item", element("n", text=3)))

    def test_wrong_root(self, schema):
        with pytest.raises(XmlSchemaError):
            schema.validate(element("other"))

    def test_undeclared_child(self, schema):
        with pytest.raises(XmlSchemaError):
            schema.validate(element("item", element("bogus")))

    def test_leaf_with_children(self, schema):
        with pytest.raises(XmlSchemaError):
            schema.validate(element("item", element("n", element("x"))))

    def test_leaf_without_value(self, schema):
        with pytest.raises(XmlSchemaError):
            schema.validate(element("item", element("n")))

    def test_bad_int(self, schema):
        from repro.xmlkit import Element

        with pytest.raises(XmlSchemaError):
            schema.validate(element("item", Element("n", text="x")))

    def test_interior_with_text(self, schema):
        from repro.xmlkit import Element

        with pytest.raises(XmlSchemaError):
            schema.validate(element("item", Element("wrap", text="t")))
