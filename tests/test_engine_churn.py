"""Executor integration tests for mid-run faults and recovery."""

import pytest

from tests.conftest import PAPER_QUERIES, make_system
from repro.faults import FaultSchedule, LinkFailure, single_crash
from repro.xmlkit.serializer import serialize


def run_captured(faults=None, names=("Q1", "Q2", "Q3", "Q4"), duration=10.0):
    subscribers = {"Q1": "P1", "Q2": "P2", "Q3": "P3", "Q4": "P4"}
    system = make_system(verify=True)
    for name in names:
        system.register_query(name, PAPER_QUERIES[name], subscribers[name])
    outputs = {name: [] for name in names}
    metrics = system.run(
        duration,
        faults=faults,
        capture=lambda query, item: outputs[query].append(serialize(item)),
    )
    return system, metrics, outputs


class TestGoldenEquivalence:
    def test_unaffected_queries_are_byte_identical(self):
        """The acceptance criterion: a crash severing only Q4's route
        must not change a single delivered byte of Q1-Q3."""
        _, _, baseline = run_captured()
        system, metrics, churned = run_captured(faults=single_crash(3.0, "SP6"))
        for name in ("Q1", "Q2", "Q3"):
            assert churned[name] == baseline[name]
        assert metrics.faults_applied == 1
        assert metrics.queries_repaired == 1
        assert metrics.queries_lost == 0
        assert "Q4" in system.deployment.queries

    def test_capture_matches_delivery_counts(self):
        _, metrics, outputs = run_captured()
        for name, items in outputs.items():
            assert len(items) == metrics.items_delivered[name]


class TestDegradationMetrics:
    def test_fault_free_run_reports_no_degradation(self):
        _, metrics, _ = run_captured()
        assert metrics.faults_applied == 0
        assert metrics.items_lost == 0
        assert metrics.recovery_time_s == 0.0
        assert metrics.rerouted_traffic_bits == 0.0
        assert metrics.queries_repaired == 0
        assert metrics.queries_lost == 0

    def test_crash_and_rejoin_report_losses_and_rerouting(self):
        system, metrics, _ = run_captured(faults=single_crash(3.0, "SP5", rejoin_at=6.0))
        assert metrics.faults_applied == 2
        assert metrics.items_lost > 0
        assert 0.0 < metrics.recovery_time_s < 10.0
        assert metrics.rerouted_traffic_bits > 0.0
        assert metrics.rerouted_mbit() == pytest.approx(
            metrics.rerouted_traffic_bits / 1e6
        )
        assert 0.0 < metrics.recovery_overhead() < 1.0
        assert metrics.queries_repaired >= 1
        assert "SP5" in system.net

    def test_unrepaired_subscription_counts_as_lost(self):
        # Crashing the subscriber's own super-peer leaves Q1 pending
        # for the rest of the run.
        _, metrics, _ = run_captured(
            faults=single_crash(3.0, "SP1"), names=("Q1",)
        )
        assert metrics.queries_lost == 1
        assert metrics.items_delivered["Q1"] > 0  # pre-fault deliveries

    def test_link_failure_mid_run(self):
        _, metrics, outputs = run_captured(
            faults=FaultSchedule([LinkFailure(3.0, "SP4", "SP5")]), names=("Q1",)
        )
        assert metrics.faults_applied == 1
        assert metrics.queries_repaired == 1
        assert outputs["Q1"]


class TestTopologyPersistence:
    def test_crash_without_rejoin_persists_after_run(self):
        system, _, _ = run_captured(faults=single_crash(3.0, "SP6"))
        assert "SP6" not in system.net
        assert "SP6" in system.net.removed_super_peer_names()
