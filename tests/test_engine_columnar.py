"""Unit tests for the columnar batch accelerator (DESIGN.md §14).

Covers the shape machinery (sniffing, validation, pruning), the
ColumnBatch view (decode/size/pickle), each operator kernel's identity
with its tree path, the delivery count kernel, and the end-to-end
executor identity under ``REPRO_COLUMNAR=on`` vs ``off``.
"""

import pickle
from fractions import Fraction

import pytest

from tests.conftest import PAPER_QUERIES, make_system
from repro.engine import (
    PartialAggregate,
    Pipeline,
    SelectOperator,
    WindowAggregateOperator,
    partial_to_wire,
)
from repro.engine.columnar import (
    AUTO_MIN_ROWS,
    ColumnBatch,
    DeliveryKernel,
    apply_operator,
    columnar_mode,
    columnar_stats,
    encode_batch,
)
from repro.engine.restructure import Restructurer
from repro.predicates import PredicateGraph, normalize_comparison
from repro.properties import (
    AggregationSpec,
    ProjectionSpec,
    SelectionSpec,
    WindowSpec,
)
from repro.wxquery import analyze, parse_query
from repro.xmlkit import Path, element, prune_to_paths, shape_of
from repro.xmlkit.serializer import serialize

ITEM = Path("photons/photon")
RA = ITEM / "coord/cel/ra"
EN = ITEM / "en"


def photon(ra=130.0, dec=-45.0, en=1.5, t=1.0):
    return element(
        "photon",
        element(
            "coord", element("cel", element("ra", text=ra), element("dec", text=dec))
        ),
        element("en", text=en),
        element("det_time", text=t),
    ).freeze()


def graph(*specs):
    atoms = []
    for path, op, const in specs:
        atoms.extend(normalize_comparison(path, op, None, Fraction(str(const))))
    return PredicateGraph(atoms)


def batch_of(n=12):
    return [photon(ra=120.0 + i, en=1.0 + 0.1 * i, t=float(i)) for i in range(n)]


class TestShapes:
    def test_regular_batch_encodes(self):
        batch = encode_batch(batch_of())
        assert isinstance(batch, ColumnBatch)
        assert len(batch) == 12
        assert batch.store.shape.column_count == 4  # ra, dec, en, det_time

    def test_irregular_batch_bypasses_whole_batch(self):
        items = batch_of(5)
        odd = element("photon", element("en", text=1.0)).freeze()
        before = columnar_stats()["batches_bypassed_irregular"]
        out = encode_batch(items + [odd])
        assert out == items + [odd]  # the original list, untouched
        assert columnar_stats()["batches_bypassed_irregular"] == before + 1

    def test_interned_shapes_share_nodes(self):
        a, b = photon(), photon(ra=99.0)
        assert shape_of(a) is shape_of(b)

    def test_unprojected_decode_returns_original_elements(self):
        items = batch_of(8)
        batch = encode_batch(items)
        assert list(batch.decode()) == items
        assert batch.decode()[0] is items[0]

    def test_decode_row_and_serialized_bytes_match_trees(self):
        batch = encode_batch(batch_of(10))
        keep = (("coord", "cel", "ra"), ("en",))
        pruned = batch.project(batch.vshape.prune(keep))
        decoded = pruned.decode()
        expected = [
            prune_to_paths(item, [Path("coord/cel/ra"), Path("en")])
            for item in batch.decode()
        ]
        assert [serialize(d) for d in decoded] == [serialize(e) for e in expected]
        assert pruned.serialized_bytes() == sum(
            e.freeze().serialized_size() for e in expected
        )
        assert pruned.decode_row(pruned.rows[3]).serialized_size() == (
            decoded[3].serialized_size()
        )

    def test_shape_prune_mirrors_prune_to_paths_drop(self):
        batch = encode_batch(batch_of(4))
        assert batch.vshape.prune((("nope",),)) is None
        assert batch.vshape.prune(((),)) is batch.vshape  # empty path: keep all

    def test_pickle_round_trip(self):
        batch = encode_batch(batch_of(9))
        keep = (("en",),)
        pruned = batch.project(batch.vshape.prune(keep))
        clone = pickle.loads(pickle.dumps(pruned))
        assert isinstance(clone, ColumnBatch)
        assert [serialize(e) for e in clone.decode()] == [
            serialize(e) for e in pruned.decode()
        ]
        assert clone.serialized_bytes() == pruned.serialized_bytes()


class TestModeSwitch:
    def test_mode_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_COLUMNAR", raising=False)
        assert columnar_mode() == "auto"
        for value, mode in (("on", "on"), ("1", "on"), ("off", "off"), ("0", "off")):
            monkeypatch.setenv("REPRO_COLUMNAR", value)
            assert columnar_mode() == mode
        monkeypatch.setenv("REPRO_COLUMNAR", "sideways")
        with pytest.raises(ValueError):
            columnar_mode()

    def test_auto_skips_small_batches(self, monkeypatch):
        monkeypatch.setenv("REPRO_COLUMNAR", "auto")
        pipeline = Pipeline.from_specs(
            [SelectionSpec(graph((EN, ">=", "1.0")))], ITEM
        )
        small = batch_of(AUTO_MIN_ROWS - 1)
        before = columnar_stats()["batches_encoded"]
        assert pipeline.process_batch(small) == small
        assert columnar_stats()["batches_encoded"] == before


class TestKernels:
    def test_select_kernel_matches_tree(self):
        op_tree = SelectOperator(graph((RA, ">=", "125.0"), (EN, "<=", "1.8")), ITEM)
        op_cols = SelectOperator(graph((RA, ">=", "125.0"), (EN, "<=", "1.8")), ITEM)
        items = batch_of(20)
        tree_out = [out for item in items for out in op_tree.process(item)]
        cols_out = op_cols.process_columns(encode_batch(items))
        assert list(cols_out.decode()) == tree_out
        assert (op_cols.seen, op_cols.passed) == (op_tree.seen, op_tree.passed)

    def test_select_kernel_missing_path_rejects_all(self):
        op = SelectOperator(graph((ITEM / "ghost", ">=", "0.0")), ITEM)
        out = op.process_columns(encode_batch(batch_of(6)))
        assert len(out) == 0 and op.seen == 6 and op.passed == 0

    def test_pipeline_identity_with_counts(self, monkeypatch):
        specs = [
            SelectionSpec(graph((RA, ">=", "123.0"))),
            ProjectionSpec(frozenset({RA, EN}), frozenset({RA, EN})),
        ]
        items = batch_of(16)
        monkeypatch.setenv("REPRO_COLUMNAR", "off")
        tree = Pipeline.from_specs(specs, ITEM)
        tree_out = tree.process_batch(list(items))
        monkeypatch.setenv("REPRO_COLUMNAR", "on")
        cols = Pipeline.from_specs(specs, ITEM)
        cols_out = cols.process_batch(list(items))
        assert [serialize(e) for e in cols_out] == [serialize(e) for e in tree_out]
        assert cols.input_counts == tree.input_counts

    def test_aggregate_kernel_shares_state_with_tree_path(self):
        spec = AggregationSpec(
            function="avg",
            aggregated_path=EN,
            window=WindowSpec("diff", Fraction(4), Fraction(2), ITEM / "det_time"),
            pre_selection=PredicateGraph(),
            result_filter=PredicateGraph(),
        )
        reference = WindowAggregateOperator(spec, ITEM)
        mixed = WindowAggregateOperator(spec, ITEM)
        first, second = batch_of(10), [
            photon(en=2.0 + i, t=float(10 + i)) for i in range(10)
        ]
        ref_out = [o for item in first + second for o in reference.process(item)]
        # Columnar batch, then a tree batch across the fallback boundary:
        # the windower state must carry over exactly.
        mixed_out = list(mixed.process_columns(encode_batch(first)))
        mixed_out += [o for item in second for o in mixed.process(item)]
        assert [serialize(e) for e in mixed_out] == [serialize(e) for e in ref_out]

    def test_apply_operator_decodes_for_tree_only_operators(self):
        class Doubler:
            columnar = False

            def process(self, item):
                return [item, item]

        out = apply_operator(Doubler(), encode_batch(batch_of(4)))
        assert isinstance(out, list) and len(out) == 8


class TestDeliveryKernel:
    def _restructurer(self, text):
        return Restructurer(analyze(parse_query(text)))

    def test_plain_count_matches_per_item_build(self):
        restructurer = self._restructurer(PAPER_QUERIES["Q1"])
        kernel = DeliveryKernel(restructurer)
        items = [photon(ra=121.0 + i, dec=-45.0) for i in range(7)]
        batch = encode_batch(items)
        assert isinstance(batch, ColumnBatch)
        expected = sum(len(restructurer.build(item)) for item in items)
        assert kernel.count(batch) == expected

    def test_aggregate_wire_counts(self):
        for function, partials, per_item in (
            ("count", [PartialAggregate.of_values([2.0] * 5), PartialAggregate()], [1, 1]),
            ("avg", [PartialAggregate.of_values([1.0] * 3), PartialAggregate()], [1, 0]),
        ):
            query = (
                '<out>{ for $w in stream("photons")/photons/photon '
                "|det_time diff 4 step 4| "
                f"let $a := {function}($w/en) "
                "return <r> { $a } </r> }</out>"
            )
            restructurer = self._restructurer(query)
            kernel = DeliveryKernel(restructurer)
            wire = [partial_to_wire(p, function).freeze() for p in partials]
            batch = encode_batch(wire)
            assert isinstance(batch, ColumnBatch)
            expected = sum(len(restructurer.build(item)) for item in wire)
            assert kernel.count(batch) == expected
            assert expected == sum(per_item)

    def test_conditional_return_falls_back(self):
        query = (
            '<r>{ for $w in stream("s")/photons/photon |count 2| '
            "let $a := avg($w/en) "
            "return if $a >= 1 then <hi/> else <lo/> }</r>"
        )
        kernel = DeliveryKernel(self._restructurer(query))
        assert kernel.countable is False
        wire = [
            partial_to_wire(PartialAggregate.of_values([2.0]), "avg").freeze()
            for _ in range(5)
        ]
        assert kernel.count(encode_batch(wire)) is None


class TestExecutorIdentity:
    def _run(self, monkeypatch, mode):
        monkeypatch.setenv("REPRO_COLUMNAR", mode)
        system = make_system(verify=True)
        for name in ("Q1", "Q3"):
            system.register_query(name, PAPER_QUERIES[name], f"P{name[1]}")
        outputs = []
        metrics = system.run(
            8.0, capture=lambda query, item: outputs.append((query, serialize(item)))
        )
        return metrics, outputs

    def test_metrics_and_results_identical(self, monkeypatch):
        tree_metrics, tree_out = self._run(monkeypatch, "off")
        cols_metrics, cols_out = self._run(monkeypatch, "on")
        assert cols_metrics == tree_metrics
        assert cols_out == tree_out
