"""Property-based tests for predicate graphs (hypothesis).

The central invariants:

* minimization preserves the derived closure (no information change);
* a matched predicate pair is *semantically* sound — every assignment
  satisfying the subscription graph satisfies the stream graph;
* satisfiability agrees with a brute-force witness check on small
  integer domains.
"""

from fractions import Fraction
from itertools import product

from hypothesis import assume, given, settings, strategies as st

from repro.predicates import (
    ZERO,
    PredicateGraph,
    match_predicates,
    normalize_comparison,
)
from repro.xmlkit import Path

VARIABLES = [Path("s/i/a"), Path("s/i/b"), Path("s/i/c")]

constants = st.integers(min_value=-5, max_value=5).map(Fraction)
operators = st.sampled_from(["<=", "<", ">=", ">", "="])
#: Non-strict subset: systems of difference constraints with integer
#: weights always admit *integer* solutions, so a small integer domain
#: is a complete brute-force oracle for these (strict constraints like
#: ``a < b < a + 1`` are satisfiable only over the rationals).
non_strict_operators = st.sampled_from(["<=", ">=", "="])


@st.composite
def bound_atoms(draw, ops=operators):
    variable = draw(st.sampled_from(VARIABLES))
    op = draw(ops)
    constant = draw(constants)
    return normalize_comparison(variable, op, None, constant)


@st.composite
def variable_atoms(draw, ops=operators):
    left, right = draw(
        st.sampled_from(
            [(a, b) for a in VARIABLES for b in VARIABLES if a != b]
        )
    )
    return normalize_comparison(left, draw(ops), right, draw(constants))


@st.composite
def graphs(draw, max_atoms=4, ops=operators):
    atom_lists = draw(
        st.lists(st.one_of(bound_atoms(ops), variable_atoms(ops)), max_size=max_atoms)
    )
    return PredicateGraph([atom for atoms in atom_lists for atom in atoms])


def satisfied_by(graph, assignment):
    """Brute-force check of a variable assignment (ints)."""
    values = dict(assignment)
    values[ZERO] = 0
    for (source, target), bound in graph.edges.items():
        left, right = values[source], values[target]
        limit = right + bound.value
        if bound.strict:
            if not left < limit:
                return False
        elif not left <= limit:
            return False
    return True


def brute_force_satisfiable(graph, domain=range(-15, 16)):
    names = [n for n in graph.nodes if n != ZERO]
    for combo in product(domain, repeat=len(names)):
        if satisfied_by(graph, zip(names, combo)):
            return True
    return False


class TestSatisfiability:
    @given(graphs(max_atoms=3, ops=non_strict_operators))
    @settings(max_examples=150, deadline=None)
    def test_agrees_with_brute_force(self, graph):
        assume(len(graph.nodes) <= 4)
        # Integer witnesses in [-15, 15] exist whenever constants are
        # in [-5, 5], at most three atoms chain (|value| <= 3*5), and
        # all constraints are non-strict.
        assert graph.is_satisfiable() == brute_force_satisfiable(graph)

    @given(graphs(max_atoms=3))
    @settings(max_examples=100, deadline=None)
    def test_brute_force_witness_implies_satisfiable(self, graph):
        """Soundness half only, for strict constraints: an integer
        witness always certifies satisfiability."""
        assume(len(graph.nodes) <= 4)
        if brute_force_satisfiable(graph):
            assert graph.is_satisfiable()


class TestMinimization:
    @given(graphs())
    @settings(max_examples=100, deadline=None)
    def test_closure_preserved(self, graph):
        assume(graph.is_satisfiable())
        original = graph.closure()
        minimized = graph.minimized().closure()
        assert set(original) == set(minimized)
        for key in original:
            assert original[key] == minimized[key]

    @given(graphs())
    @settings(max_examples=100, deadline=None)
    def test_never_grows(self, graph):
        assume(graph.is_satisfiable())
        assert len(graph.minimized()) <= len(graph)

    @given(graphs())
    @settings(max_examples=50, deadline=None)
    def test_idempotent(self, graph):
        assume(graph.is_satisfiable())
        once = graph.minimized()
        assert once.minimized() == once


class TestMatchingSoundness:
    @given(graphs(max_atoms=3), graphs(max_atoms=3))
    @settings(max_examples=150, deadline=None)
    def test_match_implies_containment(self, stream, subscription):
        """If MatchPredicates accepts, every assignment satisfying the
        subscription also satisfies the stream (no false sharing)."""
        assume(stream.is_satisfiable() and subscription.is_satisfiable())
        assume(len(stream.nodes) <= 4 and len(subscription.nodes) <= 4)
        for mode in ("edgewise", "closure"):
            if not match_predicates(stream, subscription, mode):
                continue
            names = [n for n in subscription.nodes if n != ZERO]
            extra = [n for n in stream.nodes if n != ZERO and n not in names]
            all_names = names + extra
            for combo in product(range(-8, 9, 2), repeat=len(all_names)):
                assignment = dict(zip(all_names, combo))
                if satisfied_by(subscription, assignment.items()):
                    assert satisfied_by(stream, assignment.items()), (
                        mode, stream.describe(), subscription.describe(), assignment,
                    )

    @given(graphs(max_atoms=3))
    @settings(max_examples=50, deadline=None)
    def test_reflexive(self, graph):
        assume(graph.is_satisfiable())
        assert match_predicates(graph, graph, "edgewise")
        assert match_predicates(graph, graph, "closure")

    @given(graphs(max_atoms=3), graphs(max_atoms=3))
    @settings(max_examples=100, deadline=None)
    def test_edgewise_implies_closure(self, stream, subscription):
        """The closure mode is strictly more permissive (complete)."""
        assume(stream.is_satisfiable() and subscription.is_satisfiable())
        if match_predicates(stream, subscription, "edgewise"):
            assert match_predicates(stream, subscription, "closure")
