"""Tests for UDF operator descriptions feeding the cost model."""

import pytest

from repro.costmodel import (
    DEFAULT_DESCRIPTIONS,
    DescriptionRegistry,
    UdfDescription,
    estimate_stream_rate,
)
from repro.properties import StreamProperties, UdfSpec
from repro.xmlkit import Path

ITEM = Path("photons/photon")


@pytest.fixture(autouse=True)
def clean_default_descriptions():
    DEFAULT_DESCRIPTIONS._descriptions.clear()
    yield
    DEFAULT_DESCRIPTIONS._descriptions.clear()


def udf_props(name):
    return StreamProperties("photons", ITEM, (UdfSpec(name, ("x",)),))


class TestUdfDescription:
    def test_defaults(self):
        description = UdfDescription("f")
        assert description.selectivity == 1.0
        assert description.size_factor == 1.0
        assert description.base_load is None

    def test_validation(self):
        with pytest.raises(ValueError):
            UdfDescription("f", selectivity=-0.1)
        with pytest.raises(ValueError):
            UdfDescription("f", size_factor=0.0)
        with pytest.raises(ValueError):
            UdfDescription("f", base_load=-1.0)


class TestDescriptionRegistry:
    def test_register_and_lookup(self):
        registry = DescriptionRegistry()
        description = UdfDescription("calibrate", selectivity=0.5)
        registry.register(description)
        assert registry.lookup("calibrate") is description
        assert "calibrate" in registry
        assert registry.lookup("other") is None

    def test_duplicate_rejected(self):
        registry = DescriptionRegistry()
        registry.register(UdfDescription("f"))
        with pytest.raises(ValueError):
            registry.register(UdfDescription("f"))


class TestEstimationWithDescriptions:
    def test_undeclared_udf_is_rate_neutral(self, catalog, photon_stats):
        rate = estimate_stream_rate(udf_props("mystery"), catalog)
        assert rate.size == photon_stats.avg_item_size
        assert rate.frequency == photon_stats.frequency

    def test_declared_selectivity_applied(self, catalog, photon_stats):
        DEFAULT_DESCRIPTIONS.register(UdfDescription("thin", selectivity=0.25))
        rate = estimate_stream_rate(udf_props("thin"), catalog)
        assert rate.frequency == pytest.approx(photon_stats.frequency * 0.25)

    def test_declared_size_factor_applied(self, catalog, photon_stats):
        DEFAULT_DESCRIPTIONS.register(UdfDescription("annotate", size_factor=1.5))
        rate = estimate_stream_rate(udf_props("annotate"), catalog)
        assert rate.size == pytest.approx(photon_stats.avg_item_size * 1.5)

    def test_combined_with_selection(self, catalog, photon_stats):
        from fractions import Fraction

        from repro.predicates import PredicateGraph, normalize_comparison
        from repro.properties import SelectionSpec

        DEFAULT_DESCRIPTIONS.register(UdfDescription("thin", selectivity=0.5))
        selection = SelectionSpec(
            PredicateGraph(
                normalize_comparison(ITEM / "en", ">=", None, Fraction(1))
            )
        )
        props = StreamProperties(
            "photons", ITEM, (selection, UdfSpec("thin", ("x",)))
        )
        plain = StreamProperties("photons", ITEM, (selection,))
        with_udf = estimate_stream_rate(props, catalog)
        without = estimate_stream_rate(plain, catalog)
        assert with_udf.frequency == pytest.approx(without.frequency * 0.5)
