"""Unit tests for restricted element paths."""

import pytest

from repro.xmlkit import EMPTY_PATH, Path, XmlPathError, element, parse_path


class TestParsing:
    def test_single_step(self):
        assert Path("en").steps == ("en",)

    def test_multi_step(self):
        assert Path("coord/cel/ra").steps == ("coord", "cel", "ra")

    def test_from_sequence(self):
        assert Path(("a", "b")).steps == ("a", "b")

    def test_empty(self):
        assert parse_path("") == EMPTY_PATH
        assert EMPTY_PATH.is_empty()

    @pytest.mark.parametrize(
        "bad", ["/abs", "trail/", "a//b", "a/*/b", "a[b]/c", "a b", ""]
    )
    def test_invalid_rejected(self, bad):
        if bad == "":
            return  # empty is legal (the empty path)
        with pytest.raises(XmlPathError):
            Path(bad)


class TestAlgebra:
    def test_concat(self):
        assert Path("a") / "b/c" == Path("a/b/c")
        assert Path("a") / Path("b") == Path("a/b")

    def test_starts_with(self):
        assert Path("a/b/c").starts_with(Path("a/b"))
        assert Path("a/b").starts_with(Path("a/b"))
        assert not Path("a/b").starts_with(Path("a/b/c"))
        assert not Path("x/b").starts_with(Path("a"))

    def test_relative_to(self):
        assert Path("a/b/c").relative_to(Path("a")) == Path("b/c")
        with pytest.raises(XmlPathError):
            Path("a/b").relative_to(Path("x"))

    def test_leaf_and_parent(self):
        assert Path("a/b/c").leaf == "c"
        assert Path("a/b/c").parent == Path("a/b")
        with pytest.raises(XmlPathError):
            _ = EMPTY_PATH.leaf
        with pytest.raises(XmlPathError):
            _ = EMPTY_PATH.parent

    def test_immutability(self):
        path = Path("a/b")
        with pytest.raises(AttributeError):
            path.steps = ("x",)


class TestEvaluation:
    @pytest.fixture()
    def tree(self):
        return element(
            "photon",
            element("coord", element("cel", element("ra", text=130.0))),
            element("en", text=1.5),
        )

    def test_first(self, tree):
        assert Path("coord/cel/ra").first(tree).text == "130.0"
        assert Path("coord/det").first(tree) is None

    def test_number(self, tree):
        assert Path("en").number(tree) == 1.5

    def test_all(self, tree):
        assert len(Path("coord/cel").all(tree)) == 1

    def test_empty_path_resolves_to_root(self, tree):
        assert EMPTY_PATH.first(tree) is tree


class TestValueSemantics:
    def test_equality_and_hash(self):
        assert Path("a/b") == Path(("a", "b"))
        assert hash(Path("a/b")) == hash(Path("a/b"))
        assert Path("a") != Path("b")

    def test_ordering(self):
        assert Path("a/b") < Path("a/c")

    def test_str_and_repr(self):
        assert str(Path("a/b")) == "a/b"
        assert repr(Path("a/b")) == "Path('a/b')"

    def test_len_and_iter(self):
        assert len(Path("a/b/c")) == 3
        assert list(Path("a/b")) == ["a", "b"]
