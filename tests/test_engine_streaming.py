"""Tests for the single-pass streaming executor.

The central contract: :class:`StreamSimulator` (streaming) and
:class:`MaterializingSimulator` (the seed executor, kept as oracle)
produce *identical* ``RunMetrics`` — same link bits, same peer work,
same delivery counts — on every built-in scenario and strategy.
"""

from fractions import Fraction

import pytest

from tests.conftest import PAPER_QUERIES, make_system
from repro.bench.harness import run_scenario
from repro.engine.executor import (
    ExecutionError,
    MaterializingSimulator,
    StreamSimulator,
    interleave_round_robin,
    topological_streams,
)
from repro.engine.fanout import PrefixTree, group_pipelines
from repro.engine.pipeline import Pipeline
from repro.predicates import PredicateGraph, normalize_comparison
from repro.properties import ProjectionSpec, SelectionSpec, raw_stream_properties
from repro.sharing.plan import Deployment, InstalledStream
from repro.workload.photons import PhotonGenerator, PhotonStreamConfig
from repro.workload.scenarios import scenario_grid, scenario_one, scenario_two
from repro.xmlkit import Path, element

STRATEGIES = ("data-shipping", "query-shipping", "stream-sharing")


def _fresh_generators(system):
    return {name: s.generator_factory() for name, s in system.sources.items()}


def _assert_identical_metrics(system, duration):
    streaming = StreamSimulator(
        system.net, system.deployment, _fresh_generators(system), duration
    ).run()
    materialized = MaterializingSimulator(
        system.net, system.deployment, _fresh_generators(system), duration
    ).run()
    assert streaming.items_generated == materialized.items_generated
    assert streaming.items_delivered == materialized.items_delivered
    assert streaming.link_bits == materialized.link_bits
    assert streaming.peer_work == materialized.peer_work


class TestGoldenEquivalence:
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_scenario_one(self, strategy):
        run = run_scenario(scenario_one(query_count=10), strategy, execute=False)
        _assert_identical_metrics(run.system, duration=10.0)

    def test_scenario_two(self):
        run = run_scenario(scenario_two(), "stream-sharing", execute=False)
        _assert_identical_metrics(run.system, duration=10.0)

    def test_scenario_grid(self):
        run = run_scenario(scenario_grid(3, 3, 15), "query-shipping", execute=False)
        _assert_identical_metrics(run.system, duration=10.0)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_paper_queries(self, strategy):
        system = make_system(strategy)
        for name, peer in [("Q1", "P1"), ("Q2", "P2"), ("Q3", "P3"), ("Q4", "P4")]:
            system.register_query(name, PAPER_QUERIES[name], peer)
        _assert_identical_metrics(system, duration=25.0)

    def test_varying_batch_size_is_invisible(self):
        system = make_system("stream-sharing")
        system.register_query("Q1", PAPER_QUERIES["Q1"], "P1")
        system.register_query("Q3", PAPER_QUERIES["Q3"], "P3")
        baseline = StreamSimulator(
            system.net, system.deployment, _fresh_generators(system), 15.0
        ).run()
        for batch_size in (1, 7, 256):
            other = StreamSimulator(
                system.net,
                system.deployment,
                _fresh_generators(system),
                15.0,
                batch_size=batch_size,
            ).run()
            assert other.link_bits == baseline.link_bits
            assert other.peer_work == baseline.peer_work
            assert other.items_delivered == baseline.items_delivered


class TestPeakMemory:
    def test_streaming_peak_bounded_in_duration(self):
        """4× the input must not move the in-flight peak materially —
        it saturates at O(batch_size × DAG depth), not O(items)."""
        system = make_system("stream-sharing")
        system.register_query("Q1", PAPER_QUERIES["Q1"], "P1")
        peaks = {}
        for duration in (10.0, 40.0):
            simulator = StreamSimulator(
                system.net, system.deployment, _fresh_generators(system), duration
            )
            simulator.run()
            peaks[duration] = simulator.peak_live_items
        assert peaks[40.0] <= peaks[10.0] * 1.25

    def test_materializing_peak_grows_with_duration(self):
        system = make_system("stream-sharing")
        system.register_query("Q1", PAPER_QUERIES["Q1"], "P1")
        peaks = {}
        for duration in (10.0, 40.0):
            simulator = MaterializingSimulator(
                system.net, system.deployment, _fresh_generators(system), duration
            )
            simulator.run()
            peaks[duration] = simulator.peak_live_items
        assert peaks[40.0] > 3.0 * peaks[10.0]


def _install(deployment, stream_id, parent_id=None):
    deployment.install_stream(
        InstalledStream(
            stream_id=stream_id,
            content=raw_stream_properties(stream_id, "photons/photon").single_input(),
            origin_node="SP4",
            route=("SP4",),
            parent_id=parent_id,
        )
    )


class TestTopologicalStreams:
    def test_parents_before_children(self, example_net):
        run = run_scenario(scenario_one(query_count=10), "stream-sharing", execute=False)
        order = topological_streams(run.system.deployment)
        position = {stream.stream_id: i for i, stream in enumerate(order)}
        assert len(order) == len(run.system.deployment.streams)
        for stream in order:
            if stream.parent_id is not None:
                assert position[stream.parent_id] < position[stream.stream_id]

    def test_cycle_diagnostic_names_streams(self, example_net):
        deployment = Deployment(example_net)
        _install(deployment, "root")
        _install(deployment, "a", parent_id="root")
        # Rewire a's parent to a not-yet-placed stream and add the cycle
        # directly (install_stream validates parents, so bypass it).
        looped_a = InstalledStream(
            stream_id="loop_a",
            content=raw_stream_properties("loop_a", "photons/photon").single_input(),
            origin_node="SP4",
            route=("SP4",),
            parent_id="loop_b",
        )
        looped_b = InstalledStream(
            stream_id="loop_b",
            content=raw_stream_properties("loop_b", "photons/photon").single_input(),
            origin_node="SP4",
            route=("SP4",),
            parent_id="loop_a",
        )
        deployment.streams["loop_a"] = looped_a
        deployment.streams["loop_b"] = looped_b
        with pytest.raises(ExecutionError, match="stream dependency cycle: loop_a, loop_b"):
            topological_streams(deployment)


class TestInterleaveRoundRobin:
    def test_uneven_lengths(self):
        merged = list(
            interleave_round_robin(
                [("a", ["a0", "a1", "a2", "a3"]), ("b", ["b0"]), ("c", ["c0", "c1"])]
            )
        )
        assert merged == [
            ("a", "a0"), ("b", "b0"), ("c", "c0"),
            ("a", "a1"), ("c", "c1"),
            ("a", "a2"),
            ("a", "a3"),
        ]

    def test_empty_streams_skipped(self):
        assert list(interleave_round_robin([("a", []), ("b", ["b0"])])) == [("b", "b0")]
        assert list(interleave_round_robin([])) == []

    def test_total_preserves_every_item(self):
        per_stream = [("x", list(range(5))), ("y", list(range(3))), ("z", [])]
        merged = list(interleave_round_robin(per_stream))
        assert len(merged) == 8
        assert [i for name, i in merged if name == "x"] == list(range(5))
        assert [i for name, i in merged if name == "y"] == list(range(3))


ITEM = Path("photons/photon")


def _selection(path, op, const):
    atoms = normalize_comparison(ITEM / path, op, None, Fraction(str(const)))
    return SelectionSpec(graph=PredicateGraph(atoms))


def _projection(*paths):
    out = frozenset(ITEM / p for p in paths)
    return ProjectionSpec(output_elements=out, referenced_elements=out)


def _photon(ra=130.0, en=1.5, det=1.0):
    return element(
        "photon",
        element("coord", element("cel", element("ra", text=ra), element("dec", text=-45.0))),
        element("en", text=en),
        element("det_time", text=det),
    )


class TestPrefixTree:
    def test_common_prefix_shares_stages(self):
        shared = _selection("en", ">=", "1.0")
        tree = PrefixTree(ITEM)
        tree.add("s1", (shared, _projection("en")))
        tree.add("s2", (shared, _projection("det_time")))
        # selection shared, two distinct projections: 3 stages, not 4
        assert tree.stage_count() == 3

    def test_disjoint_pipelines_do_not_share(self):
        tree = PrefixTree(ITEM)
        tree.add("s1", (_selection("en", ">=", "1.0"),))
        tree.add("s2", (_selection("en", ">=", "2.0"),))
        assert tree.stage_count() == 2

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            PrefixTree(ITEM).add("s1", ())

    def test_outputs_match_private_pipelines(self):
        specs1 = (_selection("en", ">=", "1.0"), _projection("en"))
        specs2 = (_selection("en", ">=", "1.0"), _projection("det_time"))
        tree = PrefixTree(ITEM)
        path1 = tree.add("s1", specs1)
        path2 = tree.add("s2", specs2)

        items = [_photon(en=e) for e in (0.5, 1.2, 2.0, 0.9, 1.8)]
        emitted = {}
        tree.evaluate(items, lambda sid, out: emitted.setdefault(sid, []).extend(out))

        for sid, specs, stage_path in (("s1", specs1, path1), ("s2", specs2, path2)):
            pipeline = Pipeline.from_specs(specs, ITEM)
            expected = pipeline.process_batch([i.copy() for i in items])
            assert emitted.get(sid, []) == expected
            # per-stream work accounting matches the private pipeline
            assert [s.input_count for s in stage_path] == pipeline.input_counts

    def test_group_pipelines_splits_by_item_path(self):
        other = Path("photons/burst")
        burst_selection = SelectionSpec(
            graph=PredicateGraph(
                normalize_comparison(other / "en", ">=", None, Fraction("1"))
            )
        )
        groups = group_pipelines(
            [
                ("s1", ITEM, (_selection("en", ">=", "1.0"),)),
                ("s2", ITEM, (_selection("en", ">=", "1.0"),)),
                ("s3", other, (burst_selection,)),
            ]
        )
        assert len(groups) == 2
        by_path = {str(path): tree for path, tree, _ in groups}
        assert by_path["photons/photon"].stage_count() == 1  # s1+s2 share
        assert by_path["photons/burst"].stage_count() == 1


class TestFlushSemantics:
    """The executor never flushes: a run's horizon is a measurement
    window over continuous queries, not an end-of-stream marker."""

    def test_pipeline_holds_open_windows_until_explicit_flush(self):
        system = make_system("stream-sharing")
        system.register_query("Q3", PAPER_QUERIES["Q3"], "P1")
        record = system.deployment.queries["Q3"]
        stream = system.deployment.streams[record.delivered[0][1]]
        pipeline = Pipeline.from_specs(stream.pipeline, stream.content.item_path)
        generator = PhotonGenerator(PhotonStreamConfig(seed=20060326, frequency=100.0))
        outputs = []
        while generator.clock < 45.0:
            outputs.extend(pipeline.process(generator.next_item()))
        drained = pipeline.flush()
        assert drained  # open windows existed at the horizon...
        assert len(outputs) == 3  # ...but only completed windows streamed out

    def test_executor_delivers_exactly_the_unflushed_windows(self):
        system = make_system("stream-sharing")
        system.register_query("Q3", PAPER_QUERIES["Q3"], "P1")
        metrics = system.run(duration=45.0)
        # 3 completed |det_time diff 20 step 10| windows in 45s; the two
        # still-open windows at the horizon are NOT emitted.
        assert metrics.items_delivered["Q3"] == 3

    def test_both_executors_agree_on_open_windows(self):
        system = make_system("stream-sharing")
        system.register_query("Q3", PAPER_QUERIES["Q3"], "P3")
        system.register_query("Q4", PAPER_QUERIES["Q4"], "P4")
        _assert_identical_metrics(system, duration=45.0)
