"""Unit tests for operator loads and the registration latency model."""

import pytest

from repro.costmodel import (
    BASE_LOADS,
    DEFAULT_LATENCY_MODEL,
    LatencyModel,
    base_load,
    operator_load,
)
from repro.network.topology import SuperPeer


class TestOperatorLoad:
    def test_formula(self):
        peer = SuperPeer("SP0", capacity=1_000_000, pindex=2.0)
        load = operator_load("selection", peer, 100.0)
        assert load.work_per_second == BASE_LOADS["selection"] * 2.0 * 100.0
        assert load.peer == "SP0"

    def test_zero_frequency(self):
        peer = SuperPeer("SP0")
        assert operator_load("projection", peer, 0.0).work_per_second == 0.0

    def test_negative_frequency_rejected(self):
        with pytest.raises(ValueError):
            operator_load("selection", SuperPeer("SP0"), -1.0)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            base_load("teleportation")

    def test_all_engine_kinds_priced(self):
        for kind in (
            "selection", "projection", "aggregation", "window",
            "reaggregation", "restructure", "transfer", "duplicate", "ingest",
        ):
            assert base_load(kind) > 0

    def test_relative_magnitudes(self):
        # Forwarding and duplication are cheap relative to evaluation.
        assert base_load("transfer") < base_load("selection")
        assert base_load("duplicate") < base_load("transfer") * 2
        assert base_load("reaggregation") < base_load("aggregation")


class TestLatencyModel:
    def test_fixed_strategies_have_no_search_cost(self):
        model = LatencyModel()
        time = model.registration_time_ms(0, 0, 2, 3)
        expected = (
            model.base_ms + 2 * model.per_operator_install_ms + 3 * model.per_route_hop_ms
        )
        assert time == expected

    def test_search_terms_add_up(self):
        model = LatencyModel()
        base = model.registration_time_ms(0, 0, 0, 0)
        searched = model.registration_time_ms(5, 10, 0, 0)
        assert searched - base == pytest.approx(
            5 * model.per_visited_node_ms + 10 * model.per_candidate_match_ms
        )

    def test_cpu_time_added(self):
        model = LatencyModel()
        assert model.registration_time_ms(0, 0, 0, 0, optimizer_cpu_ms=12.5) == (
            model.base_ms + 12.5
        )

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel().registration_time_ms(-1, 0, 0, 0)

    def test_default_model_in_paper_band(self):
        """Data/query-shipping-like registrations land in the paper's
        hundreds-of-ms band (Table 1: 250–2100 ms)."""
        time = DEFAULT_LATENCY_MODEL.registration_time_ms(0, 0, 3, 3)
        assert 250 <= time <= 2100
