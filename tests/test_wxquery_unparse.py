"""Round-trip tests for the unparser: parse → unparse → parse is identity."""

import pytest

from tests.conftest import PAPER_QUERIES
from repro.wxquery import parse_query, unparse

ROUND_TRIP_QUERIES = [
    "<empty/>",
    "<a><b/><c/></a>",
    '<r>{ for $p in stream("s")/a/b return $p }</r>',
    '<r>{ for $p in stream("s")/a/b where $p/x >= 1.5 return $p/y }</r>',
    '<r>{ for $p in stream("s")/a/b where $p/x <= $p/y + 3 return $p }</r>',
    '<r>{ for $p in stream("s")/a/b where $p/x >= $p/y - 2.5 return $p }</r>',
    '<r>{ for $w in stream("s")/a/b[x >= 1 and y <= -2.5] |count 20 step 10| '
    "let $a := avg($w/x) return <v> { $a } </v> }</r>",
    '<r>{ for $w in stream("s")/a/b |det_time diff 60 step 40| '
    "let $a := max($w/en) where $a >= 1.3 return <v> { $a } </v> }</r>",
    '<r>{ for $p in stream("s")/a/b return ($p/x, $p/y, <sep/>) }</r>',
    '<r>{ for $w in stream("s")/a/b |count 4| let $a := avg($w/x) '
    "return if $a >= 1 then <hi/> else <lo/> }</r>",
]


@pytest.mark.parametrize("text", ROUND_TRIP_QUERIES)
def test_round_trip(text):
    first = parse_query(text)
    rendered = unparse(first)
    second = parse_query(rendered)
    assert second.body == first.body, rendered


@pytest.mark.parametrize("name", sorted(PAPER_QUERIES))
def test_paper_queries_round_trip(name):
    first = parse_query(PAPER_QUERIES[name])
    second = parse_query(unparse(first))
    assert second.body == first.body


def test_unparse_is_stable():
    """unparse(parse(unparse(q))) == unparse(q) — a fixed point."""
    for text in ROUND_TRIP_QUERIES:
        once = unparse(parse_query(text))
        twice = unparse(parse_query(once))
        assert once == twice
