"""Unit tests for the properties model, windows, and extraction."""

from fractions import Fraction

import pytest

from tests.conftest import PAPER_QUERIES
from repro.predicates import PredicateGraph, UnsatisfiableError, normalize_comparison
from repro.properties import (
    AggregationSpec,
    ProjectionSpec,
    ReAggregationSpec,
    SelectionSpec,
    WindowSpec,
    extract_properties,
    raw_stream_properties,
)
from repro.wxquery import AnalysisError, parse_query
from repro.xmlkit import Path


def F(value):
    return Fraction(str(value))


def props(name):
    return extract_properties(parse_query(PAPER_QUERIES[name]), name)


class TestWindowSpec:
    def test_from_clause_absolutizes_reference(self):
        from repro.wxquery import WindowClause

        clause = WindowClause("diff", F(20), F(10), Path("det_time"))
        spec = WindowSpec.from_clause(clause, Path("photons/photon"))
        assert spec.reference == Path("photons/photon/det_time")

    def test_default_step(self):
        from repro.wxquery import WindowClause

        clause = WindowClause("count", F(20))
        spec = WindowSpec.from_clause(clause, Path("a/b"))
        assert spec.step == F(20)

    def test_shareability_conditions(self):
        w_fine = WindowSpec("count", F(20), F(10))
        w_coarse = WindowSpec("count", F(60), F(40))
        assert w_coarse.shareable_from(w_fine)
        assert not w_fine.shareable_from(w_coarse)
        assert w_coarse.windows_per_new_window(w_fine) == 3

    def test_size_not_multiple_fails(self):
        assert not WindowSpec("count", F(50), F(10)).shareable_from(
            WindowSpec("count", F(20), F(10))
        )

    def test_reused_window_not_tiling_fails(self):
        # ∆ mod µ != 0 for the reused window.
        reused = WindowSpec("count", F(20), F(15))
        assert not WindowSpec("count", F(40), F(30)).shareable_from(reused)

    def test_step_not_multiple_fails(self):
        reused = WindowSpec("count", F(20), F(10))
        assert not WindowSpec("count", F(40), F(15)).shareable_from(reused)

    def test_different_kind_fails(self):
        count = WindowSpec("count", F(20), F(10))
        diff = WindowSpec("diff", F(20), F(10), Path("a/t"))
        assert not diff.shareable_from(count)

    def test_different_reference_fails(self):
        w1 = WindowSpec("diff", F(20), F(10), Path("a/t"))
        w2 = WindowSpec("diff", F(40), F(20), Path("a/u"))
        assert not w2.shareable_from(w1)

    def test_fractional_windows(self):
        fine = WindowSpec("diff", F("0.5"), F("0.25"), Path("a/t"))
        coarse = WindowSpec("diff", F("1.5"), F("0.5"), Path("a/t"))
        assert coarse.shareable_from(fine)

    def test_invalid_specs(self):
        with pytest.raises(ValueError):
            WindowSpec("count", F(0), F(1))
        with pytest.raises(ValueError):
            WindowSpec("diff", F(1), F(1))  # missing reference
        with pytest.raises(ValueError):
            WindowSpec("count", F(1), F(1), Path("x"))  # spurious reference


class TestSpecs:
    def test_projection_outputs_must_be_referenced(self):
        with pytest.raises(ValueError):
            ProjectionSpec(frozenset({Path("a/b")}), frozenset({Path("a/c")}))

    def test_projection_needs_outputs(self):
        with pytest.raises(ValueError):
            ProjectionSpec(frozenset(), frozenset())

    def test_aggregation_function_checked(self):
        with pytest.raises(ValueError):
            AggregationSpec(
                "median",
                Path("a/x"),
                WindowSpec("count", F(2), F(2)),
                PredicateGraph(),
                PredicateGraph(),
            )

    def test_reaggregation_requires_shareable_windows(self):
        fine = AggregationSpec(
            "avg", Path("a/x"), WindowSpec("count", F(20), F(10)),
            PredicateGraph(), PredicateGraph(),
        )
        incompatible = AggregationSpec(
            "avg", Path("a/x"), WindowSpec("count", F(30), F(10)),
            PredicateGraph(), PredicateGraph(),
        )
        with pytest.raises(ValueError):
            ReAggregationSpec(fine, incompatible)


class TestExtraction:
    def test_q1_operators(self):
        sp = props("Q1").single_input()
        assert [op.kind for op in sp.operators] == ["selection", "projection"]
        assert sp.item_path == Path("photons/photon")

    def test_q1_projection_matches_figure_3(self):
        projection = props("Q1").single_input().projection
        marked = {str(p.relative_to(Path("photons/photon"))) for p in projection.output_elements}
        assert marked == {"coord/cel/ra", "coord/cel/dec", "phc", "en", "det_time"}

    def test_q2_has_energy_bound(self):
        selection = props("Q2").single_input().selection
        lower, upper = selection.graph.derived_interval(Path("photons/photon/en"))
        assert lower == F("1.3") and upper is None

    def test_q3_operators(self):
        sp = props("Q3").single_input()
        assert [op.kind for op in sp.operators] == ["selection", "aggregation"]
        agg = sp.aggregation
        assert agg.function == "avg"
        assert agg.aggregated_path == Path("photons/photon/en")
        assert agg.window.size == 20 and agg.window.step == 10
        assert not agg.is_filtered

    def test_q4_result_filter(self):
        agg = props("Q4").single_input().aggregation
        assert agg.is_filtered
        assert agg.window.size == 60 and agg.window.step == 40

    def test_q3_q4_same_pre_selection(self):
        assert (
            props("Q3").single_input().aggregation.pre_selection
            == props("Q4").single_input().aggregation.pre_selection
        )

    def test_whole_item_query_has_no_projection(self):
        p = extract_properties(
            parse_query('<r>{ for $p in stream("s")/a/b where $p/x >= 1 return $p }</r>'),
            "whole",
        )
        assert [op.kind for op in p.single_input().operators] == ["selection"]

    def test_unfiltered_scan_is_raw(self):
        p = extract_properties(
            parse_query('<r>{ for $p in stream("s")/a/b return $p }</r>'), "scan"
        )
        assert p.single_input().is_raw

    def test_window_contents_query(self):
        p = extract_properties(
            parse_query('<r>{ for $w in stream("s")/a/b |count 10 step 5| return $w }</r>'),
            "wc",
        )
        kinds = [op.kind for op in p.single_input().operators]
        assert kinds == ["window"]

    def test_unsatisfiable_selection_rejected(self):
        with pytest.raises(UnsatisfiableError):
            extract_properties(
                parse_query(
                    '<r>{ for $p in stream("s")/a/b where $p/x >= 5 and $p/x < 5 return $p }</r>'
                ),
                "bad",
            )

    def test_raw_stream_properties(self):
        p = raw_stream_properties("photons", "photons/photon")
        assert p.single_input().is_raw
        assert p.is_variant_of(p.single_input())

    def test_multi_input_extraction(self):
        p = extract_properties(
            parse_query(
                '<r>{ for $p in stream("s")/a/b for $q in stream("t")/c/d '
                "where $p/x >= 1 return ($p, $q) }</r>"
            ),
            "multi",
        )
        assert len(p.inputs) == 2
        assert p.input_for("t").is_raw
        with pytest.raises(ValueError):
            p.single_input()
        with pytest.raises(KeyError):
            p.input_for("nope")
