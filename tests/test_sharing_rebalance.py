"""Adaptive rebalancer tests: migration conservation and cost wins.

The contract pinned here (DESIGN.md §13): a live migration is
make-before-break at a quiescent epoch barrier, so

* with no faults, stateless (selection/projection) subscriptions
  deliver **exactly** the static run's items — zero lost, zero
  duplicated — while windowed aggregations may shift by their
  restarted windows (§8, same as churn repair);
* under concurrent churn, any stateless discrepancy is bounded by the
  runs' fault-attributed losses (gated deliveries), never silent;
* migration downtime is structurally zero, and every migration passes
  the ``verify=True`` pre-flight (the runs here would raise otherwise);
* the sharded data plane replays the identical migrations and merges
  to byte-identical :class:`~repro.engine.metrics.RunMetrics`.
"""

import pytest

from repro.faults.schedule import staggered_crashes
from repro.obs.drift import DriftConfig
from repro.sharing.rebalance import HotPeerCostModel, Rebalancer
from repro.sharing.system import StreamGlobe
from repro.workload.scenarios import scenario_drift

#: Calibrated to the drift scenario's simulated CPU% scale (~6% idle,
#: ~26% after the rate step) — same knobs the PR 8 bench uses.
CONFIG = DriftConfig(
    cpu_threshold=15.0, clear_threshold=8.0, window=2, sustain=2, cooldown=4
)

STATELESS_KINDS = ("selection", "projection")


def _build(scenario):
    system = StreamGlobe(
        scenario.build_network(), strategy="stream-sharing", verify=True
    )
    for source in scenario.sources:
        system.register_stream(
            source.name,
            "photons/photon",
            source.generator_factory(),
            frequency=source.frequency,
            source_peer=source.source_peer,
        )
    for spec in scenario.queries:
        system.register_query(spec.name, spec.text, spec.subscriber_peer)
    return system


def _stateless(scenario):
    return [q.name for q in scenario.queries if q.kind in STATELESS_KINDS]


@pytest.fixture(scope="module")
def drift_runs():
    """Static, adaptive and sharded-adaptive runs of scenario_drift."""
    scenario = scenario_drift()
    static_sys = _build(scenario)
    static = static_sys.run(scenario.duration)

    adaptive_sys = _build(scenario)
    rebalancer = Rebalancer(adaptive_sys, config=CONFIG)
    adaptive = adaptive_sys.run(scenario.duration, rebalancer=rebalancer)

    sharded_sys = _build(scenario)
    sharded_rebalancer = Rebalancer(sharded_sys, config=CONFIG)
    sharded = sharded_sys.run(
        scenario.duration, workers=2, rebalancer=sharded_rebalancer
    )
    return {
        "scenario": scenario,
        "static": static,
        "static_sys": static_sys,
        "adaptive": adaptive,
        "adaptive_sys": adaptive_sys,
        "rebalancer": rebalancer,
        "sharded": sharded,
        "sharded_sys": sharded_sys,
        "sharded_rebalancer": sharded_rebalancer,
    }


class TestMigrationConservation:
    def test_migration_actually_happened(self, drift_runs):
        adaptive = drift_runs["adaptive"]
        rebalancer = drift_runs["rebalancer"]
        assert adaptive.migrations_applied >= 1
        assert len(rebalancer.reports) == adaptive.migrations_applied
        assert rebalancer.detector.alerts
        report = rebalancer.reports[0]
        assert report.moved_queries
        assert report.migrated_queries == report.moved_queries
        assert report.hot_work_released() > 0.0

    def test_stateless_deliveries_exactly_conserved(self, drift_runs):
        static = drift_runs["static"]
        adaptive = drift_runs["adaptive"]
        for name in _stateless(drift_runs["scenario"]):
            assert adaptive.items_delivered.get(name, 0) == (
                static.items_delivered.get(name, 0)
            ), f"stateless query {name} lost or duplicated deliveries"

    def test_no_items_lost_and_no_queries_lost(self, drift_runs):
        adaptive = drift_runs["adaptive"]
        assert adaptive.items_lost == 0
        assert adaptive.queries_lost == 0
        # Every registered query still delivers after the migration.
        static = drift_runs["static"]
        assert set(adaptive.items_delivered) == set(static.items_delivered)

    def test_migration_downtime_is_zero(self, drift_runs):
        # Make-before-break at a quiescent barrier: the reconcile gate
        # opens immediately, so no observed epoch sees it closed.
        assert drift_runs["adaptive"].migration_downtime_epochs == 0
        assert drift_runs["sharded"].migration_downtime_epochs == 0

    def test_aggregation_shift_is_bounded_by_window_restarts(self, drift_runs):
        # Windowed operators restart across a move (§8): their counts
        # may shift by a few flushed/partial windows, never wholesale.
        static = drift_runs["static"]
        adaptive = drift_runs["adaptive"]
        scenario = drift_runs["scenario"]
        windowed = [
            q.name for q in scenario.queries if q.kind not in STATELESS_KINDS
        ]
        delta = sum(
            abs(
                adaptive.items_delivered.get(name, 0)
                - static.items_delivered.get(name, 0)
            )
            for name in windowed
        )
        assert delta <= len(windowed) * 2

    def test_adaptive_beats_static_on_hottest_peer(self, drift_runs):
        static, adaptive = drift_runs["static"], drift_runs["adaptive"]
        net_s = drift_runs["static_sys"].net
        net_a = drift_runs["adaptive_sys"].net
        hot_static = max(
            static.peer_cpu_percent(net_s, p) for p in net_s.super_peer_names()
        )
        hot_adaptive = max(
            adaptive.peer_cpu_percent(net_a, p) for p in net_a.super_peer_names()
        )
        assert hot_adaptive < hot_static

    def test_migrated_streams_count_as_rerouted_traffic(self, drift_runs):
        # Migration-created streams are accounted like repair-created
        # ones: their traffic shows up as re-routing overhead.
        assert drift_runs["static"].rerouted_traffic_bits == 0.0
        assert drift_runs["adaptive"].rerouted_traffic_bits > 0.0


class TestShardedMigration:
    def test_sharded_adaptive_matches_sequential_exactly(self, drift_runs):
        assert drift_runs["sharded"] == drift_runs["adaptive"]

    def test_sharded_applied_the_same_migrations(self, drift_runs):
        sequential = drift_runs["rebalancer"]
        sharded = drift_runs["sharded_rebalancer"]
        assert [r.epoch_index for r in sharded.reports] == [
            r.epoch_index for r in sequential.reports
        ]
        assert [r.moved_queries for r in sharded.reports] == [
            r.moved_queries for r in sequential.reports
        ]

    def test_sharded_ran_on_multiple_cells(self, drift_runs):
        simulator = drift_runs["sharded_sys"].last_simulator
        assert simulator.workers_used == 2


class TestMigrationUnderChurn:
    @pytest.fixture(scope="class")
    def churn_runs(self):
        scenario = scenario_drift()
        faults = staggered_crashes(5.0, ("SP4", "SP7"), spacing=6.0, downtime=4.0)

        static_sys = _build(scenario)
        static = static_sys.run(scenario.duration, faults=faults)

        adaptive_sys = _build(scenario)
        rebalancer = Rebalancer(adaptive_sys, config=CONFIG)
        adaptive = adaptive_sys.run(
            scenario.duration, faults=faults, rebalancer=rebalancer
        )

        sharded_sys = _build(scenario)
        sharded = sharded_sys.run(
            scenario.duration,
            faults=faults,
            workers=2,
            rebalancer=Rebalancer(sharded_sys, config=CONFIG),
        )
        return {
            "scenario": scenario,
            "static": static,
            "adaptive": adaptive,
            "sharded": sharded,
            "rebalancer": rebalancer,
        }

    def test_migrations_and_repairs_coexist(self, churn_runs):
        adaptive = churn_runs["adaptive"]
        assert adaptive.migrations_applied >= 1
        assert adaptive.faults_applied == churn_runs["static"].faults_applied
        assert adaptive.queries_repaired == churn_runs["static"].queries_repaired
        assert adaptive.queries_lost == 0
        assert adaptive.migration_downtime_epochs == 0

    def test_stateless_discrepancy_bounded_by_fault_losses(self, churn_runs):
        # With faults in play, gated recovery losses land on different
        # items depending on plan placement — but every stateless
        # delivery discrepancy must be attributable to those counted
        # losses, never to the migration itself.
        static = churn_runs["static"]
        adaptive = churn_runs["adaptive"]
        budget = static.items_lost + adaptive.items_lost
        discrepancy = sum(
            abs(
                adaptive.items_delivered.get(name, 0)
                - static.items_delivered.get(name, 0)
            )
            for name in _stateless(churn_runs["scenario"])
        )
        assert discrepancy <= budget

    def test_sharded_matches_sequential_under_churn_and_migration(
        self, churn_runs
    ):
        assert churn_runs["sharded"] == churn_runs["adaptive"]


class TestHotPeerCostModel:
    def test_bias_only_affects_plan_cost(self, drift_runs):
        from repro.costmodel import PlanEffects

        system = drift_runs["static_sys"]
        base = system.cost_model
        biased = HotPeerCostModel(base, ["SP0"], penalty=1000.0)
        effects = PlanEffects()
        effects.add_peer("SP0", 100.0)
        effects.add_peer("SP1", 100.0)
        usage = system.deployment.usage
        assert biased.plan_cost(effects, usage) > base.plan_cost(effects, usage)
        assert biased.overloads(effects, usage) == base.overloads(effects, usage)

    def test_cost_model_restored_after_migration(self, drift_runs):
        # The surcharge wrapper must never survive a migration pass.
        system = drift_runs["adaptive_sys"]
        assert not isinstance(system.planner.cost_model, HotPeerCostModel)


class TestRebalancerKnobs:
    def test_max_migrations_caps_passes(self):
        scenario = scenario_drift()
        system = _build(scenario)
        rebalancer = Rebalancer(system, config=CONFIG, max_migrations=0)
        metrics = system.run(scenario.duration, rebalancer=rebalancer)
        assert metrics.migrations_applied == 0
        assert rebalancer.reports == []
        # Alerts still fire — only the control-plane rewrite is capped.
        assert rebalancer.detector.alerts
