"""Tests for topology churn: crashes, link failures, and rejoins."""

import pytest

from repro.network.topology import Network, TopologyError, example_topology


def triangle() -> Network:
    net = Network()
    for name in ("A", "B", "C"):
        net.add_super_peer(name, capacity=1000.0, pindex=2.0)
    net.add_link("A", "B", bandwidth=5000.0)
    net.add_link("B", "C", bandwidth=6000.0)
    net.add_link("A", "C", bandwidth=7000.0)
    return net


class TestSuperPeerRemoval:
    def test_crash_detaches_peer_and_links(self):
        net = triangle()
        torn_down = net.remove_super_peer("B")
        assert "B" not in net
        assert sorted(str(link) for link in torn_down) == ["A-B", "B-C"]
        assert not net.has_link("A", "B")
        assert not net.has_link("B", "C")
        assert net.has_link("A", "C")
        assert net.neighbors("A") == ["C"]

    def test_removed_peer_lookup(self):
        net = triangle()
        peer = net.super_peer("B")
        net.remove_super_peer("B")
        with pytest.raises(TopologyError):
            net.super_peer("B")
        assert net.super_peer("B", include_removed=True) is peer
        assert net.removed_super_peer_names() == ["B"]

    def test_unknown_and_double_removal_rejected(self):
        net = triangle()
        with pytest.raises(TopologyError):
            net.remove_super_peer("Z")
        net.remove_super_peer("B")
        with pytest.raises(TopologyError):
            net.remove_super_peer("B")

    def test_add_refuses_removed_name(self):
        net = triangle()
        net.remove_super_peer("B")
        with pytest.raises(TopologyError, match="restore_super_peer"):
            net.add_super_peer("B")

    def test_thin_peers_stay_registered(self):
        net = example_topology()
        net.remove_super_peer("SP4")
        assert net.thin_peer("P0").super_peer == "SP4"
        assert net.home_of("P0") == "SP4"


class TestSuperPeerRestore:
    def test_rejoin_restores_record_and_links(self):
        net = triangle()
        net.remove_super_peer("B")
        restored = net.restore_super_peer("B")
        assert net.super_peer("B").capacity == 1000.0
        assert net.super_peer("B").pindex == 2.0
        assert sorted(str(link) for link in restored) == ["A-B", "B-C"]
        assert net.link("A", "B").bandwidth == 5000.0
        assert net.link("B", "C").bandwidth == 6000.0

    def test_restore_of_live_peer_rejected(self):
        net = triangle()
        with pytest.raises(TopologyError):
            net.restore_super_peer("A")

    def test_link_waits_for_both_endpoints(self):
        net = triangle()
        net.remove_super_peer("A")
        net.remove_super_peer("B")
        net.restore_super_peer("A")
        # A-C comes back (C is alive), A-B cannot yet.
        assert net.has_link("A", "C")
        assert not net.has_link("A", "B")
        net.restore_super_peer("B")
        assert net.has_link("A", "B")
        assert net.has_link("B", "C")

    def test_independent_failure_not_resurrected_by_rejoin(self):
        net = triangle()
        net.remove_link("A", "B")
        net.remove_super_peer("B")
        net.restore_super_peer("B")
        # B-C crashed with B and comes back; A-B failed on its own and
        # needs an explicit restore_link.
        assert net.has_link("B", "C")
        assert not net.has_link("A", "B")
        net.restore_link("A", "B")
        assert net.has_link("A", "B")


class TestLinkChurn:
    def test_remove_and_restore_link(self):
        net = triangle()
        link = net.remove_link("B", "A")  # either orientation works
        assert str(link) == "A-B"
        assert not net.has_link("A", "B")
        assert net.removed_links() == [link]
        assert net.restore_link("A", "B") is link
        assert net.has_link("A", "B")

    def test_removed_link_lookup(self):
        net = triangle()
        link = net.remove_link("A", "B")
        with pytest.raises(TopologyError):
            net.link("A", "B")
        assert net.link("A", "B", include_removed=True) is link

    def test_double_removal_and_unknown_rejected(self):
        net = triangle()
        net.remove_link("A", "B")
        with pytest.raises(TopologyError):
            net.remove_link("A", "B")
        with pytest.raises(TopologyError):
            net.remove_link("A", "Z")

    def test_add_refuses_removed_link(self):
        net = triangle()
        net.remove_link("A", "B")
        with pytest.raises(TopologyError, match="restore_link"):
            net.add_link("A", "B")

    def test_restore_requires_live_endpoints(self):
        net = triangle()
        net.remove_link("A", "B")
        net.remove_super_peer("A")
        with pytest.raises(TopologyError, match="still removed"):
            net.restore_link("A", "B")


class TestVersionCounter:
    def test_every_mutation_bumps_version(self):
        net = triangle()
        version = net.version
        net.remove_link("A", "B")
        assert net.version == version + 1
        net.restore_link("A", "B")
        assert net.version == version + 2
        net.remove_super_peer("B")
        assert net.version == version + 3
        net.restore_super_peer("B")
        assert net.version == version + 4
