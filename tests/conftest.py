"""Shared fixtures: the paper's example queries, streams, and systems."""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import pytest

from repro.costmodel import StatisticsCatalog, StreamStatistics
from repro.network.topology import example_topology
from repro.properties import extract_properties
from repro.workload.photons import PhotonGenerator, PhotonStreamConfig
from repro.wxquery import parse_query
from repro.xmlkit import Path

#: The paper's four example subscriptions (Sections 1 and 2), verbatim
#: modulo whitespace.
Q1_TEXT = """<photons>
{ for $p in stream("photons")/photons/photon
  where $p/coord/cel/ra >= 120.0 and $p/coord/cel/ra <= 138.0
  and $p/coord/cel/dec >= -49.0 and $p/coord/cel/dec <= -40.0
  return <vela> { $p/coord/cel/ra } { $p/coord/cel/dec }
  { $p/phc } { $p/en } { $p/det_time } </vela> }
</photons>"""

Q2_TEXT = """<photons>
{ for $p in stream("photons")/photons/photon
  where $p/en >= 1.3
  and $p/coord/cel/ra >= 130.5 and $p/coord/cel/ra <= 135.5
  and $p/coord/cel/dec >= -48.0 and $p/coord/cel/dec <= -45.0
  return <rxj> { $p/coord/cel/ra } { $p/coord/cel/dec }
  { $p/en } { $p/det_time } </rxj> }
</photons>"""

Q3_TEXT = """<photons>
{ for $w in stream("photons")/photons/photon
  [coord/cel/ra >= 120.0 and coord/cel/ra <= 138.0
  and coord/cel/dec >= -49.0 and coord/cel/dec <= -40.0]
  |det_time diff 20 step 10|
  let $a := avg($w/en)
  return <avg_en> { $a } </avg_en> }
</photons>"""

Q4_TEXT = """<photons>
{ for $w in stream("photons")/photons/photon
  [coord/cel/ra >= 120.0 and coord/cel/ra <= 138.0
  and coord/cel/dec >= -49.0 and coord/cel/dec <= -40.0]
  |det_time diff 60 step 40|
  let $a := avg($w/en)
  where $a >= 1.3
  return <avg_en> { $a } </avg_en> }
</photons>"""

PAPER_QUERIES = {"Q1": Q1_TEXT, "Q2": Q2_TEXT, "Q3": Q3_TEXT, "Q4": Q4_TEXT}

PHOTON_ITEM_PATH = Path("photons/photon")


@pytest.fixture(scope="session")
def photon_config():
    return PhotonStreamConfig(seed=20060326, frequency=100.0)


@pytest.fixture(scope="session")
def photon_sample(photon_config):
    """A fixed sample of 300 photons."""
    return PhotonGenerator(photon_config).take(300)


@pytest.fixture(scope="session")
def photon_stats(photon_sample):
    return StreamStatistics.from_sample(
        "photons", PHOTON_ITEM_PATH, photon_sample, frequency=100.0
    )


@pytest.fixture(scope="session")
def catalog(photon_stats):
    cat = StatisticsCatalog()
    cat.register(photon_stats)
    return cat


@pytest.fixture(scope="session")
def paper_properties():
    """Properties of the paper's four example queries."""
    return {
        name: extract_properties(parse_query(text), name)
        for name, text in PAPER_QUERIES.items()
    }


@pytest.fixture()
def example_net():
    return example_topology()


def make_system(strategy="stream-sharing", seed=20060326, frequency=100.0, **kwargs):
    """Build a StreamGlobe over the example topology with one stream."""
    from repro.sharing import StreamGlobe

    config = PhotonStreamConfig(seed=seed, frequency=frequency)
    system = StreamGlobe(example_topology(), strategy=strategy, **kwargs)
    system.register_stream(
        "photons",
        "photons/photon",
        lambda: PhotonGenerator(config),
        frequency=frequency,
        source_peer="P0",
    )
    return system


@pytest.fixture()
def sharing_system():
    return make_system("stream-sharing")
