"""``python -m repro.analysis`` exit codes and output — the CI contract."""

from __future__ import annotations

import textwrap

from repro.analysis.cli import main


def test_code_pass_exits_zero_on_clean_tree(capsys):
    assert main(["--code", "src/repro"]) == 0
    out = capsys.readouterr().out
    assert "code lint" in out
    assert out.strip().endswith("OK")


def test_code_pass_exits_nonzero_on_seeded_violation(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(
        textwrap.dedent(
            """
            def f(items=[]):
                try:
                    return items == 1.0
                except:
                    pass
            """
        )
    )
    assert main(["--code", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "L301" in out and "L302" in out and "L303" in out
    assert f"{bad}:" in out  # pointed diagnostics carry file:line:col
    assert out.strip().endswith("FAIL")


def test_plan_pass_verifies_scenario_one(capsys):
    code = main(["--plan", "--scenario", "1", "--strategy", "stream-sharing"])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "scenario 1" in out
    assert "clean: no violations found" in out


def test_quiet_suppresses_passing_reports(capsys):
    assert main(["--code", "src/repro", "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "code lint" not in out
    assert out.strip() == "OK"
