"""``python -m repro.analysis`` exit codes and output — the CI contract."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.analysis.cli import main


def test_code_pass_exits_zero_on_clean_tree(capsys):
    assert main(["--code", "src/repro"]) == 0
    out = capsys.readouterr().out
    assert "code lint" in out
    assert out.strip().endswith("OK")


def test_code_pass_exits_nonzero_on_seeded_violation(tmp_path, capsys):
    bad = tmp_path / "bad.py"
    bad.write_text(
        textwrap.dedent(
            """
            def f(items=[]):
                try:
                    return items == 1.0
                except:
                    pass
            """
        )
    )
    assert main(["--code", str(bad)]) == 1
    out = capsys.readouterr().out
    assert "L301" in out and "L302" in out and "L303" in out
    assert f"{bad}:" in out  # pointed diagnostics carry file:line:col
    assert out.strip().endswith("FAIL")


def test_plan_pass_verifies_scenario_one(capsys):
    code = main(["--plan", "--scenario", "1", "--strategy", "stream-sharing"])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "scenario 1" in out
    assert "clean: no violations found" in out


def test_quiet_suppresses_passing_reports(capsys):
    assert main(["--code", "src/repro", "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "code lint" not in out
    assert out.strip() == "OK"


# ----------------------------------------------------------------------
# The exit-code contract (see the module docstring of repro.analysis.cli)
# ----------------------------------------------------------------------
def test_missing_code_path_exits_one_with_a_diagnostic(capsys):
    assert main(["--code", "/no/such/path"]) == 1
    out = capsys.readouterr().out
    assert "L307" in out
    assert "/no/such/path" in out
    assert "no such file or directory" in out
    assert out.strip().endswith("FAIL")


def test_python_free_code_path_exits_one(tmp_path, capsys):
    (tmp_path / "notes.txt").write_text("nothing to lint here\n")
    assert main(["--code", str(tmp_path)]) == 1
    out = capsys.readouterr().out
    assert "L308" in out
    assert out.strip().endswith("FAIL")


def test_unknown_strategy_is_a_usage_error():
    with pytest.raises(SystemExit) as exc:
        main(["--plan", "--scenario", "1", "--strategy", "wishful-thinking"])
    assert exc.value.code == 2


def test_unknown_scenario_is_a_usage_error():
    with pytest.raises(SystemExit) as exc:
        main(["--plan", "--scenario", "99"])
    assert exc.value.code == 2


def test_flow_pass_exits_zero_on_the_paper_scenario(capsys):
    code = main(["--flow", "--scenario", "1", "--strategy", "stream-sharing"])
    out = capsys.readouterr().out
    assert code == 0, out
    assert "flow analysis: scenario 1" in out
    assert out.strip().endswith("OK")


def test_shards_pass_prints_a_parseable_plan(capsys, tmp_path):
    out_file = tmp_path / "plan.json"
    code = main(
        [
            "--shards",
            "--scenario",
            "grid",
            "--strategy",
            "stream-sharing",
            "--shard-plan-out",
            str(out_file),
        ]
    )
    out = capsys.readouterr().out
    assert code == 0, out
    plan_lines = [l for l in out.splitlines() if l.startswith("SHARD-PLAN ")]
    assert len(plan_lines) == 1
    _tag, scenario, strategy, payload = plan_lines[0].split(" ", 3)
    assert (scenario, strategy) == ("grid", "stream-sharing")
    plan = json.loads(payload)
    assert plan["certified"]
    assert len(plan["shards"]) >= 2  # the acceptance bar
    # --shard-plan-out wrote the same certificate to disk.
    assert json.loads(out_file.read_text()) == plan


def test_churn_pass_revalidates_certificates(capsys):
    code = main(["--churn", "--strategy", "stream-sharing", "--quiet"])
    out = capsys.readouterr().out
    assert code == 0, out
    assert out.strip() == "OK"
