"""Unit tests for the WXQuery parser (Definition 2.1)."""

from fractions import Fraction

import pytest

from tests.conftest import PAPER_QUERIES
from repro.wxquery import (
    DirectElement,
    EmptyElement,
    EnclosedExpr,
    FLWRExpr,
    ForClause,
    IfExpr,
    LetClause,
    ParseError,
    PathOutput,
    SequenceExpr,
    StreamSource,
    VarOutput,
    parse_query,
)
from repro.xmlkit import Path


def flwr_of(text):
    query = parse_query(text)
    body = query.body
    assert isinstance(body, DirectElement)
    enclosed = body.content[0]
    assert isinstance(enclosed, EnclosedExpr)
    assert isinstance(enclosed.body, FLWRExpr)
    return enclosed.body


class TestElementConstructors:
    def test_empty_element(self):
        assert parse_query("<photons/>").body == EmptyElement("photons")

    def test_nested_constructors(self):
        body = parse_query("<a><b/><c><d/></c></a>").body
        assert isinstance(body, DirectElement)
        assert isinstance(body.content[0], EmptyElement)
        assert isinstance(body.content[1], DirectElement)

    def test_mismatched_close_tag(self):
        with pytest.raises(ParseError):
            parse_query("<a></b>")

    def test_unterminated_element(self):
        with pytest.raises(ParseError):
            parse_query("<a><b/>")

    def test_raw_text_in_constructor_rejected(self):
        with pytest.raises(ParseError):
            parse_query("<a>words</a>")


class TestFLWR:
    def test_minimal_for(self):
        flwr = flwr_of('<r>{ for $p in stream("s")/root/item return $p }</r>')
        (clause,) = flwr.clauses
        assert isinstance(clause, ForClause)
        assert clause.var == "p"
        assert clause.source == StreamSource("stream", "s")
        assert clause.path == Path("root/item")
        assert flwr.return_expr == VarOutput("p")

    def test_where_clause(self):
        flwr = flwr_of(
            '<r>{ for $p in stream("s")/a/b where $p/x >= 1 and $p/y <= 2.5 return $p }</r>'
        )
        assert flwr.where is not None
        assert len(flwr.where.atoms) == 2
        assert flwr.where.atoms[0].op == ">="
        assert flwr.where.atoms[1].constant == Fraction("2.5")

    def test_negative_constants(self):
        flwr = flwr_of('<r>{ for $p in stream("s")/a/b where $p/x >= -49.0 return $p }</r>')
        assert flwr.where.atoms[0].constant == Fraction("-49")

    def test_variable_comparison_with_offset(self):
        flwr = flwr_of(
            '<r>{ for $p in stream("s")/a/b where $p/x <= $p/y + 3 return $p }</r>'
        )
        atom = flwr.where.atoms[0]
        assert atom.right_operand is not None
        assert atom.constant == Fraction(3)

    def test_variable_comparison_with_negative_offset(self):
        flwr = flwr_of(
            '<r>{ for $p in stream("s")/a/b where $p/x <= $p/y - 3 return $p }</r>'
        )
        assert flwr.where.atoms[0].constant == Fraction(-3)

    def test_path_conditions_split_off(self):
        flwr = flwr_of(
            '<r>{ for $w in stream("s")/a/b[x >= 1 and y <= 2] return $w }</r>'
        )
        (clause,) = flwr.clauses
        assert clause.path == Path("a/b")
        assert len(clause.path_condition.atoms) == 2
        assert clause.path_condition.atoms[0].left.var is None  # implicit

    def test_path_condition_on_intermediate_step_rejected(self):
        with pytest.raises(ParseError):
            parse_query('<r>{ for $w in stream("s")/a[x >= 1]/b return $w }</r>')

    def test_chained_for_over_variable(self):
        flwr = flwr_of(
            '<r>{ for $p in stream("s")/a/b for $q in $p/c return $q }</r>'
        )
        second = flwr.clauses[1]
        assert second.source == "p"
        assert second.path == Path("c")

    def test_let_aggregation(self):
        flwr = flwr_of(
            '<r>{ for $w in stream("s")/a/b |count 10| let $a := avg($w/en) return $a }</r>'
        )
        let = flwr.clauses[1]
        assert isinstance(let, LetClause)
        assert (let.var, let.function, let.source_var, let.path) == (
            "a", "avg", "w", Path("en"),
        )

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(ParseError):
            parse_query(
                '<r>{ for $w in stream("s")/a |count 2| let $a := median($w/x) return $a }</r>'
            )

    def test_missing_return_rejected(self):
        with pytest.raises(ParseError):
            parse_query('<r>{ for $p in stream("s")/a }</r>')

    def test_doc_source_parses(self):
        flwr = flwr_of('<r>{ for $d in doc("ref")/a return $d }</r>')
        assert flwr.clauses[0].source == StreamSource("doc", "ref")


class TestWindows:
    def test_count_window_with_step(self):
        flwr = flwr_of('<r>{ for $w in stream("s")/a/b |count 20 step 10| return $w }</r>')
        window = flwr.clauses[0].window
        assert (window.kind, window.size, window.step) == ("count", 20, 10)

    def test_count_window_default_step(self):
        flwr = flwr_of('<r>{ for $w in stream("s")/a/b |count 20| return $w }</r>')
        window = flwr.clauses[0].window
        assert window.step is None and window.effective_step == 20

    def test_time_window(self):
        flwr = flwr_of(
            '<r>{ for $w in stream("s")/a/b |det_time diff 60 step 40| return $w }</r>'
        )
        window = flwr.clauses[0].window
        assert (window.kind, str(window.reference)) == ("diff", "det_time")
        assert (window.size, window.step) == (60, 40)

    def test_window_reference_with_path(self):
        flwr = flwr_of('<r>{ for $w in stream("s")/a/b |t/s diff 5| return $w }</r>')
        assert flwr.clauses[0].window.reference == Path("t/s")

    def test_unterminated_window(self):
        with pytest.raises(ParseError):
            parse_query('<r>{ for $w in stream("s")/a |count 20 return $w }</r>')


class TestOtherExpressions:
    def test_if_expression(self):
        flwr = flwr_of(
            '<r>{ for $w in stream("s")/a/b |count 4| let $a := avg($w/x) '
            "return if $a >= 1 then <hi/> else <lo/> }</r>"
        )
        assert isinstance(flwr.return_expr, IfExpr)

    def test_sequence(self):
        flwr = flwr_of(
            '<r>{ for $p in stream("s")/a/b return ($p/x, $p/y) }</r>'
        )
        seq = flwr.return_expr
        assert isinstance(seq, SequenceExpr)
        assert seq.items == (PathOutput("p", Path("x")), PathOutput("p", Path("y")))

    def test_empty_sequence(self):
        flwr = flwr_of('<r>{ for $p in stream("s")/a/b return () }</r>')
        assert flwr.return_expr == SequenceExpr(())

    def test_path_output(self):
        flwr = flwr_of('<r>{ for $p in stream("s")/a/b return $p/c/d }</r>')
        assert flwr.return_expr == PathOutput("p", Path("c/d"))

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_query("<a/> <b/>")


class TestPaperQueries:
    @pytest.mark.parametrize("name", ["Q1", "Q2", "Q3", "Q4"])
    def test_parses(self, name):
        query = parse_query(PAPER_QUERIES[name])
        assert query.streams() == ["photons"]

    def test_q1_structure(self):
        flwr = flwr_of(PAPER_QUERIES["Q1"])
        assert len(flwr.where.atoms) == 4
        assert isinstance(flwr.return_expr, DirectElement)
        assert flwr.return_expr.tag == "vela"

    def test_q4_structure(self):
        flwr = flwr_of(PAPER_QUERIES["Q4"])
        clause = flwr.clauses[0]
        assert clause.window.kind == "diff"
        assert len(clause.path_condition.atoms) == 4
        assert len(flwr.where.atoms) == 1  # the $a >= 1.3 filter
