"""Unit tests for the WXQuery tokenizer."""

import pytest

from repro.wxquery import LexError, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)[:-1]]  # drop EOF


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


class TestTags:
    def test_open_close(self):
        assert kinds("<photons></photons>") == ["OPEN_TAG", "CLOSE_TAG"]
        assert values("<photons></photons>") == ["photons", "photons"]

    def test_empty_tag(self):
        tokens = tokenize("<br/>")
        assert tokens[0].kind == "EMPTY_TAG" and tokens[0].value == "br"

    def test_lt_not_a_tag(self):
        assert kinds("$a < 3") == ["VARIABLE", "LT", "NUMBER"]

    def test_le_operator(self):
        assert kinds("$a <= 3") == ["VARIABLE", "LE", "NUMBER"]

    def test_tag_with_dash_and_digits(self):
        assert tokenize("<avg_en>")[0].value == "avg_en"


class TestOperatorsAndLiterals:
    def test_comparisons(self):
        assert kinds("= < <= > >= !=") == ["EQ", "LT", "LE", "GT", "GE", "NE"]

    def test_assign(self):
        assert kinds(":=") == ["ASSIGN"]

    def test_bare_colon_rejected(self):
        with pytest.raises(LexError):
            tokenize("a : b")

    def test_bare_bang_rejected(self):
        with pytest.raises(LexError):
            tokenize("a ! b")

    def test_numbers(self):
        assert values("12 3.5 0.25") == ["12", "3.5", "0.25"]

    def test_decimal_needs_digits(self):
        with pytest.raises(LexError):
            tokenize("1. ")

    def test_strings(self):
        tokens = tokenize('"photons" \'doc\'')
        assert [t.value for t in tokens[:-1]] == ["photons", "doc"]

    def test_unterminated_string(self):
        with pytest.raises(LexError):
            tokenize('"oops')

    def test_variables(self):
        tokens = tokenize("$p $long_name")
        assert [t.value for t in tokens[:-1]] == ["p", "long_name"]

    def test_variable_needs_name(self):
        with pytest.raises(LexError):
            tokenize("$ p")

    def test_punctuation(self):
        assert kinds("{ } ( ) [ ] | / , + -") == [
            "LBRACE", "RBRACE", "LPAREN", "RPAREN", "LBRACKET", "RBRACKET",
            "PIPE", "SLASH", "COMMA", "PLUS", "MINUS",
        ]

    def test_unexpected_character(self):
        with pytest.raises(LexError):
            tokenize("a # b")


class TestStructure:
    def test_positions(self):
        tokens = tokenize("for\n  $p")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_eof_always_present(self):
        assert tokenize("")[-1].kind == "EOF"
        assert tokenize("   ")[-1].kind == "EOF"

    def test_comments_skipped(self):
        assert kinds("for (: note :) $p") == ["NAME", "VARIABLE"]

    def test_nested_comments(self):
        assert kinds("(: a (: b :) c :) $x") == ["VARIABLE"]

    def test_unterminated_comment(self):
        with pytest.raises(LexError):
            tokenize("(: open")

    def test_window_tokens(self):
        assert kinds("|det_time diff 20 step 10|") == [
            "PIPE", "NAME", "NAME", "NUMBER", "NAME", "NUMBER", "PIPE",
        ]

    def test_full_query_tokenizes(self):
        from tests.conftest import PAPER_QUERIES

        for text in PAPER_QUERIES.values():
            assert tokenize(text)[-1].kind == "EOF"
