"""Unit tests for size/freq estimation, usage bookkeeping, and C(P)."""

import math

import pytest

from tests.conftest import PAPER_QUERIES
from repro.costmodel import (
    AGGREGATE_ITEM_SIZE,
    CostModel,
    NetworkUsage,
    PlanEffects,
    estimate_stream_rate,
)
from repro.costmodel.model import _overload_penalty
from repro.network.topology import example_topology
from repro.properties import extract_properties
from repro.wxquery import parse_query


def rate_of(name, catalog):
    properties = extract_properties(parse_query(PAPER_QUERIES[name]), name)
    return estimate_stream_rate(properties.single_input(), catalog)


class TestEstimateStreamRate:
    def test_raw_stream(self, catalog, photon_stats):
        from repro.properties import raw_stream_properties

        rate = estimate_stream_rate(
            raw_stream_properties("photons", "photons/photon").single_input(), catalog
        )
        assert rate.size == photon_stats.avg_item_size
        assert rate.frequency == 100.0

    def test_selection_scales_frequency_not_size(self, catalog, photon_stats):
        rate = rate_of("Q1", catalog)
        assert rate.frequency < photon_stats.frequency
        # Q1 also projects, so compare against the projected size.
        projection = extract_properties(
            parse_query(PAPER_QUERIES["Q1"]), "Q1"
        ).single_input().projection
        assert rate.size == pytest.approx(
            photon_stats.projected_size(projection.output_elements)
        )

    def test_q2_rarer_than_q1(self, catalog):
        assert rate_of("Q2", catalog).frequency < rate_of("Q1", catalog).frequency

    def test_aggregate_size_independent_of_input(self, catalog):
        rate = rate_of("Q3", catalog)
        assert rate.size == AGGREGATE_ITEM_SIZE["avg"]

    def test_time_window_update_frequency(self, catalog):
        # det_time advances ~1 unit/s; Q3 steps every 10 units → ~0.1/s.
        assert rate_of("Q3", catalog).frequency == pytest.approx(0.1, rel=0.15)

    def test_filtered_aggregate_is_rarer(self, catalog):
        q4 = rate_of("Q4", catalog)
        # Unfiltered Q4 would emit at ~1/40 per second.
        assert q4.frequency < 1.0 / 40.0

    def test_bits_per_second(self, catalog):
        rate = rate_of("Q1", catalog)
        assert rate.bits_per_second == pytest.approx(rate.size * 8 * rate.frequency)

    def test_count_window_frequency(self, catalog):
        text = (
            '<photons>{ for $w in stream("photons")/photons/photon '
            "|count 50 step 25| let $a := sum($w/en) "
            "return <s> { $a } </s> }</photons>"
        )
        properties = extract_properties(parse_query(text), "cw")
        rate = estimate_stream_rate(properties.single_input(), catalog)
        assert rate.frequency == pytest.approx(100.0 / 25.0)

    def test_window_contents_rate(self, catalog, photon_stats):
        text = (
            '<photons>{ for $w in stream("photons")/photons/photon '
            "|count 50 step 25| return $w }</photons>"
        )
        properties = extract_properties(parse_query(text), "wc")
        rate = estimate_stream_rate(properties.single_input(), catalog)
        assert rate.frequency == pytest.approx(100.0 / 25.0)
        assert rate.size > 40 * photon_stats.avg_item_size


class TestNetworkUsage:
    def test_fresh_usage_fully_available(self, example_net):
        usage = NetworkUsage(example_net)
        link = example_net.links()[0]
        assert usage.available_bandwidth_fraction(link) == 1.0
        assert usage.available_load_fraction("SP0") == 1.0

    def test_accumulation(self, example_net):
        usage = NetworkUsage(example_net)
        link = example_net.link("SP4", "SP5")
        usage.add_link_traffic(link, 25_000_000.0)
        usage.add_link_traffic(link, 25_000_000.0)
        assert usage.used_bandwidth_fraction(link) == pytest.approx(0.5)
        assert usage.available_bandwidth_fraction(link) == pytest.approx(0.5)

    def test_overcommit_clamps_availability(self, example_net):
        usage = NetworkUsage(example_net)
        usage.add_peer_work("SP0", 2_000_000.0)
        assert usage.available_load_fraction("SP0") == 0.0

    def test_copy_is_independent(self, example_net):
        usage = NetworkUsage(example_net)
        clone = usage.copy()
        clone.add_peer_work("SP0", 1000.0)
        assert usage.peer_work("SP0") == 0.0


class TestCostFunction:
    def test_gamma_validated(self, example_net):
        with pytest.raises(ValueError):
            CostModel(example_net, gamma=1.5)

    def test_empty_plan_costs_nothing(self, example_net):
        model = CostModel(example_net)
        assert model.plan_cost(PlanEffects(), NetworkUsage(example_net)) == 0.0

    def test_cost_proportional_to_traffic(self, example_net):
        model = CostModel(example_net, gamma=1.0)
        usage = NetworkUsage(example_net)
        link = example_net.link("SP4", "SP5")
        small, large = PlanEffects(), PlanEffects()
        small.add_link(link, 1_000_000.0)
        large.add_link(link, 2_000_000.0)
        assert model.plan_cost(large, usage) == pytest.approx(
            2 * model.plan_cost(small, usage)
        )

    def test_gamma_weights_components(self, example_net):
        usage = NetworkUsage(example_net)
        link = example_net.link("SP4", "SP5")
        effects = PlanEffects()
        effects.add_link(link, 10_000_000.0)
        effects.add_peer("SP4", 100_000.0)
        traffic_only = CostModel(example_net, gamma=1.0).plan_cost(effects, usage)
        load_only = CostModel(example_net, gamma=0.0).plan_cost(effects, usage)
        balanced = CostModel(example_net, gamma=0.5).plan_cost(effects, usage)
        assert balanced == pytest.approx(0.5 * traffic_only + 0.5 * load_only)

    def test_overload_penalty_exponential(self):
        assert _overload_penalty(0.5, 0.6) == 0.0
        over = 0.3
        assert _overload_penalty(0.8, 0.5) == pytest.approx(over * math.exp(over))

    def test_penalty_applied_beyond_available(self, example_net):
        model = CostModel(example_net, gamma=1.0)
        usage = NetworkUsage(example_net)
        link = example_net.link("SP4", "SP5")
        usage.add_link_traffic(link, 90_000_000.0)  # 90% used
        effects = PlanEffects()
        effects.add_link(link, 20_000_000.0)  # pushes to 110%
        cost = model.plan_cost(effects, usage)
        u_b = 0.2
        over = 0.1
        assert cost == pytest.approx(u_b + over * math.exp(over))

    def test_overloads_predicate(self, example_net):
        model = CostModel(example_net)
        usage = NetworkUsage(example_net)
        link = example_net.link("SP4", "SP5")
        fine, too_much = PlanEffects(), PlanEffects()
        fine.add_link(link, 50_000_000.0)
        too_much.add_link(link, 150_000_000.0)
        assert not model.overloads(fine, usage)
        assert model.overloads(too_much, usage)

    def test_peer_overload_detected(self, example_net):
        model = CostModel(example_net)
        usage = NetworkUsage(example_net)
        usage.add_peer_work("SP4", 900_000.0)
        effects = PlanEffects()
        effects.add_peer("SP4", 200_000.0)
        assert model.overloads(effects, usage)

    def test_effects_merge(self, example_net):
        link = example_net.link("SP4", "SP5")
        first, second = PlanEffects(), PlanEffects()
        first.add_link(link, 10.0)
        first.add_peer("SP4", 1.0)
        second.add_link(link, 5.0)
        second.add_peer("SP5", 2.0)
        first.merge(second)
        assert first.link_bits[link] == 15.0
        assert first.peer_work == {"SP4": 1.0, "SP5": 2.0}
