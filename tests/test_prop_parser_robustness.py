"""Robustness properties of the WXQuery front end (hypothesis).

A parser facing arbitrary input must either succeed or raise its own
diagnostic error types — never an unrelated exception, never a hang.
A parser facing *mutations* of valid queries must behave likewise.
"""

import string

from hypothesis import given, settings, strategies as st

from tests.conftest import PAPER_QUERIES
from repro.wxquery import (
    AnalysisError,
    LexError,
    ParseError,
    analyze,
    parse_query,
    tokenize,
    unparse,
)

FRONT_END_ERRORS = (LexError, ParseError)

arbitrary_text = st.text(
    alphabet=string.printable, min_size=0, max_size=200
)

query_fragments = st.sampled_from(
    [
        "for", "$p", "in", 'stream("photons")', "/photons/photon",
        "where", "$p/en", ">=", "1.3", "and", "return", "<r>", "</r>",
        "{", "}", "(", ")", "[", "]", "|count 10|", "|det_time diff 5|",
        "let", "$a", ":=", "avg($w/en)", "<vela/>", "if", "then", "else",
        ",", "-49.0", "$p/coord/cel/ra",
    ]
)

fragment_soup = st.lists(query_fragments, min_size=1, max_size=25).map(" ".join)


class TestLexerRobustness:
    @given(arbitrary_text)
    @settings(max_examples=300, deadline=None)
    def test_tokenize_total(self, text):
        try:
            tokens = tokenize(text)
        except LexError:
            return
        assert tokens[-1].kind == "EOF"

    @given(fragment_soup)
    @settings(max_examples=300, deadline=None)
    def test_fragment_soup_tokenizes(self, text):
        tokens = tokenize(text)
        assert tokens[-1].kind == "EOF"


class TestParserRobustness:
    @given(arbitrary_text)
    @settings(max_examples=300, deadline=None)
    def test_parse_raises_only_front_end_errors(self, text):
        try:
            parse_query(text)
        except FRONT_END_ERRORS:
            pass

    @given(fragment_soup)
    @settings(max_examples=300, deadline=None)
    def test_fragment_soup_parses_or_diagnoses(self, text):
        try:
            query = parse_query(text)
        except FRONT_END_ERRORS:
            return
        # Whatever parsed must unparse and re-parse to the same AST.
        assert parse_query(unparse(query)).body == query.body


class TestMutationRobustness:
    @given(
        st.sampled_from(sorted(PAPER_QUERIES)),
        st.integers(min_value=0, max_value=400),
        st.sampled_from(list(" ()[]{}<>/$|=.")),
    )
    @settings(max_examples=300, deadline=None)
    def test_single_character_mutations(self, name, position, replacement):
        text = PAPER_QUERIES[name]
        position %= len(text)
        mutated = text[:position] + replacement + text[position + 1:]
        try:
            query = parse_query(mutated)
            analyze(query)
        except FRONT_END_ERRORS:
            pass
        except AnalysisError:
            pass

    @given(st.sampled_from(sorted(PAPER_QUERIES)), st.integers(0, 400))
    @settings(max_examples=200, deadline=None)
    def test_truncations(self, name, cut):
        text = PAPER_QUERIES[name]
        cut %= len(text)
        try:
            parse_query(text[:cut])
        except FRONT_END_ERRORS:
            pass
