"""Unit tests for the sliding windower, reorder buffer, and window
contents operator."""

from fractions import Fraction

import pytest

from repro.engine import ReorderBuffer, SlidingWindower, WindowContentsOperator
from repro.engine.operators import EngineError
from repro.properties import WindowContentsSpec, WindowSpec
from repro.xmlkit import Element, Path, element

ITEM = Path("s/item")


class TestSlidingWindower:
    def test_tumbling_windows(self):
        windower = SlidingWindower(size=2.0, step=2.0)
        emitted = []
        for position in range(7):
            emitted.extend(windower.add(float(position), position))
        assert [w.contents for w in emitted] == [(0, 1), (2, 3), (4, 5)]

    def test_sliding_windows_figure_5(self):
        """Q3's window |diff 20 step 10| over positions 0..59."""
        windower = SlidingWindower(size=20.0, step=10.0)
        emitted = []
        for position in range(0, 60):
            emitted.extend(windower.add(float(position), position))
        assert [(w.start, w.end) for w in emitted] == [
            (0.0, 20.0), (10.0, 30.0), (20.0, 40.0), (30.0, 50.0),
        ]
        assert emitted[1].contents == tuple(range(10, 30))

    def test_window_indices_sequential(self):
        windower = SlidingWindower(size=1.0, step=1.0)
        emitted = []
        for position in range(5):
            emitted.extend(windower.add(float(position), position))
        assert [w.index for w in emitted] == [0, 1, 2, 3]

    def test_empty_windows_emitted(self):
        windower = SlidingWindower(size=1.0, step=1.0)
        emitted = windower.add(0.0, "a")
        assert emitted == []
        emitted = windower.add(5.0, "b")  # jumps over [1,2),[2,3),[3,4),[4,5)
        assert [len(w) for w in emitted] == [1, 0, 0, 0, 0]

    def test_out_of_order_rejected(self):
        windower = SlidingWindower(size=2.0, step=1.0)
        windower.add(5.0, "a")
        with pytest.raises(EngineError):
            windower.add(4.0, "b")

    def test_flush_emits_partial_windows(self):
        windower = SlidingWindower(size=4.0, step=2.0)
        for position in range(3):
            windower.add(float(position), position)
        flushed = windower.flush()
        assert flushed[0].contents == (0, 1, 2)

    def test_invalid_parameters(self):
        with pytest.raises(EngineError):
            SlidingWindower(size=0, step=1)
        with pytest.raises(EngineError):
            SlidingWindower(size=1, step=0)

    def test_overlapping_windows_share_items(self):
        windower = SlidingWindower(size=4.0, step=2.0)
        emitted = []
        for position in range(9):
            emitted.extend(windower.add(float(position), position))
        assert emitted[0].contents == (0, 1, 2, 3)
        assert emitted[1].contents == (2, 3, 4, 5)


class TestReorderBuffer:
    def test_orders_within_capacity(self):
        buffer = ReorderBuffer(capacity=3)
        released = []
        for position in (3.0, 1.0, 2.0, 4.0):
            released.extend(buffer.add(position, position))
        released.extend(buffer.flush())
        assert [p for p, _ in released] == [1.0, 2.0, 3.0, 4.0]

    def test_overflow_releases_smallest(self):
        buffer = ReorderBuffer(capacity=2)
        assert buffer.add(5.0, "a") == []
        assert buffer.add(3.0, "b") == []
        released = buffer.add(4.0, "c")
        assert released == [(3.0, "b")]
        assert len(buffer) == 2

    def test_stable_for_equal_positions(self):
        buffer = ReorderBuffer(capacity=1)
        buffer.add(1.0, "first")
        released = buffer.add(1.0, "second")
        assert released == [(1.0, "first")]

    def test_capacity_validated(self):
        with pytest.raises(EngineError):
            ReorderBuffer(capacity=0)


class TestWindowContentsOperator:
    def _items(self, count):
        return [
            element("item", Element("t", text=float(i)), Element("v", text=i))
            for i in range(count)
        ]

    def test_count_window(self):
        spec = WindowContentsSpec(WindowSpec("count", Fraction(2), Fraction(2)))
        op = WindowContentsOperator(spec, ITEM)
        out = []
        for item in self._items(5):
            out.extend(op.process(item))
        assert len(out) == 2
        assert out[0].tag == "window"
        assert [c.find(["v"]).text for c in out[0].children] == ["0", "1"]

    def test_time_window(self):
        spec = WindowContentsSpec(
            WindowSpec("diff", Fraction(2), Fraction(2), ITEM / "t")
        )
        op = WindowContentsOperator(spec, ITEM)
        out = []
        for item in self._items(5):
            out.extend(op.process(item))
        assert len(out) == 2  # [0,2) and [2,4) complete

    def test_item_without_reference_skipped(self):
        spec = WindowContentsSpec(
            WindowSpec("diff", Fraction(2), Fraction(2), ITEM / "t")
        )
        op = WindowContentsOperator(spec, ITEM)
        assert op.process(element("item", Element("v", text=1))) == []

    def test_flush(self):
        spec = WindowContentsSpec(WindowSpec("count", Fraction(10), Fraction(10)))
        op = WindowContentsOperator(spec, ITEM)
        for item in self._items(3):
            op.process(item)
        (window,) = op.flush()
        assert len(window.children) == 3
