"""Experiment E10 (extension) — registration scalability with network size.

The paper's future-work section raises scalability ("a hierarchical
network organization with several interconnected subnets where each
subnet is optimized separately").  This bench quantifies the baseline
problem on flat networks: how the stream-sharing registration cost
(visited nodes, matched candidates, simulated latency) grows with the
super-peer count at a fixed per-network query load.
"""

import pytest

from conftest import write_result
from repro.bench import series_table
from repro.bench.harness import run_scenario
from repro.workload.scenarios import scenario_grid

GRIDS = ((3, 3), (4, 4), (5, 5))
QUERIES = 40


@pytest.fixture(scope="module")
def scaling_runs():
    return {
        f"{rows}x{cols}": run_scenario(
            scenario_grid(rows, cols, QUERIES), "stream-sharing", execute=False
        )
        for rows, cols in GRIDS
    }


def avg_visited(run):
    plans = [r.plan for r in run.registrations if r.plan is not None]
    return sum(p.visited_nodes for p in plans) / len(plans)


def avg_matches(run):
    plans = [r.plan for r in run.registrations if r.plan is not None]
    return sum(p.candidate_matches for p in plans) / len(plans)


class TestScalability:
    def test_all_queries_accepted(self, scaling_runs):
        for run in scaling_runs.values():
            assert run.accepted == QUERIES

    def test_search_is_workload_bound_not_network_bound(self, scaling_runs):
        """The pruned breadth-first search visits only nodes reachable
        through *matched* streams, so the visited count tracks the
        workload's sharing structure, not the backbone size — the
        mechanism that keeps registration 'manageable' (Section 5's
        containment remark).  On all three grids the average stays far
        below the peer count and nearly constant."""
        visited = {name: avg_visited(run) for name, run in scaling_runs.items()}
        peers = {"3x3": 9, "4x4": 16, "5x5": 25}
        for name, count in visited.items():
            assert count < peers[name] / 2
        spread = max(visited.values()) - min(visited.values())
        assert spread < 1.0

    def test_latency_grows_sublinearly_in_peers(self, scaling_runs):
        """Pruning keeps the search well below whole-network visits:
        average registration latency grows slower than the peer count."""
        latencies = {
            name: run.registration_stats_ms()[0]
            for name, run in scaling_runs.items()
        }
        peers = {"3x3": 9, "4x4": 16, "5x5": 25}
        growth = latencies["5x5"] / latencies["3x3"]
        peer_growth = peers["5x5"] / peers["3x3"]
        assert growth < peer_growth

    def test_deployments_healthy(self, scaling_runs):
        from repro.sharing.validate import validate_deployment

        for run in scaling_runs.values():
            assert validate_deployment(run.system.deployment) == []

    def test_write_report(self, scaling_runs):
        series = {
            name: {
                "avg visited nodes": avg_visited(run),
                "avg matches": avg_matches(run),
                "avg registration ms": run.registration_stats_ms()[0],
            }
            for name, run in scaling_runs.items()
        }
        write_result(
            "scalability.txt",
            series_table("Metric", f"{QUERIES} queries, stream sharing", series),
        )


def test_scalability_regeneration(benchmark):
    def regenerate():
        return run_scenario(
            scenario_grid(4, 4, QUERIES), "stream-sharing", execute=False
        )

    run = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    assert run.accepted == QUERIES
