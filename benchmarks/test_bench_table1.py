"""Experiment E5 — Table 1: query registration times.

Reproduced claim (Section 4): "The stream sharing approach stays within
a factor of 3 of the other two much simpler approaches", in both
scenarios, for average registration latency — acceptable because
continuous queries stay registered for long periods.
"""

import pytest

from conftest import STRATEGIES, write_result
from repro.bench import registration_table
from repro.bench.harness import run_scenario
from repro.workload.scenarios import scenario_one, scenario_two


@pytest.fixture(scope="module")
def registration_runs():
    return {
        "1": {
            strategy: run_scenario(scenario_one(), strategy, execute=False)
            for strategy in STRATEGIES
        },
        "2": {
            strategy: run_scenario(scenario_two(), strategy, execute=False)
            for strategy in STRATEGIES
        },
    }


class TestTable1Shapes:
    @pytest.mark.parametrize("scenario", ["1", "2"])
    def test_sharing_within_factor_three(self, registration_runs, scenario):
        runs = registration_runs[scenario]
        sharing_avg = runs["stream-sharing"].registration_stats_ms()[0]
        for baseline in ("data-shipping", "query-shipping"):
            baseline_avg = runs[baseline].registration_stats_ms()[0]
            assert sharing_avg <= 3.0 * baseline_avg
            assert sharing_avg > baseline_avg  # the search is not free

    @pytest.mark.parametrize("scenario", ["1", "2"])
    def test_stats_ordered(self, registration_runs, scenario):
        for run in registration_runs[scenario].values():
            average, minimum, maximum = run.registration_stats_ms()
            assert minimum <= average <= maximum

    def test_larger_scenario_slower_for_sharing(self, registration_runs):
        """More streams and peers mean a larger searched region."""
        small = registration_runs["1"]["stream-sharing"].registration_stats_ms()[0]
        large = registration_runs["2"]["stream-sharing"].registration_stats_ms()[0]
        assert large > small

    def test_sharing_max_grows_with_deployment(self, registration_runs):
        """Later registrations see more candidate streams: the maximum
        exceeds the minimum substantially (paper: 5025 vs 509 ms)."""
        _, minimum, maximum = registration_runs["1"][
            "stream-sharing"
        ].registration_stats_ms()
        assert maximum > 1.5 * minimum

    def test_write_report(self, registration_runs):
        write_result("table1.txt", registration_table(registration_runs))


def test_table1_regeneration(benchmark):
    """Benchmark the Table 1 regeneration (registration only)."""
    def regenerate():
        return {
            strategy: run_scenario(scenario_one(), strategy, execute=False)
            for strategy in STRATEGIES
        }

    runs = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    assert all(run.accepted == 25 for run in runs.values())
