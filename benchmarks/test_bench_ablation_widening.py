"""Experiment E9 (extension) — stream widening (paper Section 6).

The paper's announced enhancement: streams that do not contain all the
data a new query needs can be *altered* (widened) in the network and
then shared.  Findings of this ablation (scenario 1):

* **safety** — delivered results are bit-identical with and without
  widening, always;
* **the trade is γ's trade** — under the default balanced cost
  (γ = 0.5) widening buys *computational load* (compensations run on
  thinner shared streams) at the price of *traffic* (widened streams
  carry more items over their whole route); under traffic-only costing
  (γ = 1.0) widening correctly never fires and traffic is unchanged.
"""

import pytest

from conftest import write_result
from repro.bench import series_table
from repro.bench.harness import run_scenario
from repro.workload.scenarios import scenario_one


@pytest.fixture(scope="module")
def baseline():
    return run_scenario(scenario_one(), "stream-sharing")


@pytest.fixture(scope="module")
def widened():
    return run_scenario(scenario_one(), "stream-sharing", enable_widening=True)


def widening_count(run):
    return sum(
        1
        for result in run.registrations
        if result.plan is not None
        and any(plan.widening is not None for plan in result.plan.inputs)
    )


def total_work(run):
    return sum(run.metrics.peer_work.values())


class TestWideningAblation:
    def test_all_queries_accepted(self, widened):
        assert widened.rejected == 0

    def test_results_bit_identical(self, baseline, widened):
        """Widening must never change what subscribers receive."""
        assert widened.metrics.items_delivered == baseline.metrics.items_delivered

    def test_widening_actually_fires(self, widened):
        assert widening_count(widened) >= 3

    def test_widening_buys_load_with_traffic(self, baseline, widened):
        """Under γ = 0.5, widening trades traffic for computational
        load — total peer work must drop."""
        assert total_work(widened) < total_work(baseline)

    def test_traffic_only_costing_disables_the_trade(self):
        """Under γ = 1.0 the cost function only sees traffic, so the
        widening variants can never win and traffic is unchanged."""
        base = run_scenario(scenario_one(), "stream-sharing", gamma=1.0)
        wide = run_scenario(
            scenario_one(), "stream-sharing", gamma=1.0, enable_widening=True
        )
        assert wide.total_traffic_mbit() == pytest.approx(
            base.total_traffic_mbit(), rel=0.01
        )

    def test_registration_overhead_bounded(self, widened, baseline):
        widened_avg = widened.registration_stats_ms()[0]
        baseline_avg = baseline.registration_stats_ms()[0]
        assert widened_avg <= baseline_avg * 2.0

    def test_write_report(self, baseline, widened):
        series = {
            "sharing (paper)": {
                "total MBit": baseline.total_traffic_mbit(),
                "total work (M units)": total_work(baseline) / 1e6,
                "widened plans": 0.0,
            },
            "sharing + widening": {
                "total MBit": widened.total_traffic_mbit(),
                "total work (M units)": total_work(widened) / 1e6,
                "widened plans": float(widening_count(widened)),
            },
        }
        write_result(
            "ablation_widening.txt",
            series_table("Metric", "scenario 1, gamma=0.5", series),
        )


def test_widening_regeneration(benchmark):
    def regenerate():
        return run_scenario(
            scenario_one(), "stream-sharing", enable_widening=True, execute=False
        )

    run = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    assert run.accepted == 25
