"""Experiment E1/E2 — Figure 6: extended example scenario.

8 super-peers, 1 data stream, 25 template queries.  Reproduced claims
(Section 4):

* query shipping causes a massive CPU peak at the stream source SP4;
* data shipping causes much more network traffic, and relatively high
  CPU over the whole range of super-peers (forwarding);
* stream sharing distributes load better than query shipping, causes
  less overall CPU than data shipping, and greatly reduces traffic.
"""

import pytest

from conftest import write_result
from repro.bench import cpu_report, traffic_report
from repro.bench.harness import run_scenario
from repro.workload.scenarios import scenario_one

SOURCE_PEER = "SP4"


class TestFigure6Shapes:
    def test_query_shipping_cpu_peak_at_source(self, scenario1_runs):
        cpu = scenario1_runs["query-shipping"].cpu_by_peer()
        peak = max(cpu, key=cpu.get)
        others = [v for k, v in cpu.items() if k != SOURCE_PEER]
        assert peak == SOURCE_PEER
        assert cpu[SOURCE_PEER] > 4 * max(others)

    def test_data_shipping_spreads_cpu(self, scenario1_runs):
        """Forwarding the full stream loads most peers noticeably."""
        cpu = scenario1_runs["data-shipping"].cpu_by_peer()
        loaded = [v for v in cpu.values() if v > 0.5]
        assert len(loaded) >= 5

    def test_stream_sharing_source_peak_below_query_shipping(self, scenario1_runs):
        sharing = scenario1_runs["stream-sharing"].cpu_by_peer()[SOURCE_PEER]
        shipping = scenario1_runs["query-shipping"].cpu_by_peer()[SOURCE_PEER]
        assert sharing < shipping

    def test_traffic_ordering(self, scenario1_runs):
        totals = {s: r.total_traffic_mbit() for s, r in scenario1_runs.items()}
        assert totals["stream-sharing"] < totals["query-shipping"]
        assert totals["query-shipping"] < totals["data-shipping"]
        # Data shipping floods: the paper shows roughly an order of
        # magnitude over the optimized strategies.
        assert totals["data-shipping"] > 5 * totals["stream-sharing"]

    def test_per_link_sharing_never_dramatically_worse(self, scenario1_runs):
        """Stream sharing's per-connection traffic stays below data
        shipping on every connection."""
        sharing = scenario1_runs["stream-sharing"].traffic_by_link_kbps()
        shipping = scenario1_runs["data-shipping"].traffic_by_link_kbps()
        for link, kbps in sharing.items():
            assert kbps <= shipping[link] + 100.0

    def test_all_queries_accepted(self, scenario1_runs):
        for run in scenario1_runs.values():
            assert run.rejected == 0

    def test_deliveries_identical(self, scenario1_runs):
        reference = scenario1_runs["data-shipping"].metrics.items_delivered
        for run in scenario1_runs.values():
            assert run.metrics.items_delivered == reference

    def test_write_report(self, scenario1_runs):
        write_result(
            "fig6.txt",
            cpu_report(scenario1_runs) + "\n\n" + traffic_report(scenario1_runs),
        )


@pytest.mark.parametrize("strategy", ["data-shipping", "query-shipping", "stream-sharing"])
def test_fig6_regeneration(benchmark, strategy):
    """Benchmark the full Figure 6 regeneration for one strategy."""
    scenario = scenario_one()
    run = benchmark.pedantic(
        run_scenario, args=(scenario, strategy), rounds=1, iterations=1
    )
    assert run.total_traffic_mbit() > 0
