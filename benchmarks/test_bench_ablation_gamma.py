"""Experiment E7 (extension) — γ sweep of the cost function.

γ weighs network traffic (γ) against peer load (1 − γ) in ``C(P)``.
The ablation registers scenario 2's workload under stream sharing for a
range of γ values and executes the result, showing the expected
trade-off direction: traffic-dominated costing (γ→1) yields the least
measured traffic; load-dominated costing (γ→0) never beats it on
traffic.
"""

import pytest

from conftest import write_result
from repro.bench import series_table
from repro.bench.harness import run_scenario
from repro.workload.scenarios import scenario_one

GAMMAS = (0.0, 0.25, 0.5, 0.75, 1.0)


@pytest.fixture(scope="module")
def gamma_runs():
    scenario = scenario_one()
    return {
        gamma: run_scenario(scenario, "stream-sharing", gamma=gamma)
        for gamma in GAMMAS
    }


class TestGammaSweep:
    def test_all_accept(self, gamma_runs):
        for run in gamma_runs.values():
            assert run.rejected == 0

    def test_traffic_weighting_minimizes_traffic(self, gamma_runs):
        traffic = {gamma: run.total_traffic_mbit() for gamma, run in gamma_runs.items()}
        assert traffic[1.0] <= min(traffic.values()) + 1e-6

    def test_load_weighting_minimizes_peak_cpu(self, gamma_runs):
        """With γ = 0 the optimizer only sees peer load; the resulting
        peak CPU must not exceed the traffic-only plan's peak."""
        def peak(run):
            return max(run.cpu_by_peer().values())

        assert peak(gamma_runs[0.0]) <= peak(gamma_runs[1.0]) * 1.25

    def test_sweep_stays_reasonable(self, gamma_runs):
        """Every γ still beats data shipping's traffic by a wide margin
        (sharing decisions dominate the γ fine-tuning)."""
        shipping = run_scenario(scenario_one(), "data-shipping")
        for run in gamma_runs.values():
            assert run.total_traffic_mbit() < shipping.total_traffic_mbit() / 2

    def test_write_report(self, gamma_runs):
        series = {
            f"gamma={gamma}": {
                "total MBit": run.total_traffic_mbit(),
                "peak CPU %": max(run.cpu_by_peer().values()),
            }
            for gamma, run in gamma_runs.items()
        }
        write_result(
            "ablation_gamma.txt",
            series_table("Metric", "scenario 1, stream sharing", series, precision=2),
        )


def test_gamma_ablation_regeneration(benchmark):
    def regenerate():
        return run_scenario(scenario_one(), "stream-sharing", gamma=0.5, execute=False)

    run = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    assert run.accepted == 25
