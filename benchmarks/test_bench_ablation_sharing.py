"""Experiment E8 (extension) — sharing-mechanism ablations.

Three design choices DESIGN.md calls out:

* FIFO (BFS, the paper's choice) versus LIFO (DFS, noted as "equally
  possible") search order — both must find equally good plans; only the
  search telemetry may differ;
* edgewise (Algorithm 3) versus closure (complete) predicate matching —
  closure never finds fewer reuse opportunities;
* aggregate-stream reuse on/off — disabling it must increase traffic on
  aggregate-heavy workloads.
"""

import pytest

from conftest import write_result
from repro.bench import series_table
from repro.bench.harness import run_scenario
from repro.workload.scenarios import scenario_one


@pytest.fixture(scope="module")
def baseline_run():
    return run_scenario(scenario_one(), "stream-sharing")


class TestSearchOrder:
    def test_dfs_matches_bfs_traffic(self, baseline_run):
        dfs = run_scenario(scenario_one(), "stream-sharing", search_order="dfs")
        # The search order changes traversal, not the candidate set:
        # total measured traffic stays within a small factor.
        assert dfs.total_traffic_mbit() <= baseline_run.total_traffic_mbit() * 1.3
        assert dfs.rejected == 0


class TestMatchMode:
    def test_closure_never_worse(self, baseline_run):
        closure = run_scenario(scenario_one(), "stream-sharing", match_mode="closure")
        assert closure.total_traffic_mbit() <= baseline_run.total_traffic_mbit() * 1.05

    def test_closure_finds_at_least_as_many_candidates(self):
        edgewise = run_scenario(
            scenario_one(), "stream-sharing", match_mode="edgewise", execute=False
        )
        closure = run_scenario(
            scenario_one(), "stream-sharing", match_mode="closure", execute=False
        )
        def reuse_count(run):
            return sum(
                1
                for result in run.registrations
                if result.plan.inputs[0].reused_id != "photons"
            )
        assert reuse_count(closure) >= reuse_count(edgewise)


class TestAggregateReuse:
    def test_disabling_costs_traffic(self, baseline_run):
        no_agg = run_scenario(
            scenario_one(), "stream-sharing", share_aggregates=False
        )
        assert no_agg.total_traffic_mbit() >= baseline_run.total_traffic_mbit()
        assert no_agg.rejected == 0

    def test_no_aggregate_streams_reused(self):
        no_agg = run_scenario(
            scenario_one(), "stream-sharing", share_aggregates=False, execute=False
        )
        deployment = no_agg.system.deployment
        for record in no_agg.registrations:
            for plan in record.plan.inputs:
                reused = deployment.streams.get(plan.reused_id)
                if reused is not None:
                    assert reused.content.aggregation is None


def test_write_ablation_report(baseline_run):
    dfs = run_scenario(scenario_one(), "stream-sharing", search_order="dfs")
    closure = run_scenario(scenario_one(), "stream-sharing", match_mode="closure")
    no_agg = run_scenario(scenario_one(), "stream-sharing", share_aggregates=False)
    series = {
        name: {"total MBit": run.total_traffic_mbit()}
        for name, run in [
            ("bfs+edgewise (paper)", baseline_run),
            ("dfs", dfs),
            ("closure matching", closure),
            ("no aggregate reuse", no_agg),
        ]
    }
    write_result(
        "ablation_sharing.txt",
        series_table("Metric", "scenario 1, stream sharing variants", series),
    )


def test_sharing_ablation_regeneration(benchmark):
    def regenerate():
        return run_scenario(
            scenario_one(), "stream-sharing", match_mode="closure", execute=False
        )

    run = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    assert run.accepted == 25
