"""Shared infrastructure for the benchmark suite.

Each benchmark module regenerates one of the paper's evaluation
artifacts (DESIGN.md, per-experiment index), asserts its *shape* against
the paper's qualitative claims, and writes the rendered table into
``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

STRATEGIES = ("data-shipping", "query-shipping", "stream-sharing")


def write_result(name: str, content: str) -> None:
    """Persist a rendered report table as a benchmark artifact."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, name), "w", encoding="utf-8") as handle:
        handle.write(content + "\n")


def _verified_runs(scenario):
    """Run a scenario under all strategies, statically verifying each
    deployment (full size — the tier-1 suite covers reduced sizes)."""
    from repro.analysis import verify_system
    from repro.bench import run_scenario

    runs = {}
    for strategy in STRATEGIES:
        run = run_scenario(scenario, strategy)
        report = verify_system(
            run.system, title=f"{scenario.name} / {strategy}"
        )
        assert report.ok, report.render()
        runs[strategy] = run
    return runs


@pytest.fixture(scope="session")
def scenario1_runs():
    """Scenario 1 executed under all three strategies (Figure 6)."""
    from repro.workload.scenarios import scenario_one

    return _verified_runs(scenario_one())


@pytest.fixture(scope="session")
def scenario2_runs():
    """Scenario 2 executed under all three strategies (Figure 7)."""
    from repro.workload.scenarios import scenario_two

    return _verified_runs(scenario_two())
