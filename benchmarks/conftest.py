"""Shared infrastructure for the benchmark suite.

Each benchmark module regenerates one of the paper's evaluation
artifacts (DESIGN.md, per-experiment index), asserts its *shape* against
the paper's qualitative claims, and writes the rendered table into
``benchmarks/results/`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

STRATEGIES = ("data-shipping", "query-shipping", "stream-sharing")


def write_result(name: str, content: str) -> None:
    """Persist a rendered report table as a benchmark artifact."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, name), "w", encoding="utf-8") as handle:
        handle.write(content + "\n")


@pytest.fixture(scope="session")
def scenario1_runs():
    """Scenario 1 executed under all three strategies (Figure 6)."""
    from repro.bench import run_scenario
    from repro.workload.scenarios import scenario_one

    scenario = scenario_one()
    return {strategy: run_scenario(scenario, strategy) for strategy in STRATEGIES}


@pytest.fixture(scope="session")
def scenario2_runs():
    """Scenario 2 executed under all three strategies (Figure 7)."""
    from repro.bench import run_scenario
    from repro.workload.scenarios import scenario_two

    scenario = scenario_two()
    return {strategy: run_scenario(scenario, strategy) for strategy in STRATEGIES}
