"""Experiment E6 — the constrained-capacity rejection study.

Section 4: peers capped at 10 % CPU and links at 1 MBit/s, scenario 2.
Paper counts: data shipping rejects 47, query shipping 35, stream
sharing 2 of 100 queries.  The reproduced claim is the *ordering* and
the rough magnitudes (sharing rejects almost nothing, data shipping
close to half).
"""

import pytest

from conftest import STRATEGIES, write_result
from repro.bench import rejection_report
from repro.bench.harness import run_scenario
from repro.workload.scenarios import scenario_two

CONSTRAINTS = dict(
    admission_control=True,
    capacity_factor=0.10,
    link_bandwidth=1_000_000.0,
    execute=False,
)


@pytest.fixture(scope="module")
def rejection_runs():
    return {
        strategy: run_scenario(scenario_two(), strategy, **CONSTRAINTS)
        for strategy in STRATEGIES
    }


class TestRejectionShapes:
    def test_ordering(self, rejection_runs):
        rejected = {s: r.rejected for s, r in rejection_runs.items()}
        assert rejected["data-shipping"] > rejected["query-shipping"]
        assert rejected["query-shipping"] > rejected["stream-sharing"]

    def test_sharing_rejects_almost_nothing(self, rejection_runs):
        assert rejection_runs["stream-sharing"].rejected <= 10

    def test_data_shipping_rejects_heavily(self, rejection_runs):
        """The paper rejects 47/100; anything in the 30–85 band keeps
        the claim (absolute counts depend on the synthetic item sizes)."""
        assert 30 <= rejection_runs["data-shipping"].rejected <= 85

    def test_counts_add_up(self, rejection_runs):
        for run in rejection_runs.values():
            assert run.accepted + run.rejected == 100

    def test_rejections_do_not_pollute_state(self, rejection_runs):
        """A rejected query must leave no streams behind."""
        run = rejection_runs["data-shipping"]
        installed_queries = set(run.system.deployment.queries)
        for stream in run.system.deployment.streams.values():
            if stream.query is not None:
                assert stream.query in installed_queries

    def test_write_report(self, rejection_runs):
        write_result("rejection.txt", rejection_report(rejection_runs))


def test_rejection_regeneration(benchmark):
    """Benchmark the rejection-study regeneration."""
    def regenerate():
        return run_scenario(scenario_two(), "stream-sharing", **CONSTRAINTS)

    run = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    assert run.accepted >= 90
