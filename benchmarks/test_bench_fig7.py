"""Experiment E3/E4 — Figure 7: 4×4 grid scenario.

16 super-peers, 2 data streams, 100 template queries.  Reproduced
claims (Section 4):

* stream sharing significantly reduces network traffic at single peers
  and overall in the network;
* query shipping already reduces traffic via early filtering but still
  transmits one stream per query;
* CPU load comparable across approaches on most peers, except the
  query-shipping peaks at the two stream source nodes.
"""

import pytest

from conftest import write_result
from repro.bench import accumulated_traffic_report, cpu_report
from repro.bench.harness import run_scenario
from repro.workload.scenarios import scenario_two

SOURCES = ("SP0", "SP15")


class TestFigure7Shapes:
    def test_query_shipping_peaks_at_both_sources(self, scenario2_runs):
        cpu = scenario2_runs["query-shipping"].cpu_by_peer()
        ranked = sorted(cpu, key=cpu.get, reverse=True)
        assert set(ranked[:2]) == set(SOURCES)

    def test_total_traffic_ordering(self, scenario2_runs):
        totals = {s: r.total_traffic_mbit() for s, r in scenario2_runs.items()}
        assert totals["stream-sharing"] < totals["query-shipping"] < totals["data-shipping"]
        assert totals["data-shipping"] > 10 * totals["stream-sharing"]

    def test_sharing_reduces_traffic_at_single_peers(self, scenario2_runs):
        """Per-peer accumulated traffic: sharing ≤ data shipping
        everywhere, and strictly better on most peers."""
        sharing = scenario2_runs["stream-sharing"].accumulated_mbit_by_peer()
        shipping = scenario2_runs["data-shipping"].accumulated_mbit_by_peer()
        strictly_better = 0
        for peer, mbit in sharing.items():
            assert mbit <= shipping[peer] + 1.0
            if mbit < shipping[peer] * 0.5:
                strictly_better += 1
        assert strictly_better >= 10

    def test_sharing_beats_query_shipping_overall(self, scenario2_runs):
        sharing = scenario2_runs["stream-sharing"].total_traffic_mbit()
        shipping = scenario2_runs["query-shipping"].total_traffic_mbit()
        assert sharing < shipping

    def test_cpu_comparable_on_non_source_peers(self, scenario2_runs):
        """'CPU load is comparable to the other approaches on most peers
        in this scenario' — sharing never exceeds data shipping's load
        by more than a small factor off-source."""
        sharing = scenario2_runs["stream-sharing"].cpu_by_peer()
        shipping = scenario2_runs["data-shipping"].cpu_by_peer()
        for peer in sharing:
            if peer in SOURCES:
                continue
            assert sharing[peer] <= max(shipping[peer] * 1.5, 2.0)

    def test_deliveries_identical(self, scenario2_runs):
        reference = scenario2_runs["data-shipping"].metrics.items_delivered
        for run in scenario2_runs.values():
            assert run.metrics.items_delivered == reference

    def test_write_report(self, scenario2_runs):
        write_result(
            "fig7.txt",
            cpu_report(scenario2_runs)
            + "\n\n"
            + accumulated_traffic_report(scenario2_runs),
        )


@pytest.mark.parametrize("strategy", ["stream-sharing"])
def test_fig7_regeneration(benchmark, strategy):
    """Benchmark the Figure 7 regeneration (sharing strategy)."""
    scenario = scenario_two()
    run = benchmark.pedantic(
        run_scenario, args=(scenario, strategy), rounds=1, iterations=1
    )
    assert run.accepted == 100
