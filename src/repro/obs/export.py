"""Exporters: JSONL event logs, Chrome traces, Prometheus exposition.

The JSONL log is the canonical run artifact (one JSON object per
line, ``type``-tagged); ``repro.obs summarize`` and ``repro.obs
diff`` consume it, and :func:`chrome_trace` converts its spans and
epochs into the Chrome ``trace_event`` format (load via
``chrome://tracing`` or https://ui.perfetto.dev).
:func:`prometheus_text` renders a recorder's counters/gauges/
histograms in the Prometheus text exposition format for scrape-style
integration.

Line schema (``type`` → payload):

* ``meta``    — run header: creation time, optional topology
  (``peers`` name→capacity, ``links``), free-form ``extra`` fields;
* ``span``    — ``{id, parent, name, t0, t1, attrs}`` (seconds
  relative to the recorder's creation);
* ``event``   — ``{t, name, fields}`` structured one-shot events
  (plan decisions, faults, repair reports);
* ``epoch``   — one :class:`~repro.obs.EpochSnapshot` as a dict;
* ``counter`` / ``gauge`` — final scalar values;
* ``hist``    — histogram summary (count/sum/min/max/mean/buckets).
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field
from typing import IO, Any, Dict, List, Optional, Tuple

from .recorder import Recorder
from .timeseries import EpochSnapshot, sort_epochs

__all__ = [
    "RunLog",
    "chrome_trace",
    "load_jsonl",
    "prometheus_text",
    "write_chrome_trace",
    "write_jsonl",
]


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def _meta_line(recorder: Recorder, net: Any, extra: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    meta: Dict[str, Any] = {
        "type": "meta",
        "created_unix": recorder.created_unix,
        "format": "repro.obs/1",
    }
    if net is not None:
        meta["peers"] = {
            peer.name: peer.capacity for peer in net.super_peers()
        }
        meta["links"] = sorted(str(link) for link in net.links())
    if extra:
        meta.update(extra)
    return meta


def write_jsonl(
    recorder: Recorder,
    path: str,
    net: Any = None,
    extra: Optional[Dict[str, Any]] = None,
) -> None:
    """Write one recorder's full contents as a JSONL run log."""
    with open(path, "w", encoding="utf-8") as handle:
        _write_jsonl(recorder, handle, net, extra)


def _write_jsonl(
    recorder: Recorder, handle: IO[str], net: Any, extra: Optional[Dict[str, Any]]
) -> None:
    def emit(obj: Dict[str, Any]) -> None:
        handle.write(json.dumps(obj, sort_keys=True) + "\n")

    emit(_meta_line(recorder, net, extra))
    for span in recorder.spans:
        emit({"type": "span", **span.to_dict()})
    for event in recorder.events:
        emit({"type": "event", **event})
    # Canonical (index, shard) order: the sharded executor's per-cell
    # series arrive interleaved by the gather loop, and the exported
    # log must not depend on that arrival order.
    for epoch in sort_epochs(recorder.epochs):
        emit({"type": "epoch", **epoch.to_dict()})
    for name in sorted(recorder.counters):
        emit({"type": "counter", "name": name, "value": recorder.counters[name]})
    for name in sorted(recorder.gauges):
        emit({"type": "gauge", "name": name, "value": recorder.gauges[name]})
    for name in sorted(recorder.histograms):
        emit({"type": "hist", "name": name, **recorder.histograms[name].to_dict()})


@dataclass
class RunLog:
    """A parsed JSONL run log (what the CLI consumes)."""

    meta: Dict[str, Any] = field(default_factory=dict)
    spans: List[Dict[str, Any]] = field(default_factory=list)
    events: List[Dict[str, Any]] = field(default_factory=list)
    epochs: List[EpochSnapshot] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def span_totals(self) -> Dict[str, Dict[str, float]]:
        """Same aggregation as :meth:`Recorder.span_totals`."""
        totals: Dict[str, Dict[str, float]] = {}
        for span in self.spans:
            if span.get("t1") is None:
                continue
            entry = totals.setdefault(
                span["name"], {"count": 0, "total_s": 0.0, "max_s": 0.0}
            )
            duration = span["t1"] - span["t0"]
            entry["count"] += 1
            entry["total_s"] += duration
            if duration > entry["max_s"]:
                entry["max_s"] = duration
        return totals

    def events_named(self, name: str) -> List[Dict[str, Any]]:
        return [event for event in self.events if event["name"] == name]


def load_jsonl(path: str) -> RunLog:
    """Parse a JSONL run log back into a :class:`RunLog`."""
    log = RunLog()
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.pop("type", None)
            if kind == "meta":
                log.meta = record
            elif kind == "span":
                log.spans.append(record)
            elif kind == "event":
                log.events.append(record)
            elif kind == "epoch":
                log.epochs.append(EpochSnapshot.from_dict(record))
            elif kind == "counter":
                log.counters[record["name"]] = record["value"]
            elif kind == "gauge":
                log.gauges[record["name"]] = record["value"]
            elif kind == "hist":
                log.histograms[record.pop("name")] = record
    return log


# ----------------------------------------------------------------------
# Chrome trace_event
# ----------------------------------------------------------------------
#: Worker-cell spans render on per-shard lanes at ``tid = _SHARD_TID0
#: + shard``; the control plane keeps ``tid`` 1.
_SHARD_TID0 = 10


def _span_tid(span: Dict[str, Any]) -> int:
    shard = span.get("attrs", {}).get("shard")
    return 1 if shard is None else _SHARD_TID0 + int(shard)


def chrome_trace(source: Any) -> Dict[str, Any]:
    """Convert a :class:`Recorder` or :class:`RunLog` into a Chrome trace.

    Spans become complete (``"ph": "X"``) duration events — on the
    control-plane track, or on a per-shard lane when they carry a
    ``shard`` attribute (merged worker-cell trace segments do); epoch
    snapshots become counter (``"ph": "C"``) series (total CPU %,
    total kbps, in-flight items) placed at their wall-clock emission
    times, so the data-plane series line up with the control-plane
    spans on one timeline.  ``exchange.flow`` events become flow-arrow
    pairs (``"s"``/``"f"``) from the producing shard's lane to the
    consuming shard's — the cut-edge hand-offs of the sharded plane.
    """
    if isinstance(source, Recorder):
        spans = [span.to_dict() for span in source.spans]
        events = source.events
        epochs = source.epochs
    else:
        spans = source.spans
        events = source.events
        epochs = source.epochs
    trace_events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": "repro (StreamGlobe)"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "args": {"name": "control-plane"},
        },
    ]
    shards = sorted(
        {
            span["attrs"]["shard"]
            for span in spans
            if span.get("attrs", {}).get("shard") is not None
        }
        | {
            field
            for event in events
            if event["name"] == "exchange.flow"
            for field in (event["fields"]["src"], event["fields"]["dst"])
        }
    )
    for shard in shards:
        trace_events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": _SHARD_TID0 + int(shard),
                "args": {"name": f"shard {shard}"},
            }
        )
    for span in spans:
        if span.get("t1") is None:
            continue
        trace_events.append(
            {
                "name": span["name"],
                "ph": "X",
                "pid": 1,
                "tid": _span_tid(span),
                "ts": span["t0"] * 1e6,
                "dur": (span["t1"] - span["t0"]) * 1e6,
                "args": span.get("attrs", {}),
            }
        )
    for event in events:
        if event["name"] != "exchange.flow":
            continue
        fields = event["fields"]
        ts = event["t"] * 1e6
        flow_id = int(fields.get("flow", 0))
        args = {"items": fields.get("items"), "batches": fields.get("batches")}
        trace_events.append(
            {
                "name": "exchange",
                "cat": "exchange",
                "ph": "s",
                "pid": 1,
                "tid": _SHARD_TID0 + int(fields["src"]),
                "ts": ts,
                "id": flow_id,
                "args": args,
            }
        )
        trace_events.append(
            {
                "name": "exchange",
                "cat": "exchange",
                "ph": "f",
                "bp": "e",
                "pid": 1,
                "tid": _SHARD_TID0 + int(fields["dst"]),
                # Strictly later than the start so viewers draw the
                # arrow left-to-right even for same-instant records.
                "ts": ts + 1.0,
                "id": flow_id,
                "args": args,
            }
        )
    for epoch in epochs:
        ts = epoch.wall_s * 1e6
        for counter_name, value in (
            ("data-plane CPU (%)", round(epoch.total_cpu_percent(), 3)),
            ("data-plane traffic (kbps)", round(epoch.total_kbps(), 3)),
            ("in-flight items", epoch.inflight_peak),
        ):
            trace_events.append(
                {
                    "name": counter_name,
                    "ph": "C",
                    "pid": 1,
                    "ts": ts,
                    "args": {"value": value},
                }
            )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(source: Any, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(source), handle, indent=1)
        handle.write("\n")


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _prom_name(name: str) -> str:
    cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"repro_{cleaned}"


#: Dotted-name → labeled-series patterns, first match wins.  Metric
#: families whose dotted names encode a dimension (shard, exchange
#: pair, operator, peer, link) render as one Prometheus metric with
#: real labels; anything unmatched keeps the flat mangled name, so
#: plain series (``cache.route.hits`` …) are identical in both modes.
_LABEL_PATTERNS: List[Tuple["re.Pattern[str]", str, Tuple[str, ...]]] = []


def _compile_label_patterns() -> None:
    _LABEL_PATTERNS.extend(
        (re.compile(pattern), metric, labels)
        for pattern, metric, labels in (
            (
                r"^exchange\.cell(\d+)->cell(\d+)\.items$",
                "repro_exchange_pair_items_total",
                ("src_shard", "dst_shard"),
            ),
            (
                r"^exec\.peak_live_items\.shard(\d+)$",
                "repro_exec_peak_live_items",
                ("shard",),
            ),
            (r"^op\.([A-Za-z0-9_]+)\.items$", "repro_op_items_total", ("op",)),
            (
                r"^op\.([A-Za-z0-9_]+)\.batch_s\.shard(\d+)$",
                "repro_op_batch_seconds",
                ("op", "shard"),
            ),
            (
                r"^op\.([A-Za-z0-9_]+)\.batch_s$",
                "repro_op_batch_seconds",
                ("op",),
            ),
            (r"^peer\.work\.(.+)$", "repro_peer_work", ("peer",)),
            (r"^link\.bits\.(.+)-(.+)$", "repro_link_bits", ("a", "b")),
        )
    )


_compile_label_patterns()


def _prom_series(name: str, compat: bool) -> Tuple[str, Dict[str, str]]:
    """Map a dotted metric name to ``(prometheus metric, labels)``."""
    if not compat:
        for pattern, metric, label_names in _LABEL_PATTERNS:
            match = pattern.match(name)
            if match:
                return metric, dict(zip(label_names, match.groups()))
    return _prom_name(name), {}


def _label_suffix(labels: Dict[str, str], extra: str = "") -> str:
    parts = [f'{key}="{value}"' for key, value in labels.items()]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def prometheus_text(recorder: Recorder, compat: bool = False) -> str:
    """Render counters, gauges and histograms in exposition format.

    ``compat=True`` reproduces the historical label-free rendering
    (every dotted name mangled into one flat metric); the default
    folds the dimensional name families into labeled series — e.g.
    ``exchange.cell0->cell1.items`` becomes
    ``repro_exchange_pair_items_total{src_shard="0",dst_shard="1"}``
    and per-shard operator histograms become
    ``repro_op_batch_seconds{op=...,shard=...}`` series of one metric.
    """
    from .recorder import HISTOGRAM_BUCKETS

    lines: List[str] = []
    typed: set = set()

    def emit_type(metric: str, kind: str) -> None:
        # One TYPE header per metric family, even when several dotted
        # names (label combinations) fold into it.
        if metric not in typed:
            typed.add(metric)
            lines.append(f"# TYPE {metric} {kind}")

    for name in sorted(recorder.counters):
        metric, labels = _prom_series(name, compat)
        emit_type(metric, "counter")
        lines.append(
            f"{metric}{_label_suffix(labels)} {recorder.counters[name]}"
        )
    for name in sorted(recorder.gauges):
        metric, labels = _prom_series(name, compat)
        emit_type(metric, "gauge")
        lines.append(
            f"{metric}{_label_suffix(labels)} {recorder.gauges[name]}"
        )
    for name in sorted(recorder.histograms):
        hist = recorder.histograms[name]
        metric, labels = _prom_series(name, compat)
        emit_type(metric, "histogram")
        cumulative = 0
        for bound, count in zip(HISTOGRAM_BUCKETS, hist.buckets):
            cumulative += count
            suffix = _label_suffix(labels, f'le="{bound:g}"')
            lines.append(f"{metric}_bucket{suffix} {cumulative}")
        suffix = _label_suffix(labels, 'le="+Inf"')
        lines.append(f"{metric}_bucket{suffix} {hist.count}")
        lines.append(f"{metric}_sum{_label_suffix(labels)} {hist.total}")
        lines.append(f"{metric}_count{_label_suffix(labels)} {hist.count}")
    return "\n".join(lines) + "\n"
