"""Exporters: JSONL event logs, Chrome traces, Prometheus exposition.

The JSONL log is the canonical run artifact (one JSON object per
line, ``type``-tagged); ``repro.obs summarize`` and ``repro.obs
diff`` consume it, and :func:`chrome_trace` converts its spans and
epochs into the Chrome ``trace_event`` format (load via
``chrome://tracing`` or https://ui.perfetto.dev).
:func:`prometheus_text` renders a recorder's counters/gauges/
histograms in the Prometheus text exposition format for scrape-style
integration.

Line schema (``type`` → payload):

* ``meta``    — run header: creation time, optional topology
  (``peers`` name→capacity, ``links``), free-form ``extra`` fields;
* ``span``    — ``{id, parent, name, t0, t1, attrs}`` (seconds
  relative to the recorder's creation);
* ``event``   — ``{t, name, fields}`` structured one-shot events
  (plan decisions, faults, repair reports);
* ``epoch``   — one :class:`~repro.obs.EpochSnapshot` as a dict;
* ``counter`` / ``gauge`` — final scalar values;
* ``hist``    — histogram summary (count/sum/min/max/mean/buckets).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import IO, Any, Dict, List, Optional

from .recorder import Recorder
from .timeseries import EpochSnapshot, sort_epochs

__all__ = [
    "RunLog",
    "chrome_trace",
    "load_jsonl",
    "prometheus_text",
    "write_chrome_trace",
    "write_jsonl",
]


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def _meta_line(recorder: Recorder, net: Any, extra: Optional[Dict[str, Any]]) -> Dict[str, Any]:
    meta: Dict[str, Any] = {
        "type": "meta",
        "created_unix": recorder.created_unix,
        "format": "repro.obs/1",
    }
    if net is not None:
        meta["peers"] = {
            peer.name: peer.capacity for peer in net.super_peers()
        }
        meta["links"] = sorted(str(link) for link in net.links())
    if extra:
        meta.update(extra)
    return meta


def write_jsonl(
    recorder: Recorder,
    path: str,
    net: Any = None,
    extra: Optional[Dict[str, Any]] = None,
) -> None:
    """Write one recorder's full contents as a JSONL run log."""
    with open(path, "w", encoding="utf-8") as handle:
        _write_jsonl(recorder, handle, net, extra)


def _write_jsonl(
    recorder: Recorder, handle: IO[str], net: Any, extra: Optional[Dict[str, Any]]
) -> None:
    def emit(obj: Dict[str, Any]) -> None:
        handle.write(json.dumps(obj, sort_keys=True) + "\n")

    emit(_meta_line(recorder, net, extra))
    for span in recorder.spans:
        emit({"type": "span", **span.to_dict()})
    for event in recorder.events:
        emit({"type": "event", **event})
    # Canonical (index, shard) order: the sharded executor's per-cell
    # series arrive interleaved by the gather loop, and the exported
    # log must not depend on that arrival order.
    for epoch in sort_epochs(recorder.epochs):
        emit({"type": "epoch", **epoch.to_dict()})
    for name in sorted(recorder.counters):
        emit({"type": "counter", "name": name, "value": recorder.counters[name]})
    for name in sorted(recorder.gauges):
        emit({"type": "gauge", "name": name, "value": recorder.gauges[name]})
    for name in sorted(recorder.histograms):
        emit({"type": "hist", "name": name, **recorder.histograms[name].to_dict()})


@dataclass
class RunLog:
    """A parsed JSONL run log (what the CLI consumes)."""

    meta: Dict[str, Any] = field(default_factory=dict)
    spans: List[Dict[str, Any]] = field(default_factory=list)
    events: List[Dict[str, Any]] = field(default_factory=list)
    epochs: List[EpochSnapshot] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    gauges: Dict[str, float] = field(default_factory=dict)
    histograms: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    def span_totals(self) -> Dict[str, Dict[str, float]]:
        """Same aggregation as :meth:`Recorder.span_totals`."""
        totals: Dict[str, Dict[str, float]] = {}
        for span in self.spans:
            if span.get("t1") is None:
                continue
            entry = totals.setdefault(
                span["name"], {"count": 0, "total_s": 0.0, "max_s": 0.0}
            )
            duration = span["t1"] - span["t0"]
            entry["count"] += 1
            entry["total_s"] += duration
            if duration > entry["max_s"]:
                entry["max_s"] = duration
        return totals

    def events_named(self, name: str) -> List[Dict[str, Any]]:
        return [event for event in self.events if event["name"] == name]


def load_jsonl(path: str) -> RunLog:
    """Parse a JSONL run log back into a :class:`RunLog`."""
    log = RunLog()
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            kind = record.pop("type", None)
            if kind == "meta":
                log.meta = record
            elif kind == "span":
                log.spans.append(record)
            elif kind == "event":
                log.events.append(record)
            elif kind == "epoch":
                log.epochs.append(EpochSnapshot.from_dict(record))
            elif kind == "counter":
                log.counters[record["name"]] = record["value"]
            elif kind == "gauge":
                log.gauges[record["name"]] = record["value"]
            elif kind == "hist":
                log.histograms[record.pop("name")] = record
    return log


# ----------------------------------------------------------------------
# Chrome trace_event
# ----------------------------------------------------------------------
def chrome_trace(source: Any) -> Dict[str, Any]:
    """Convert a :class:`Recorder` or :class:`RunLog` into a Chrome trace.

    Spans become complete (``"ph": "X"``) duration events on the
    control-plane track; epoch snapshots become counter (``"ph": "C"``)
    series (total CPU %, total kbps, in-flight items) placed at their
    wall-clock emission times, so the data-plane series line up with
    the control-plane spans on one timeline.
    """
    if isinstance(source, Recorder):
        spans = [span.to_dict() for span in source.spans]
        epochs = source.epochs
    else:
        spans = source.spans
        epochs = source.epochs
    trace_events: List[Dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "args": {"name": "repro (StreamGlobe)"},
        },
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 1,
            "tid": 1,
            "args": {"name": "control-plane"},
        },
    ]
    for span in spans:
        if span.get("t1") is None:
            continue
        trace_events.append(
            {
                "name": span["name"],
                "ph": "X",
                "pid": 1,
                "tid": 1,
                "ts": span["t0"] * 1e6,
                "dur": (span["t1"] - span["t0"]) * 1e6,
                "args": span.get("attrs", {}),
            }
        )
    for epoch in epochs:
        ts = epoch.wall_s * 1e6
        for counter_name, value in (
            ("data-plane CPU (%)", round(epoch.total_cpu_percent(), 3)),
            ("data-plane traffic (kbps)", round(epoch.total_kbps(), 3)),
            ("in-flight items", epoch.inflight_peak),
        ):
            trace_events.append(
                {
                    "name": counter_name,
                    "ph": "C",
                    "pid": 1,
                    "ts": ts,
                    "args": {"value": value},
                }
            )
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def write_chrome_trace(source: Any, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(source), handle, indent=1)
        handle.write("\n")


# ----------------------------------------------------------------------
# Prometheus text exposition
# ----------------------------------------------------------------------
def _prom_name(name: str) -> str:
    cleaned = "".join(c if c.isalnum() or c == "_" else "_" for c in name)
    return f"repro_{cleaned}"


def prometheus_text(recorder: Recorder) -> str:
    """Render counters, gauges and histograms in exposition format."""
    lines: List[str] = []
    for name in sorted(recorder.counters):
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {recorder.counters[name]}")
    for name in sorted(recorder.gauges):
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {recorder.gauges[name]}")
    for name in sorted(recorder.histograms):
        hist = recorder.histograms[name]
        metric = _prom_name(name)
        lines.append(f"# TYPE {metric} histogram")
        from .recorder import HISTOGRAM_BUCKETS

        cumulative = 0
        for bound, count in zip(HISTOGRAM_BUCKETS, hist.buckets):
            cumulative += count
            lines.append(f'{metric}_bucket{{le="{bound:g}"}} {cumulative}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {hist.count}')
        lines.append(f"{metric}_sum {hist.total}")
        lines.append(f"{metric}_count {hist.count}")
    return "\n".join(lines) + "\n"
