"""``repro.obs`` — end-to-end observability for the reproduction.

The paper's entire evaluation *is* observability: Figs. 6–7 plot CPU
load per super-peer and network traffic per link.  This package turns
those end-of-run totals into inspectable runs:

* :class:`Recorder` — the near-zero-overhead instrumentation core:
  counters, gauges, histograms, span-style structured events, and
  per-epoch time-series snapshots.  :data:`NULL_RECORDER` is a no-op
  stand-in, so instrumented hot paths cost one attribute check when
  observability is off.
* :class:`EpochSnapshot` — one epoch of the data-plane time series the
  executor emits (per-peer work, per-link bits, queue depths,
  per-operator item counts), turning the Fig. 6/7 totals into series
  that show fault/recovery transients.
* exporters — JSONL event logs, Chrome ``trace_event`` timelines
  (per-shard lanes with cut-edge flow arrows for sharded runs), and
  Prometheus text exposition with real labels
  (:mod:`repro.obs.export`).
* cross-process tracing — worker cells ship trace segments at epoch
  barriers; :mod:`repro.obs.merge` folds them deterministically into
  one parent run log (DESIGN.md §15).
* :class:`QuerySLO` — per-query delivered service levels (delivery,
  epoch-lag freshness, loss, migrations, backpressure exposure),
  computed by both executors (:mod:`repro.obs.slo`).
* :class:`MetricsServer` — live ``/metrics`` / ``/healthz`` /
  ``/slo.json`` over HTTP while a run executes
  (:mod:`repro.obs.serve`).
* a CLI — ``python -m repro.obs record|summarize|diff|chrome|slo|serve``
  (:mod:`repro.obs.cli`).

See DESIGN.md §10 for the architecture, event schema, and the overhead
budget (the disabled path must stay within 2% of the untraced
baseline; CI enforces it), and §15 for distributed tracing and SLOs.
"""

from .recorder import (
    NULL_RECORDER,
    Histogram,
    NullRecorder,
    Recorder,
    Span,
    default_recorder,
)
from .timeseries import EpochSnapshot, snapshot_delta, sort_epochs
from .drift import DriftAlert, DriftConfig, DriftDetector
from .export import (
    chrome_trace,
    load_jsonl,
    prometheus_text,
    write_chrome_trace,
    write_jsonl,
)
from .merge import SegmentShipper, SegmentStore, merge_segment
from .serve import MetricsServer
from .slo import QuerySLO, slos_from_events

__all__ = [
    "DriftAlert",
    "DriftConfig",
    "DriftDetector",
    "EpochSnapshot",
    "Histogram",
    "MetricsServer",
    "NULL_RECORDER",
    "NullRecorder",
    "QuerySLO",
    "Recorder",
    "SegmentShipper",
    "SegmentStore",
    "Span",
    "chrome_trace",
    "default_recorder",
    "load_jsonl",
    "merge_segment",
    "prometheus_text",
    "slos_from_events",
    "snapshot_delta",
    "sort_epochs",
    "write_chrome_trace",
    "write_jsonl",
]
