"""Entry point for ``python -m repro.obs``."""

from .cli import main

raise SystemExit(main())
