"""Cross-process trace segments and their deterministic merge.

The sharded executor's worker cells each record into their own
:class:`~repro.obs.Recorder` (timeline-pinned to the parent's via
``Recorder(origin=...)`` — under the fork start method
``perf_counter`` is CLOCK_MONOTONIC, shared across processes, so cell
span times land directly on the parent's axis).  At every epoch
barrier a cell ships one *trace segment* to the parent:

* ``spans`` / ``events`` — **incremental**: only records completed
  since the previous ship (span ids are cell-local);
* ``counters`` / ``histograms`` — **cumulative**: the cell's full
  current state (idempotent under re-ship, so a final ``finish``
  segment supersedes every earlier one).

The parent's :class:`SegmentStore` absorbs segments keyed by shard and
folds them into the parent recorder once, after the last barrier
(:meth:`SegmentStore.merge_into`):

* span ids are rewritten into the parent's id space in ascending-shard
  order with intra-segment parent links preserved, and every span and
  event gets a ``shard`` attribute — the merge output is a function of
  the per-shard segment *contents* only, never of gather/arrival
  order (the shuffle-invariance test pins this);
* cell histograms merge twice: into the global series under their own
  name (``op.select.batch_s`` aggregates across all cells) and into a
  per-cell series under ``<name>.shard<N>`` (rendered with a
  ``shard`` label by the Prometheus exporter);
* cell counters (none today — operator item counts are billed
  parent-side from partition-invariant totals, DESIGN.md §15) would
  sum into the parent's.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from .recorder import Histogram, Recorder, Span

__all__ = ["SegmentShipper", "SegmentStore", "merge_segment"]


class SegmentShipper:
    """Cell-side cursor: cut one incremental trace segment per barrier."""

    __slots__ = ("recorder", "shard", "_span_cursor", "_event_cursor")

    def __init__(self, recorder: Recorder, shard: int) -> None:
        self.recorder = recorder
        self.shard = shard
        self._span_cursor = 0
        self._event_cursor = 0

    def take(self) -> Dict[str, Any]:
        """The segment since the last :meth:`take` (plain picklable data)."""
        recorder = self.recorder
        spans = recorder.spans
        events = recorder.events
        segment = {
            "shard": self.shard,
            "spans": [span.to_dict() for span in spans[self._span_cursor:]],
            "events": list(events[self._event_cursor:]),
            "counters": dict(recorder.counters),
            "histograms": {
                name: hist.to_dict() for name, hist in recorder.histograms.items()
            },
        }
        self._span_cursor = len(spans)
        self._event_cursor = len(events)
        return segment


class SegmentStore:
    """Parent-side accumulator for every cell's shipped segments."""

    def __init__(self, cells: int) -> None:
        self._spans: List[List[Dict[str, Any]]] = [[] for _ in range(cells)]
        self._events: List[List[Dict[str, Any]]] = [[] for _ in range(cells)]
        self._counters: List[Dict[str, float]] = [{} for _ in range(cells)]
        self._histograms: List[Dict[str, Dict[str, Any]]] = [
            {} for _ in range(cells)
        ]

    def absorb(self, segment: Optional[Dict[str, Any]]) -> None:
        """Fold one shipped segment in (``None`` segments are skipped —
        a cell that recorded nothing ships nothing)."""
        if not segment:
            return
        shard = segment["shard"]
        self._spans[shard].extend(segment["spans"])
        self._events[shard].extend(segment["events"])
        # Cumulative state: the latest ship supersedes earlier ones.
        self._counters[shard] = segment["counters"]
        self._histograms[shard] = segment["histograms"]

    def merge_into(self, recorder: Recorder) -> None:
        """Deterministic fold of every absorbed segment into ``recorder``.

        Cells merge in ascending shard order; within a cell, spans and
        events keep their completion order.  The result is independent
        of segment arrival order because the store keys by shard.
        """
        for shard, spans in enumerate(self._spans):
            merge_segment(
                recorder,
                shard,
                spans,
                self._events[shard],
                self._counters[shard],
                self._histograms[shard],
            )


def merge_segment(
    recorder: Recorder,
    shard: int,
    spans: List[Dict[str, Any]],
    events: List[Dict[str, Any]],
    counters: Dict[str, float],
    histograms: Dict[str, Dict[str, Any]],
) -> None:
    """Fold one cell's complete trace into the parent recorder."""
    id_map: Dict[int, int] = {}
    for data in spans:
        new_id = recorder._next_span_id
        recorder._next_span_id += 1
        id_map[data["id"]] = new_id
        recorder.spans.append(
            Span.from_dict(
                recorder,
                {
                    "id": new_id,
                    # Parents outside this segment cannot exist (cells
                    # never see foreign spans), so unmapped ids mean a
                    # cross-ship parent already remapped earlier — the
                    # id_map persists per merge_segment call because
                    # the store concatenates a cell's ships first.
                    "parent": id_map.get(data["parent"]),
                    "name": data["name"],
                    "t0": data["t0"],
                    "t1": data["t1"],
                    "attrs": {**(data.get("attrs") or {}), "shard": shard},
                },
            )
        )
    for event in events:
        recorder.events.append(
            {
                "t": event["t"],
                "name": event["name"],
                "fields": {**event["fields"], "shard": shard},
            }
        )
    for name in sorted(counters):
        value = counters[name]
        if value:
            recorder.inc(name, value)
    for name in sorted(histograms):
        shipped = Histogram.from_dict(histograms[name])
        target = recorder.histograms.get(name)
        if target is None:
            target = recorder.histograms[name] = Histogram()
        target.merge(shipped)
        per_cell = f"{name}.shard{shard}"
        cell_target = recorder.histograms.get(per_cell)
        if cell_target is None:
            cell_target = recorder.histograms[per_cell] = Histogram()
        cell_target.merge(shipped)
