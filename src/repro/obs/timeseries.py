"""Per-epoch data-plane time series.

The executor splits a traced run into epochs (fixed sampling
boundaries plus every fault and recovery boundary) and emits one
:class:`EpochSnapshot` per epoch: the *delta* of every Fig. 6/7
counter over that slice of stream time, plus queue-depth telemetry
and per-operator item counts.  A snapshot therefore answers the
questions the end-of-run totals cannot — *when* load spiked during a
churn epoch, which links carried the detour traffic, and how long the
recovery transient lasted.

Snapshots carry both raw deltas (bits, work units, item counts) and
the derived per-epoch rates the paper plots (CPU %, kbps), computed
against the epoch's stream-time width — so exported logs are
plottable without re-loading the topology.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional

if TYPE_CHECKING:  # pragma: no cover - avoid a cycle with repro.engine
    from ..engine.metrics import RunMetrics
    from ..network.topology import Network

__all__ = ["EpochSnapshot", "snapshot_delta", "sort_epochs"]


@dataclass
class EpochSnapshot:
    """One epoch of the executed deployment's measured time series.

    All dictionaries hold *deltas* over ``[t_start, t_end)`` in stream
    time; ``wall_s`` is stamped by the recorder when the snapshot is
    emitted (wall-clock seconds since the recorder's creation), which
    lets exporters place epochs on the same timeline as spans.
    """

    index: int
    t_start: float
    t_end: float
    #: Work units added per super-peer this epoch.
    peer_work: Dict[str, float] = field(default_factory=dict)
    #: Derived: average CPU load in % of capacity over this epoch.
    peer_cpu_percent: Dict[str, float] = field(default_factory=dict)
    #: Bits added per link ("A-B" keys) this epoch.
    link_bits: Dict[str, float] = field(default_factory=dict)
    #: Derived: average link traffic in kbit/s over this epoch.
    link_kbps: Dict[str, float] = field(default_factory=dict)
    #: Items consumed per operator kind (billed inputs) this epoch.
    operator_inputs: Dict[str, int] = field(default_factory=dict)
    items_generated: int = 0
    items_delivered: int = 0
    items_lost: int = 0
    rerouted_traffic_bits: float = 0.0
    faults_applied: int = 0
    #: In-flight items at the epoch boundary (queue depth) and the
    #: peak reached inside the epoch.
    inflight_items: int = 0
    inflight_peak: int = 0
    wall_s: float = 0.0
    #: Worker cell this snapshot belongs to (sharded executor runs
    #: emit one interleaved series per cell); ``None`` for the
    #: sequential executor's single global series.
    shard: Optional[int] = None

    @property
    def duration(self) -> float:
        return self.t_end - self.t_start

    def total_cpu_percent(self) -> float:
        return sum(self.peer_cpu_percent.values())

    def total_kbps(self) -> float:
        return sum(self.link_kbps.values())

    def to_dict(self) -> Dict[str, Any]:
        return {
            "index": self.index,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "wall_s": self.wall_s,
            "peer_work": self.peer_work,
            "peer_cpu_percent": self.peer_cpu_percent,
            "link_bits": self.link_bits,
            "link_kbps": self.link_kbps,
            "operator_inputs": self.operator_inputs,
            "items_generated": self.items_generated,
            "items_delivered": self.items_delivered,
            "items_lost": self.items_lost,
            "rerouted_traffic_bits": self.rerouted_traffic_bits,
            "faults_applied": self.faults_applied,
            "inflight_items": self.inflight_items,
            "inflight_peak": self.inflight_peak,
            # Omitted for sequential runs so existing exported logs
            # keep their exact key set.
            **({"shard": self.shard} if self.shard is not None else {}),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "EpochSnapshot":
        known = {name for name in cls.__dataclass_fields__}
        return cls(**{key: value for key, value in data.items() if key in known})


def sort_epochs(epochs: Iterable[EpochSnapshot]) -> List[EpochSnapshot]:
    """Canonical ``(epoch index, shard)`` ordering of a snapshot series.

    The sharded executor emits one interleaved series per worker cell;
    recorder arrival order there is an artifact of the gather loop, not
    a contract.  Exporters sort through here so a traced parallel run
    log diffs clean against the inline run of the same partition.  The
    sequential executor's single series (``shard is None``, sorted
    before any cell) is already in this order, so sorting is a no-op
    for it.  The sort is stable: snapshots with equal keys keep their
    arrival order.
    """
    return sorted(
        epochs,
        key=lambda s: (s.index, -1 if s.shard is None else s.shard),
    )


def _num_delta(
    current: Dict[Any, float], previous: Optional[Dict[Any, float]]
) -> Dict[Any, float]:
    if not previous:
        return dict(current)
    return {
        key: value - previous.get(key, 0)
        for key, value in current.items()
        if value != previous.get(key, 0)
    }


def snapshot_delta(
    index: int,
    t_start: float,
    t_end: float,
    current: "RunMetrics",
    previous: Optional["RunMetrics"],
    net: "Network",
    operator_inputs: Dict[str, int],
    previous_operator_inputs: Optional[Dict[str, int]] = None,
    inflight_items: int = 0,
    inflight_peak: int = 0,
) -> EpochSnapshot:
    """Build one epoch's snapshot from two cumulative metric states.

    ``current`` and ``previous`` are the executor's accounting replays
    at the epoch's end and start (``previous=None`` for the first
    epoch); ``net`` supplies peer capacities for the derived CPU
    series — removed peers are still resolvable through the topology's
    removed-entity stash, so epochs spanning a crash keep their series
    complete.
    """
    width = max(t_end - t_start, 1e-9)
    peer_work = _num_delta(current.peer_work, previous.peer_work if previous else None)
    link_bits_raw = _num_delta(
        current.link_bits, previous.link_bits if previous else None
    )
    peer_cpu: Dict[str, float] = {}
    for peer, work in peer_work.items():
        capacity = net.super_peer(peer, include_removed=True).capacity
        peer_cpu[peer] = work / width / capacity * 100.0
    link_bits = {f"{a}-{b}": bits for (a, b), bits in link_bits_raw.items()}
    link_kbps = {name: bits / width / 1000.0 for name, bits in link_bits.items()}
    prev_ops = previous_operator_inputs or {}
    return EpochSnapshot(
        index=index,
        t_start=t_start,
        t_end=t_end,
        peer_work=peer_work,
        peer_cpu_percent=peer_cpu,
        link_bits=link_bits,
        link_kbps=link_kbps,
        operator_inputs={
            kind: count - prev_ops.get(kind, 0)
            for kind, count in operator_inputs.items()
            if count != prev_ops.get(kind, 0)
        },
        items_generated=sum(current.items_generated.values())
        - (sum(previous.items_generated.values()) if previous else 0),
        items_delivered=sum(current.items_delivered.values())
        - (sum(previous.items_delivered.values()) if previous else 0),
        items_lost=current.items_lost - (previous.items_lost if previous else 0),
        rerouted_traffic_bits=current.rerouted_traffic_bits
        - (previous.rerouted_traffic_bits if previous else 0.0),
        faults_applied=current.faults_applied
        - (previous.faults_applied if previous else 0),
        inflight_items=inflight_items,
        inflight_peak=inflight_peak,
    )
