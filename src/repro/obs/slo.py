"""Per-query service-level objective (SLO) records.

Every registered query gets one :class:`QuerySLO` summarizing what the
data plane actually delivered to it over a run (DESIGN.md §15):

* **delivery** — items fed to its restructuring step and results
  produced;
* **freshness** — the certified ``epoch_lag`` of its delivery chain
  (how many exchange epochs a cut-crossing item is delayed on the
  sharded plane) and the derived worst-case stream-time delivery
  latency, ``epoch_lag × exchange-epoch width``;
* **loss and churn exposure** — items dropped while the query's
  recovery gate was closed, live migrations that moved it, and whether
  it ended the run parked (torn down, pending repair);
* **backpressure exposure** — epochs during which its host shard's
  in-flight peak exceeded the executor's batch size (the queue-depth
  signal the future serving front end will shed load on), plus the
  shard's peak queue depth.

Both executors compute these from their accumulated counters
(:meth:`~repro.engine.executor.StreamSimulator.query_slos`,
:meth:`~repro.engine.parallel.ShardedSimulator.query_slos`), refresh
them at every epoch boundary (the live ``/slo.json`` endpoint reads
the latest batch mid-run), and emit one ``query.slo`` event per query
into traced run logs — ``python -m repro.obs slo RUN.jsonl`` renders
the table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List

__all__ = ["QuerySLO", "slos_from_events"]


@dataclass
class QuerySLO:
    """One query's delivered service level over (part of) a run."""

    query: str
    #: Worker cell hosting the query's delivery step (0 on the
    #: sequential executor).
    shard: int
    #: Certified exchange-epoch lag of the query's delivery chain
    #: (:meth:`ShardPlan.query_lags`); 0 on the sequential executor.
    epoch_lag: int
    #: Worst-case added stream-time delivery latency from cut-edge
    #: exchange: ``epoch_lag`` × exchange-epoch width, in stream
    #: seconds.  0 when delivery is same-epoch (sequential executor).
    delivery_latency_s: float
    #: Items fed to the query's restructuring step.
    delivered_inputs: int
    #: Restructured results produced for the subscriber.
    delivered_results: int
    #: Items dropped while the query's recovery gate was closed.
    items_lost: int
    #: Live rebalancer migrations that moved this query.
    migrations: int
    #: Epochs during which the host shard's in-flight peak exceeded
    #: the executor's batch size.
    backpressure_epochs: int
    #: Peak in-flight items on the host shard.
    queue_peak: int
    #: Query ended the run torn down (pending repair).
    parked: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "query": self.query,
            "shard": self.shard,
            "epoch_lag": self.epoch_lag,
            "delivery_latency_s": self.delivery_latency_s,
            "delivered_inputs": self.delivered_inputs,
            "delivered_results": self.delivered_results,
            "items_lost": self.items_lost,
            "migrations": self.migrations,
            "backpressure_epochs": self.backpressure_epochs,
            "queue_peak": self.queue_peak,
            "parked": self.parked,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "QuerySLO":
        known = {name for name in cls.__dataclass_fields__}
        return cls(**{key: value for key, value in data.items() if key in known})


def slos_from_events(events: List[Dict[str, Any]]) -> List[QuerySLO]:
    """Parse the ``query.slo`` events of a run log, in query order."""
    slos = [
        QuerySLO.from_dict(event["fields"])
        for event in events
        if event.get("name") == "query.slo"
    ]
    slos.sort(key=lambda slo: slo.query)
    return slos
