"""Sustained-overload detection over the per-epoch time series.

The rebalancer (DESIGN.md §13) must not react to the data plane's
natural burstiness: photon hot spots, window flushes and fault
transients all spike a super-peer's per-epoch CPU% for an epoch or
two without meaning the *plan* is wrong.  :class:`DriftDetector`
therefore looks at windowed means with hysteresis:

* per peer, keep a rolling window of the last ``window`` epochs'
  CPU% (from :attr:`EpochSnapshot.peer_cpu_percent`);
* a peer *breaches* when its windowed mean is at or above
  ``cpu_threshold``; the breach streak only resets once the mean
  falls below ``clear_threshold`` (< ``cpu_threshold``), so a mean
  oscillating around the trigger line does not restart the count
  (classic hysteresis);
* only ``sustain`` consecutive breaching epochs raise an alert, and
  after an alert the detector stays quiet for ``cooldown`` epochs so
  one migration gets to take effect (and the window to refill with
  post-migration data) before the next is considered.

Everything is driven by the executor's epoch snapshots — stream-time
deltas, not wall clock — so detection is exactly as deterministic as
the run itself: the same scenario produces the same alerts at the
same epoch indices on every host and on both executors.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Tuple

from .timeseries import EpochSnapshot

__all__ = ["DriftAlert", "DriftConfig", "DriftDetector"]


@dataclass(frozen=True)
class DriftConfig:
    """Tuning knobs for :class:`DriftDetector`.

    The defaults suit the benchmark scenarios' capacity scale (peers
    saturate around 100%): trigger at a sustained 80% of capacity,
    re-arm only below 56%, over a 4-epoch window with 3 consecutive
    breaching epochs and a 6-epoch post-alert cooldown.
    """

    #: Windowed-mean CPU% at or above which a peer counts as breaching.
    cpu_threshold: float = 80.0
    #: Mean below which a breach streak resets (hysteresis); must be
    #: strictly below ``cpu_threshold``.
    clear_threshold: float = 45.0
    #: Rolling-window length in epochs.
    window: int = 4
    #: Consecutive breaching epochs required to alert.
    sustain: int = 3
    #: Epochs to stay silent after an alert.
    cooldown: int = 6

    def __post_init__(self) -> None:
        if self.cpu_threshold <= 0:
            raise ValueError("cpu_threshold must be positive")
        if not 0 <= self.clear_threshold < self.cpu_threshold:
            raise ValueError(
                "clear_threshold must lie in [0, cpu_threshold) — "
                "hysteresis needs a strictly lower re-arm line"
            )
        if self.window < 1:
            raise ValueError("window must be at least 1 epoch")
        if self.sustain < 1:
            raise ValueError("sustain must be at least 1 epoch")
        if self.cooldown < 0:
            raise ValueError("cooldown cannot be negative")


@dataclass(frozen=True)
class DriftAlert:
    """One detected sustained-overload condition.

    ``hot_peers`` is sorted by descending windowed-mean CPU% (ties by
    name) so migration planners treat the worst peer first.
    """

    epoch_index: int
    t_end: float
    #: ``(peer, windowed mean CPU%)`` for every peer alerting now.
    hot_peers: Tuple[Tuple[str, float], ...]

    @property
    def peer_names(self) -> Tuple[str, ...]:
        return tuple(peer for peer, _ in self.hot_peers)


@dataclass
class _PeerState:
    window: Deque[float]
    streak: int = 0
    cooldown_left: int = 0


class DriftDetector:
    """Feed epoch snapshots in; get sustained-overload alerts out.

    One detector instance observes exactly one run's global epoch
    series (the sharded executor merges its per-cell series into a
    global snapshot before feeding it — per-cell deltas only cover the
    peers that cell hosts).
    """

    def __init__(self, config: DriftConfig = DriftConfig()) -> None:
        self.config = config
        self._peers: Dict[str, _PeerState] = {}
        #: Every alert raised so far, in epoch order.
        self.alerts: List[DriftAlert] = []

    def observe(self, snapshot: EpochSnapshot) -> List[DriftAlert]:
        """Account one epoch; return the alerts it raises (0 or 1).

        A single :class:`DriftAlert` covers *all* peers alerting at
        this epoch, so one migration pass can consider them together.
        """
        config = self.config
        hot: List[Tuple[str, float]] = []
        # Peers are visited in sorted order so state updates (and any
        # float accumulation in future estimators) are order-stable.
        for peer in sorted(snapshot.peer_cpu_percent):
            cpu = snapshot.peer_cpu_percent[peer]
            state = self._peers.get(peer)
            if state is None:
                state = _PeerState(window=deque(maxlen=config.window))
                self._peers[peer] = state
            state.window.append(cpu)
            if state.cooldown_left > 0:
                state.cooldown_left -= 1
                state.streak = 0
                continue
            mean = sum(state.window) / len(state.window)
            if mean >= config.cpu_threshold:
                state.streak += 1
            elif mean < config.clear_threshold:
                state.streak = 0
            # else: between the thresholds — hold the streak steady.
            if mean >= config.cpu_threshold and state.streak >= config.sustain:
                hot.append((peer, mean))
                state.streak = 0
                state.cooldown_left = config.cooldown
        if not hot:
            return []
        hot.sort(key=lambda entry: (-entry[1], entry[0]))
        alert = DriftAlert(
            epoch_index=snapshot.index,
            t_end=snapshot.t_end,
            hot_peers=tuple(hot),
        )
        self.alerts.append(alert)
        return [alert]
