"""Live metrics serving: scrape a run *while it executes*.

:class:`MetricsServer` wraps a stdlib ``ThreadingHTTPServer`` on a
daemon thread and exposes three endpoints backed by a recorder and an
optional SLO provider:

* ``GET /metrics``  — Prometheus text exposition, rendered from a
  lock-free :meth:`~repro.obs.Recorder.snapshot` (whole-dict copies
  are atomic under the GIL, so the run loop keeps appending with no
  locks on its hot path);
* ``GET /healthz``  — liveness JSON (uptime, metric family counts);
* ``GET /slo.json`` — the latest per-query SLO records, refreshed by
  the executors at every observed epoch barrier mid-run.

``python -m repro.obs serve`` wires this around a scenario execution;
embedding code can hand any recorder + provider pair::

    server = MetricsServer(recorder, slo_provider=lambda: sim.last_query_slos)
    server.start()
    ...  # run; scrape http://127.0.0.1:<server.port>/metrics meanwhile
    server.stop()
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, List, Optional

from .export import prometheus_text
from .recorder import Recorder

__all__ = ["MetricsServer"]


class MetricsServer:
    """Serve ``/metrics``, ``/healthz`` and ``/slo.json`` for a recorder.

    ``slo_provider`` returns the current list of
    :class:`~repro.obs.slo.QuerySLO` records (or dicts); omit it and
    ``/slo.json`` serves an empty list.  ``port=0`` (the default) binds
    an ephemeral port — read :attr:`port` after :meth:`start`.
    """

    def __init__(
        self,
        recorder: Recorder,
        slo_provider: Optional[Callable[[], List[Any]]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        prom_compat: bool = False,
    ) -> None:
        self.recorder = recorder
        self.slo_provider = slo_provider
        self.host = host
        self.port = port
        self.prom_compat = prom_compat
        self.started_unix: Optional[float] = None
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    def start(self) -> "MetricsServer":
        if self._httpd is not None:
            return self
        server = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, fmt: str, *args: Any) -> None:
                pass  # no per-request stderr chatter

            def do_GET(self) -> None:  # noqa: N802 - stdlib API
                path = self.path.split("?", 1)[0]
                if path == "/metrics":
                    body = server.render_metrics().encode("utf-8")
                    ctype = "text/plain; version=0.0.4; charset=utf-8"
                elif path == "/healthz":
                    body = json.dumps(server.health()).encode("utf-8")
                    ctype = "application/json"
                elif path == "/slo.json":
                    body = json.dumps(server.slo_records()).encode("utf-8")
                    ctype = "application/json"
                else:
                    self.send_error(404, "unknown endpoint")
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

        self._httpd = ThreadingHTTPServer((self.host, self.port), Handler)
        self.port = self._httpd.server_address[1]
        self.started_unix = time.time()
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-obs-serve",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is None:
            return
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        self._httpd = None
        self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        self.stop()
        return False

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # Endpoint payloads (also the unit-testable surface)
    # ------------------------------------------------------------------
    def render_metrics(self) -> str:
        return prometheus_text(
            self.recorder.snapshot(), compat=self.prom_compat
        )

    def health(self) -> dict:
        recorder = self.recorder
        return {
            "status": "ok",
            "uptime_s": (
                time.time() - self.started_unix if self.started_unix else 0.0
            ),
            "counters": len(recorder.counters),
            "gauges": len(recorder.gauges),
            "histograms": len(recorder.histograms),
            "spans": len(recorder.spans),
            "epochs": len(recorder.epochs),
        }

    def slo_records(self) -> List[dict]:
        if self.slo_provider is None:
            return []
        records = self.slo_provider() or []
        return [
            record.to_dict() if hasattr(record, "to_dict") else dict(record)
            for record in records
        ]
