"""The instrumentation core: counters, gauges, histograms, spans.

Two implementations share one duck-typed interface:

* :class:`Recorder` — records everything, in memory, with wall times
  relative to its construction instant;
* :class:`NullRecorder` — records nothing.  :data:`NULL_RECORDER` is
  the process-wide no-op singleton; instrumented call sites either
  hold a reference to it (every method is a no-op) or guard richer
  work behind ``if recorder.enabled:`` — a single attribute check, so
  the disabled path stays within the 2% overhead budget CI enforces
  (DESIGN.md §10).

Naming convention: dotted lower-case metric names with the subsystem
first (``cache.route.hits``, ``op.select.items``,
``planner.plans_costed``).  Labels are folded into the name rather
than carried separately — the exposition layer does not need more,
and flat dict lookups keep the enabled path cheap too.

Spans form a tree (``parent_id``) and carry free-form ``attrs``; they
are closed in context-manager ``__exit__`` and appended to
:attr:`Recorder.spans` at close, so the list is ordered by completion
time.  :meth:`Recorder.span_totals` aggregates them by name — the
per-phase planner timings the benchmarks and ``repro.obs summarize``
report.
"""

from __future__ import annotations

import bisect
import os
import time
from typing import Any, Dict, List, Optional

__all__ = [
    "Histogram",
    "NULL_RECORDER",
    "NullRecorder",
    "Recorder",
    "Span",
    "default_recorder",
]

#: Environment variable that switches :func:`default_recorder` from the
#: no-op singleton to a fresh live recorder (used by the CI job that
#: runs the tier-1 suite with tracing enabled).
TRACE_ENV_VAR = "REPRO_OBS_TRACE"

#: Environment variable pinning :attr:`Recorder.created_unix` to a fixed
#: epoch timestamp.  Without it every exported JSONL run log embeds the
#: wall clock at recorder construction, so ``python -m repro.obs diff``
#: on two otherwise identical runs always reports a meta difference.
#: Tests and CI set it (typically to ``0``) to make run logs
#: byte-stable.
EPOCH_ENV_VAR = "REPRO_OBS_EPOCH"


def _created_unix() -> float:
    """Wall-clock creation stamp, honoring the ``REPRO_OBS_EPOCH`` pin."""
    pinned = os.environ.get(EPOCH_ENV_VAR)
    if pinned is None or pinned == "":
        return time.time()
    try:
        return float(pinned)
    except ValueError:
        raise ValueError(
            f"{EPOCH_ENV_VAR} must be a unix timestamp (float), got {pinned!r}"
        ) from None

#: Geometric bucket ladder shared by every histogram: wide enough for
#: seconds-scale latencies down to sub-microsecond operator batches.
HISTOGRAM_BUCKETS = tuple(10.0**e for e in range(-7, 3))


class Histogram:
    """Fixed-bucket histogram with count/sum/min/max."""

    __slots__ = ("count", "total", "min", "max", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.buckets = [0] * (len(HISTOGRAM_BUCKETS) + 1)

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.buckets[bisect.bisect_left(HISTOGRAM_BUCKETS, value)] += 1

    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile (0..1) from the bucket counts.

        Linear interpolation inside the winning bucket, clamped to the
        observed min/max so the estimate never leaves the data's actual
        range (the geometric ladder's bucket edges can be orders of
        magnitude away from the observations within).
        """
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.buckets):
            if not bucket_count:
                continue
            if cumulative + bucket_count >= rank:
                lo = HISTOGRAM_BUCKETS[index - 1] if index > 0 else 0.0
                hi = (
                    HISTOGRAM_BUCKETS[index]
                    if index < len(HISTOGRAM_BUCKETS)
                    else self.max
                )
                fraction = (rank - cumulative) / bucket_count
                estimate = lo + (hi - lo) * fraction
                return min(max(estimate, self.min), self.max)
            cumulative += bucket_count
        return self.max

    def copy(self) -> "Histogram":
        """An independent snapshot (lock-free: bucket list copied whole)."""
        clone = Histogram()
        clone.count = self.count
        clone.total = self.total
        clone.min = self.min
        clone.max = self.max
        clone.buckets = list(self.buckets)
        return clone

    def merge(self, other: "Histogram") -> None:
        """Fold another histogram's observations into this one."""
        self.count += other.count
        self.total += other.total
        if other.count:
            if other.min < self.min:
                self.min = other.min
            if other.max > self.max:
                self.max = other.max
        for index, bucket_count in enumerate(other.buckets):
            self.buckets[index] += bucket_count

    def to_dict(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "mean": self.mean(),
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
            "buckets": list(self.buckets),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Histogram":
        hist = cls()
        hist.count = data["count"]
        hist.total = data["sum"]
        if hist.count:
            hist.min = data["min"]
            hist.max = data["max"]
        hist.buckets = list(data["buckets"])
        return hist


class Span:
    """One timed phase of a control-plane operation.

    A context manager handed out by :meth:`Recorder.span`; attributes
    added via :meth:`set` end up in the exported record.  Times are
    seconds relative to the owning recorder's construction.
    """

    __slots__ = ("span_id", "parent_id", "name", "start_s", "end_s", "attrs", "_recorder")

    def __init__(
        self,
        recorder: "Recorder",
        span_id: int,
        parent_id: Optional[int],
        name: str,
        attrs: Dict[str, Any],
    ) -> None:
        self._recorder = recorder
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_s = recorder.now()
        self.end_s: Optional[float] = None
        self.attrs = attrs

    def set(self, **attrs: Any) -> None:
        """Attach (or overwrite) attributes on the open span."""
        self.attrs.update(attrs)

    @property
    def duration_s(self) -> float:
        return (self.end_s if self.end_s is not None else self._recorder.now()) - self.start_s

    # -- context manager -----------------------------------------------
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        if exc_type is not None:
            self.attrs.setdefault("error", f"{exc_type.__name__}: {exc}")
        self._recorder._close_span(self)
        return False

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Span {self.name!r} id={self.span_id} parent={self.parent_id}>"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "t0": self.start_s,
            "t1": self.end_s,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, recorder: "Recorder", data: Dict[str, Any]) -> "Span":
        """Rehydrate a completed span record (the trace-segment merge:
        span ids are rewritten by the caller, times are already on the
        destination recorder's timeline)."""
        span = cls.__new__(cls)
        span._recorder = recorder
        span.span_id = data["id"]
        span.parent_id = data["parent"]
        span.name = data["name"]
        span.start_s = data["t0"]
        span.end_s = data["t1"]
        span.attrs = dict(data.get("attrs") or {})
        return span


class _NullSpan:
    """The span :data:`NULL_RECORDER` hands out: does nothing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """No-op recorder: every method returns immediately.

    Shared process-wide as :data:`NULL_RECORDER`; hot paths check
    :attr:`enabled` once and skip their instrumentation entirely.
    """

    __slots__ = ()

    enabled = False

    def now(self) -> float:
        return 0.0

    def inc(self, name: str, value: float = 1) -> None:
        return None

    def set_gauge(self, name: str, value: float) -> None:
        return None

    def observe(self, name: str, value: float) -> None:
        return None

    def event(self, name: str, **fields: Any) -> None:
        return None

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def add_epoch(self, snapshot: Any) -> None:
        return None


NULL_RECORDER = NullRecorder()


class Recorder:
    """In-memory sink for one system's (or one run's) instrumentation.

    Owned per :class:`~repro.sharing.system.StreamGlobe` (or per
    directly constructed executor), never shared between systems —
    benchmark baselines must not pollute each other's series, exactly
    like the :class:`~repro.matching.MatchMemo` ownership rule.
    """

    enabled = True

    def __init__(self, origin: Optional["Recorder"] = None) -> None:
        """``origin`` pins this recorder to another recorder's timeline:
        ``now()`` and ``created_unix`` agree with it, so spans recorded
        here (e.g. inside a forked worker cell — ``perf_counter`` is
        CLOCK_MONOTONIC, shared across fork on Linux) land on the same
        axis when trace segments are merged back."""
        if origin is not None:
            self.created_unix = origin.created_unix
            self._t0 = origin._t0
        else:
            self.created_unix = _created_unix()
            self._t0 = time.perf_counter()
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        #: Completed spans, in completion order.
        self.spans: List[Span] = []
        #: Structured events: ``{"t": ..., "name": ..., "fields": {...}}``.
        self.events: List[Dict[str, Any]] = []
        #: Data-plane time series (:class:`~repro.obs.EpochSnapshot`).
        self.epochs: List[Any] = []
        self._open: List[Span] = []
        self._next_span_id = 1

    # ------------------------------------------------------------------
    def now(self) -> float:
        """Seconds since this recorder was created (wall clock)."""
        return time.perf_counter() - self._t0

    # -- scalar instruments --------------------------------------------
    def inc(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = Histogram()
            self.histograms[name] = hist
        hist.observe(value)

    # -- structured events ---------------------------------------------
    def event(self, name: str, **fields: Any) -> None:
        self.events.append({"t": self.now(), "name": name, "fields": fields})

    def add_epoch(self, snapshot: Any) -> None:
        snapshot.wall_s = self.now()
        self.epochs.append(snapshot)

    # -- spans ----------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> Span:
        parent_id = self._open[-1].span_id if self._open else None
        span = Span(self, self._next_span_id, parent_id, name, attrs)
        self._next_span_id += 1
        self._open.append(span)
        return span

    def _close_span(self, span: Span) -> None:
        span.end_s = self.now()
        # Close out-of-order defensively (an exception may unwind
        # several spans at once): drop the span and everything opened
        # after it from the open stack.
        if span in self._open:
            index = self._open.index(span)
            del self._open[index:]
        self.spans.append(span)

    def snapshot(self) -> "Recorder":
        """A consistent point-in-time copy for concurrent readers.

        Built from whole-dict/list copies (atomic under the GIL), so a
        serving thread can render ``/metrics`` while the run loop keeps
        appending — no locks on the hot path.  Histograms are deep-
        copied (their bucket lists mutate in place); spans, events and
        epochs are shared references to already-immutable records.
        """
        clone = Recorder(origin=self)
        clone.counters = dict(self.counters)
        clone.gauges = dict(self.gauges)
        clone.histograms = {
            name: hist.copy() for name, hist in dict(self.histograms).items()
        }
        clone.spans = list(self.spans)
        clone.events = list(self.events)
        clone.epochs = list(self.epochs)
        return clone

    def span_totals(self) -> Dict[str, Dict[str, float]]:
        """Aggregate completed spans by name: count, total and max seconds."""
        totals: Dict[str, Dict[str, float]] = {}
        for span in self.spans:
            if span.end_s is None:
                continue
            entry = totals.setdefault(
                span.name, {"count": 0, "total_s": 0.0, "max_s": 0.0}
            )
            duration = span.end_s - span.start_s
            entry["count"] += 1
            entry["total_s"] += duration
            if duration > entry["max_s"]:
                entry["max_s"] = duration
        return totals


def default_recorder() -> Any:
    """The recorder used when a component is not handed one explicitly.

    Returns :data:`NULL_RECORDER` (zero overhead) unless the
    ``REPRO_OBS_TRACE`` environment variable is set non-empty, in which
    case every component gets its own fresh :class:`Recorder` — the CI
    tracing job uses this to run the whole tier-1 suite instrumented.
    """
    if os.environ.get(TRACE_ENV_VAR):
        return Recorder()
    return NULL_RECORDER
