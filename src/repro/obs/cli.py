"""Command-line run introspection: ``python -m repro.obs ...``.

Subcommands:

* ``record``    — execute a workload scenario with tracing on and write
  the JSONL run log (optionally also a Chrome trace and a Prometheus
  text snapshot);
* ``summarize`` — print a run log's per-epoch peer-CPU / link-traffic
  series, planner span timings, and cache hit rates;
* ``diff``      — compare two run logs (counters, span totals, epoch
  aggregates);
* ``chrome``    — convert a JSONL run log into a Chrome ``trace_event``
  file for chrome://tracing / Perfetto;
* ``slo``       — print a run log's per-query SLO table (delivery,
  freshness/epoch lag, loss, migrations, backpressure exposure);
* ``serve``     — execute a scenario while serving live ``/metrics``
  (Prometheus), ``/healthz`` and ``/slo.json`` over HTTP.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .export import RunLog, load_jsonl, write_chrome_trace, write_jsonl
from .recorder import Recorder

#: Span names that belong to the control plane's planning pipeline, in
#: display order (register is the root; the rest are its phases).
PLANNER_SPAN_ORDER = (
    "register",
    "parse",
    "analyze",
    "plan",
    "search",
    "commit",
    "repair",
    "repair.damage",
    "repair.teardown",
    "repair.reregister",
)


def _fmt(value: float, width: int = 9) -> str:
    if isinstance(value, float):
        return f"{value:{width}.3f}"
    return f"{value:{width}d}"


def _table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    widths = [len(h) for h in headers]
    rendered: List[List[str]] = []
    for row in rows:
        cells = [cell if isinstance(cell, str) else _fmt(cell).strip() for cell in row]
        rendered.append(cells)
        for i, cell in enumerate(cells):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.rjust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for cells in rendered:
        lines.append("  ".join(cells[i].rjust(widths[i]) for i in range(len(cells))))
    return "\n".join(lines)


def hit_rates(counters: Dict[str, float]) -> Dict[str, Tuple[float, float, float]]:
    """Derive ``{cache: (hits, misses, rate)}`` from ``*.hits``/``*.misses``."""
    rates: Dict[str, Tuple[float, float, float]] = {}
    for name, hits in sorted(counters.items()):
        if not name.endswith(".hits"):
            continue
        base = name[: -len(".hits")]
        misses = counters.get(base + ".misses", 0)
        total = hits + misses
        rates[base] = (hits, misses, hits / total if total else 0.0)
    return rates


# ----------------------------------------------------------------------
# summarize
# ----------------------------------------------------------------------
def _epoch_series_tables(log: RunLog, max_links: int = 8) -> List[str]:
    if not log.epochs:
        return ["(no epoch time series in this run log)"]
    peers = sorted({p for e in log.epochs for p in e.peer_cpu_percent})
    out: List[str] = []
    rows = [
        [e.index, e.t_start, e.t_end]
        + [e.peer_cpu_percent.get(p, 0.0) for p in peers]
        for e in log.epochs
    ]
    out.append("Per-epoch peer CPU load (% of capacity):")
    out.append(_table(["epoch", "t0", "t1"] + peers, rows))

    link_totals: Dict[str, float] = {}
    for e in log.epochs:
        for link, bits in e.link_bits.items():
            link_totals[link] = link_totals.get(link, 0.0) + bits
    links = sorted(link_totals, key=lambda l: -link_totals[l])[:max_links]
    rows = [
        [e.index, e.t_start, e.t_end] + [e.link_kbps.get(l, 0.0) for l in links]
        for e in log.epochs
    ]
    title = "Per-epoch link traffic (kbit/s"
    if len(link_totals) > len(links):
        title += f", top {len(links)} of {len(link_totals)} links by volume"
    out.append("")
    out.append(title + "):")
    out.append(_table(["epoch", "t0", "t1"] + links, rows))

    rows = [
        [
            e.index,
            e.items_generated,
            e.items_delivered,
            e.items_lost,
            e.rerouted_traffic_bits,
            e.faults_applied,
            e.inflight_peak,
        ]
        for e in log.epochs
    ]
    out.append("")
    out.append("Per-epoch item flow and churn transients:")
    out.append(
        _table(
            ["epoch", "generated", "delivered", "lost", "rerouted_bits", "faults", "q_peak"],
            rows,
        )
    )
    return out


def _span_timing_table(log: RunLog) -> str:
    totals = log.span_totals()
    if not totals:
        return "(no spans in this run log)"
    ordered = [n for n in PLANNER_SPAN_ORDER if n in totals]
    ordered += sorted(n for n in totals if n not in PLANNER_SPAN_ORDER)
    rows = [
        [
            name,
            int(totals[name]["count"]),
            totals[name]["total_s"] * 1e3,
            totals[name]["total_s"] / totals[name]["count"] * 1e3,
            totals[name]["max_s"] * 1e3,
        ]
        for name in ordered
    ]
    return _table(["span", "count", "total_ms", "mean_ms", "max_ms"], rows)


def _cache_table(counters: Dict[str, float]) -> str:
    rates = hit_rates(counters)
    if not rates:
        return "(no cache counters in this run log)"
    rows = []
    for base, (hits, misses, rate) in sorted(rates.items()):
        invalidations = counters.get(base + ".invalidations")
        rows.append(
            [
                base,
                int(hits),
                int(misses),
                f"{rate * 100:.1f}%",
                int(invalidations) if invalidations is not None else "-",
            ]
        )
    return _table(["cache", "hits", "misses", "hit_rate", "invalidations"], rows)


def _operator_latency_table(histograms: Dict[str, Dict[str, Any]]) -> Optional[str]:
    """Operator batch-latency quantiles (ms), global and per shard.

    ``None`` when the run recorded no operator histograms (untraced
    logs, or logs predating the quantile fields — absent quantiles
    render as 0)."""
    rows = []
    for name, data in sorted(histograms.items()):
        if not name.startswith("op.") or ".batch_s" not in name:
            continue
        rows.append(
            [
                name[len("op."):],
                int(data.get("count", 0)),
                data.get("mean", 0.0) * 1e3,
                data.get("p50", 0.0) * 1e3,
                data.get("p95", 0.0) * 1e3,
                data.get("p99", 0.0) * 1e3,
                data.get("max", 0.0) * 1e3,
            ]
        )
    if not rows:
        return None
    return _table(
        ["operator", "batches", "mean_ms", "p50_ms", "p95_ms", "p99_ms", "max_ms"],
        rows,
    )


def _slo_table(log: RunLog) -> Optional[str]:
    """The per-query SLO table, or ``None`` for logs without
    ``query.slo`` events."""
    from .slo import slos_from_events

    slos = slos_from_events(log.events)
    if not slos:
        return None
    rows = [
        [
            s.query,
            s.shard,
            s.epoch_lag,
            s.delivery_latency_s,
            s.delivered_inputs,
            s.delivered_results,
            s.items_lost,
            s.migrations,
            s.backpressure_epochs,
            s.queue_peak,
            "yes" if s.parked else "-",
        ]
        for s in slos
    ]
    return _table(
        [
            "query",
            "shard",
            "lag",
            "latency_s",
            "inputs",
            "results",
            "lost",
            "moved",
            "bp_epochs",
            "q_peak",
            "parked",
        ],
        rows,
    )


def _columnar_table(counters: Dict[str, float]) -> Optional[str]:
    """Columnar-engine counter table, or ``None`` when the run never
    touched the columnar path (tree-only runs print nothing)."""
    rows = [
        [name[len("columnar."):], int(value)]
        for name, value in sorted(counters.items())
        if name.startswith("columnar.")
    ]
    if not rows:
        return None
    return _table(["columnar", "count"], rows)


def summarize(log: RunLog, out: Any = None) -> None:
    out = out or sys.stdout
    w = out.write
    meta = log.meta
    w("== run ==\n")
    for key in ("scenario", "strategy", "duration_s", "created_unix", "format"):
        if key in meta:
            w(f"  {key}: {meta[key]}\n")
    w(
        f"  spans={len(log.spans)} events={len(log.events)} "
        f"epochs={len(log.epochs)} counters={len(log.counters)}\n"
    )

    w("\n== data plane: per-epoch time series ==\n")
    for block in _epoch_series_tables(log):
        w(block + "\n")

    w("\n== control plane: planner span timings ==\n")
    w(_span_timing_table(log) + "\n")

    latency = _operator_latency_table(log.histograms)
    if latency is not None:
        w("\n== data plane: operator batch latency ==\n")
        w(latency + "\n")

    slo = _slo_table(log)
    if slo is not None:
        w("\n== per-query SLOs ==\n")
        w(slo + "\n")

    w("\n== caches ==\n")
    w(_cache_table(log.counters) + "\n")

    columnar = _columnar_table(log.counters)
    if columnar is not None:
        w("\n== columnar engine ==\n")
        w(columnar + "\n")

    decisions = log.events_named("plan.decision")
    if decisions:
        w("\n== plan decisions ==\n")
        for event in decisions:
            f = event["fields"]
            w(
                "  {query}: {strategy} accepted={accepted} cost={cost} "
                "reused={reused}\n".format(
                    query=f.get("query", "?"),
                    strategy=f.get("strategy", "?"),
                    accepted=f.get("accepted", "?"),
                    cost=_maybe_round(f.get("total_cost")),
                    reused=f.get("reused_streams", []),
                )
            )
    repairs = log.events_named("repair.report")
    if repairs:
        w("\n== repairs ==\n")
        for event in repairs:
            f = event["fields"]
            w(
                "  t={t:.3f}s repaired={repaired} lost={lost} "
                "reinstalled_sources={src}\n".format(
                    t=event["t"],
                    repaired=f.get("queries_repaired", "?"),
                    lost=f.get("queries_lost", "?"),
                    src=f.get("sources_reinstalled", "?"),
                )
            )


def _maybe_round(value: Any) -> Any:
    return round(value, 3) if isinstance(value, float) else value


# ----------------------------------------------------------------------
# diff
# ----------------------------------------------------------------------
def diff(a: RunLog, b: RunLog, label_a: str, label_b: str, out: Any = None) -> None:
    out = out or sys.stdout
    w = out.write
    w(f"== diff: A={label_a}  B={label_b} ==\n")

    names = sorted(set(a.counters) | set(b.counters))
    rows = []
    for name in names:
        va, vb = a.counters.get(name, 0), b.counters.get(name, 0)
        if va != vb:
            rows.append([name, va, vb, vb - va])
    w("\nCounters (changed only):\n")
    w(_table(["counter", "A", "B", "delta"], rows) + "\n" if rows else "  (identical)\n")

    ta, tb = a.span_totals(), b.span_totals()
    rows = []
    for name in sorted(set(ta) | set(tb)):
        ea = ta.get(name, {"count": 0, "total_s": 0.0})
        eb = tb.get(name, {"count": 0, "total_s": 0.0})
        rows.append(
            [name, int(ea["count"]), int(eb["count"]), ea["total_s"] * 1e3, eb["total_s"] * 1e3]
        )
    w("\nSpan totals:\n")
    w(_table(["span", "A_count", "B_count", "A_ms", "B_ms"], rows) + "\n" if rows else "  (none)\n")

    def epoch_sums(log: RunLog) -> Dict[str, float]:
        return {
            "epochs": len(log.epochs),
            "items_delivered": sum(e.items_delivered for e in log.epochs),
            "items_lost": sum(e.items_lost for e in log.epochs),
            "rerouted_traffic_bits": sum(e.rerouted_traffic_bits for e in log.epochs),
            "peer_work": sum(sum(e.peer_work.values()) for e in log.epochs),
            "link_bits": sum(sum(e.link_bits.values()) for e in log.epochs),
        }

    sa, sb = epoch_sums(a), epoch_sums(b)
    rows = [[k, sa[k], sb[k], sb[k] - sa[k]] for k in sa]
    w("\nEpoch aggregates:\n")
    w(_table(["metric", "A", "B", "delta"], rows) + "\n")


# ----------------------------------------------------------------------
# record
# ----------------------------------------------------------------------
def _build_scenario(name: str) -> Any:
    from ..workload import scenarios

    if name == "churn":
        return scenarios.scenario_churn()
    if name == "churn-smoke":
        return scenarios.scenario_churn(rows=2, cols=2, query_count=4, duration=12.0,
                                        crash_peer="SP1", crash_at=4.0, rejoin_at=8.0)
    if name == "one":
        return scenarios.scenario_one()
    if name == "grid":
        return scenarios.scenario_grid()
    raise SystemExit(f"unknown scenario {name!r} (try: churn, churn-smoke, one, grid)")


def record(args: argparse.Namespace) -> None:
    from ..bench.harness import run_scenario

    scenario = _build_scenario(args.scenario)
    recorder = Recorder()
    run = run_scenario(
        scenario, args.strategy, recorder=recorder, workers=args.workers
    )
    extra = {
        "scenario": scenario.name,
        "strategy": args.strategy,
        "duration_s": scenario.duration,
        "queries_accepted": run.accepted,
        "queries_rejected": run.rejected,
    }
    if args.workers:
        simulator = run.system.last_simulator
        extra["workers"] = getattr(simulator, "workers_used", 1)
        extra["parallel_mode"] = getattr(simulator, "mode_used", "sequential")
    write_jsonl(recorder, args.out, net=run.system.net, extra=extra)
    print(f"wrote {args.out} ({len(recorder.spans)} spans, "
          f"{len(recorder.epochs)} epochs, {len(recorder.events)} events)")
    if args.chrome:
        write_chrome_trace(recorder, args.chrome)
        print(f"wrote {args.chrome} (open in chrome://tracing or ui.perfetto.dev)")
    if args.prom:
        from .export import prometheus_text

        with open(args.prom, "w", encoding="utf-8") as handle:
            handle.write(prometheus_text(recorder, compat=args.prom_compat))
        print(f"wrote {args.prom}")


# ----------------------------------------------------------------------
# slo / serve
# ----------------------------------------------------------------------
def slo(args: argparse.Namespace) -> None:
    log = load_jsonl(args.run)
    table = _slo_table(log)
    if table is None:
        print("(no query.slo events in this run log — record a traced run first)")
        return
    print(table)


def serve(args: argparse.Namespace) -> None:
    """Execute a scenario while serving live metrics over HTTP.

    The server thread reads lock-free recorder snapshots, so scraping
    ``/metrics`` mid-run never blocks (or perturbs) the executor; the
    ``/slo.json`` records refresh at every observed epoch barrier.
    """
    from ..sharing.system import StreamGlobe
    from .serve import MetricsServer

    scenario = _build_scenario(args.scenario)
    recorder = Recorder()
    system = StreamGlobe(
        scenario.build_network(), strategy=args.strategy, recorder=recorder
    )

    def slo_provider() -> List[Any]:
        simulator = getattr(system, "last_simulator", None)
        return getattr(simulator, "last_query_slos", [])

    server = MetricsServer(
        recorder,
        slo_provider=slo_provider,
        host=args.host,
        port=args.port,
        prom_compat=args.prom_compat,
    )
    server.start()
    print(f"serving {server.url}/metrics  /healthz  /slo.json")
    try:
        for source in scenario.sources:
            system.register_stream(
                source.name,
                "photons/photon",
                source.generator_factory(),
                frequency=source.frequency,
                source_peer=source.source_peer,
            )
        for spec in scenario.queries:
            system.register_query(spec.name, spec.text, spec.subscriber_peer)
        for round_index in range(args.repeat):
            metrics = system.run(
                scenario.duration,
                faults=scenario.faults if round_index == 0 else None,
                workers=args.workers,
            )
            print(
                f"run {round_index + 1}/{args.repeat} done: "
                f"{sum(metrics.items_delivered.values())} items delivered, "
                f"{len(server.slo_records())} query SLOs live"
            )
        if args.hold > 0:
            print(f"holding the endpoints open for {args.hold:.0f}s (Ctrl-C to stop)")
            import time as _time

            _time.sleep(args.hold)
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        server.stop()


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------
def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs", description="Run introspection for repro."
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("record", help="run a scenario traced and write a JSONL run log")
    p.add_argument("--scenario", default="churn",
                   help="churn | churn-smoke | one | grid (default: churn)")
    p.add_argument("--strategy", default="stream-sharing")
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="execute on the sharded data plane with N worker "
                        "cells (traces merge into one run log)")
    p.add_argument("-o", "--out", default="RUN.jsonl")
    p.add_argument("--chrome", default=None, metavar="TRACE.json",
                   help="also write a Chrome trace_event file")
    p.add_argument("--prom", default=None, metavar="METRICS.txt",
                   help="also write a Prometheus text snapshot")
    p.add_argument("--prom-compat", action="store_true",
                   help="render the Prometheus snapshot with the legacy "
                        "label-free metric names")

    p = sub.add_parser("summarize", help="print series, span timings and cache rates")
    p.add_argument("run", metavar="RUN.jsonl")

    p = sub.add_parser("diff", help="compare two run logs")
    p.add_argument("run_a", metavar="A.jsonl")
    p.add_argument("run_b", metavar="B.jsonl")

    p = sub.add_parser("chrome", help="convert a run log to a Chrome trace")
    p.add_argument("run", metavar="RUN.jsonl")
    p.add_argument("-o", "--out", default="trace.json")

    p = sub.add_parser("slo", help="print a run log's per-query SLO table")
    p.add_argument("run", metavar="RUN.jsonl")

    p = sub.add_parser(
        "serve",
        help="execute a scenario while serving live /metrics, /healthz "
             "and /slo.json",
    )
    p.add_argument("--scenario", default="churn",
                   help="churn | churn-smoke | one | grid (default: churn)")
    p.add_argument("--strategy", default="stream-sharing")
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="execute on the sharded data plane with N worker cells")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=9464,
                   help="HTTP port (0 picks an ephemeral port; default 9464)")
    p.add_argument("--repeat", type=int, default=1, metavar="N",
                   help="execute the scenario N times back to back "
                        "(longer scrape window)")
    p.add_argument("--hold", type=float, default=0.0, metavar="SECONDS",
                   help="keep the endpoints up this long after the last run")
    p.add_argument("--prom-compat", action="store_true",
                   help="serve /metrics with the legacy label-free names")

    args = parser.parse_args(argv)
    if args.command == "record":
        record(args)
    elif args.command == "summarize":
        summarize(load_jsonl(args.run))
    elif args.command == "diff":
        diff(load_jsonl(args.run_a), load_jsonl(args.run_b), args.run_a, args.run_b)
    elif args.command == "chrome":
        log = load_jsonl(args.run)
        write_chrome_trace(log, args.out)
        print(f"wrote {args.out}")
    elif args.command == "slo":
        slo(args)
    elif args.command == "serve":
        serve(args)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
