"""The properties data structure (Section 3.1, Figure 3).

Subscriptions and data streams are represented *symmetrically*: a
subscription produces a result stream, and every stream is the result of
some (possibly empty) subscription.  Properties therefore describe both:

* a set of original input data streams;
* per input stream, the ordered set of operators that transform it;
* per operator, its conditions — a minimized predicate graph for
  selections, marked/referenced element sets for projections, window
  plus aggregation details for window-based aggregations, and the
  parameter vector for unknown (user-defined) operators.

Restructuring (the ``return`` clause's element construction) is *not*
part of properties — it happens in the post-processing step at the
subscriber's super-peer and its output is never reused (Section 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Optional, Tuple, Union

from ..predicates import PredicateGraph
from ..xmlkit import Path
from .windows import WindowSpec


# The indexed registration path hashes the same specs once per
# candidate pair (memo keys, signature buckets), so the hot classes
# precompute their hash in ``__post_init__`` — the sanctioned
# construction-time escape hatch for frozen dataclasses.


@dataclass(frozen=True)
class SelectionSpec:
    """A selection operator σ with its minimized predicate graph."""

    graph: PredicateGraph

    kind: str = field(default="selection", init=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "_hash", hash((SelectionSpec, self.graph)))

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def __str__(self) -> str:
        return f"σ[{self.graph.describe()}]"


@dataclass(frozen=True)
class ProjectionSpec:
    """A projection operator π.

    ``output_elements`` are the subtrees present in the result stream
    (the bullet-marked elements of Figure 3 — the set ``R`` fetched by
    ``getOutElems`` in Algorithm 2).  ``referenced_elements`` is the set
    ``R'`` of *all* elements the query touches (``getRefElems``); a
    stream is reusable when its outputs cover the new subscription's
    references.
    """

    output_elements: FrozenSet[Path]
    referenced_elements: FrozenSet[Path]

    kind: str = field(default="projection", init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.output_elements:
            raise ValueError("a projection must output at least one element")
        if not self.output_elements <= self.referenced_elements:
            raise ValueError("output elements must be referenced elements")
        object.__setattr__(
            self,
            "_hash",
            hash((ProjectionSpec, self.output_elements, self.referenced_elements)),
        )

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def __str__(self) -> str:
        marked = ",".join(sorted(str(p) for p in self.output_elements))
        return f"π[{marked}]"


@dataclass(frozen=True)
class AggregationSpec:
    """A window-based aggregation operator Φ.

    Attributes
    ----------
    function:
        One of ``min, max, sum, count, avg``.
    aggregated_path:
        Absolute path of the aggregated element.
    window:
        The data window specification.
    pre_selection:
        The selection applied to the stream *before* aggregation; for
        aggregate reuse it must be identical in both subscriptions
        (Section 3.3, MatchAggregations).
    result_filter:
        Predicate graph over :data:`RESULT_NODE` when the subscription
        filters the aggregate value (e.g. ``where $a >= 1.3``); empty
        graph when unfiltered.
    """

    function: str
    aggregated_path: Path
    window: WindowSpec
    pre_selection: PredicateGraph
    result_filter: PredicateGraph

    kind: str = field(default="aggregation", init=False, repr=False)

    def __post_init__(self) -> None:
        if self.function not in ("min", "max", "sum", "count", "avg"):
            raise ValueError(f"unknown aggregation function {self.function!r}")
        object.__setattr__(
            self,
            "_hash",
            hash(
                (
                    AggregationSpec,
                    self.function,
                    self.aggregated_path,
                    self.window,
                    self.pre_selection,
                    self.result_filter,
                )
            ),
        )

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    @property
    def is_filtered(self) -> bool:
        return not self.result_filter.is_empty()

    def __str__(self) -> str:
        text = f"{self.function}({self.aggregated_path}) {self.window}"
        if self.is_filtered:
            text += f" having[{self.result_filter.describe()}]"
        return text


#: Node label used inside ``result_filter`` graphs for the aggregate value.
RESULT_NODE = Path("__aggregate_result__")


@dataclass(frozen=True)
class WindowContentsSpec:
    """A windowing operator whose output is the window *contents*.

    Covers WXQueries that bind a window but return the items themselves
    rather than an aggregate (the cost model's "queries returning the
    contents of data windows", Section 3.2).
    """

    window: WindowSpec

    kind: str = field(default="window", init=False, repr=False)

    def __str__(self) -> str:
        return f"ω{self.window}"


@dataclass(frozen=True)
class UdfSpec:
    """An unknown (user-defined) deterministic operator.

    Algorithm 2's final case: shareable only when the operator *and* its
    input vector (parameter list) coincide.
    """

    name: str
    parameters: Tuple[str, ...] = ()

    kind: str = field(default="udf", init=False, repr=False)

    def __str__(self) -> str:
        return f"{self.name}({', '.join(self.parameters)})"


@dataclass(frozen=True)
class ReAggregationSpec:
    """Plan-level operator: combine reused partial aggregates.

    Installed as *compensation* when an aggregate stream is shared with
    a compatible but coarser window (Figure 5): ``∆'/∆`` reused windows
    at stride ``∆/µ`` merge into one new window, advancing ``µ'/µ``
    arrivals per emission.  Never appears in stream properties — the
    resulting stream is described by its :class:`AggregationSpec`.
    """

    reused: AggregationSpec
    new: AggregationSpec

    kind: str = field(default="reaggregation", init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.new.window.shareable_from(self.reused.window):
            raise ValueError(
                f"window {self.new.window} is not shareable from {self.reused.window}"
            )

    def __str__(self) -> str:
        return f"ρ[{self.reused.window} ⇒ {self.new.window}]"


@dataclass(frozen=True)
class RestructureSpec:
    """Plan-level operator: the post-processing step (Section 2).

    Builds the subscriber-facing result structure from the delivered
    stream at the subscriber's super-peer.  Its output is never
    considered for reuse, so it never appears in stream properties.
    """

    query_name: str

    kind: str = field(default="restructure", init=False, repr=False)

    def __str__(self) -> str:
        return f"restructure[{self.query_name}]"


OperatorSpec = Union[
    SelectionSpec,
    ProjectionSpec,
    AggregationSpec,
    WindowContentsSpec,
    UdfSpec,
    ReAggregationSpec,
    RestructureSpec,
]


@dataclass(frozen=True)
class StreamProperties:
    """Properties of one input stream within a subscription/stream.

    ``stream`` names the *original* input data stream (``getDS`` in
    Algorithm 2); ``item_path`` is the path from the stream root to the
    items (e.g. ``photons/photon``); ``operators`` the transformation
    pipeline (``getOps``).
    """

    stream: str
    item_path: Path
    operators: Tuple[OperatorSpec, ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "_hash",
            hash((StreamProperties, self.stream, self.item_path, self.operators)),
        )

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    def operator_of_kind(self, kind: str) -> Optional[OperatorSpec]:
        for op in self.operators:
            if op.kind == kind:
                return op
        return None

    @property
    def selection(self) -> Optional[SelectionSpec]:
        op = self.operator_of_kind("selection")
        return op if isinstance(op, SelectionSpec) else None

    @property
    def projection(self) -> Optional[ProjectionSpec]:
        op = self.operator_of_kind("projection")
        return op if isinstance(op, ProjectionSpec) else None

    @property
    def aggregation(self) -> Optional[AggregationSpec]:
        op = self.operator_of_kind("aggregation")
        return op if isinstance(op, AggregationSpec) else None

    @property
    def is_raw(self) -> bool:
        """``True`` for an untransformed original input stream."""
        return not self.operators

    def __str__(self) -> str:
        ops = " → ".join(str(op) for op in self.operators) or "id"
        return f"{self.stream}: {ops}"


@dataclass(frozen=True)
class Properties:
    """Complete properties of a subscription or a derived data stream."""

    name: str
    inputs: Tuple[StreamProperties, ...]

    def input_streams(self) -> Tuple[StreamProperties, ...]:
        """``getInputDS`` of Algorithm 1."""
        return self.inputs

    def input_for(self, stream: str) -> StreamProperties:
        for sp in self.inputs:
            if sp.stream == stream:
                return sp
        raise KeyError(f"{self.name} has no input stream {stream!r}")

    def single_input(self) -> StreamProperties:
        if len(self.inputs) != 1:
            raise ValueError(f"{self.name} has {len(self.inputs)} inputs, expected 1")
        return self.inputs[0]

    def is_variant_of(self, other: "StreamProperties") -> bool:
        """``True`` when some input derives from ``other``'s stream.

        Used by Algorithm 1 line 9 ("data streams available at v that
        are variants of p_s").
        """
        return any(sp.stream == other.stream for sp in self.inputs)

    def __str__(self) -> str:
        return f"{self.name}{{{'; '.join(str(sp) for sp in self.inputs)}}}"


def raw_stream_properties(name: str, item_path: Union[Path, str]) -> Properties:
    """Properties of an original, untransformed registered data stream."""
    path = item_path if isinstance(item_path, Path) else Path(item_path)
    return Properties(name=name, inputs=(StreamProperties(name, path),))
