"""Properties of subscriptions and data streams (paper Section 3.1).

>>> from repro.wxquery import parse_query
>>> from repro.properties import extract_properties
>>> p = extract_properties(parse_query(
...     '<r>{ for $p in stream("s")/root/item where $p/x >= 1 '
...     'return <o> { $p/x } </o> }</r>'), name="q1")
>>> [op.kind for op in p.single_input().operators]
['selection', 'projection']
"""

from .extract import extract_from_analysis, extract_properties
from .model import (
    RESULT_NODE,
    AggregationSpec,
    OperatorSpec,
    ProjectionSpec,
    Properties,
    ReAggregationSpec,
    RestructureSpec,
    SelectionSpec,
    StreamProperties,
    UdfSpec,
    WindowContentsSpec,
    raw_stream_properties,
)
from .windows import WindowSpec

__all__ = [
    "RESULT_NODE",
    "AggregationSpec",
    "OperatorSpec",
    "ProjectionSpec",
    "Properties",
    "ReAggregationSpec",
    "RestructureSpec",
    "SelectionSpec",
    "StreamProperties",
    "UdfSpec",
    "WindowContentsSpec",
    "WindowSpec",
    "extract_from_analysis",
    "extract_properties",
    "raw_stream_properties",
]
