"""Extraction of properties from analyzed WXQuery subscriptions.

This is the construction step performed once per subscription during
registration (Section 3.3): normalize the predicates, build and minimize
the predicate graphs (rejecting unsatisfiable subscriptions), collect
the projection element sets, and record window/aggregation conditions.
"""

from __future__ import annotations

from typing import List, Optional

from ..predicates import (
    NormalizedAtom,
    PredicateGraph,
    graph_from_atoms,
    normalize_atom,
    normalize_comparison,
)
from ..wxquery import AnalyzedQuery, Binding, Query, analyze
from ..wxquery.errors import AnalysisError
from ..xmlkit import Path
from .model import (
    RESULT_NODE,
    AggregationSpec,
    OperatorSpec,
    ProjectionSpec,
    Properties,
    SelectionSpec,
    StreamProperties,
    WindowContentsSpec,
)
from .windows import WindowSpec


def extract_properties(query: Query, name: str) -> Properties:
    """Analyze ``query`` and build its :class:`Properties`.

    Raises
    ------
    AnalysisError
        When the query violates the flat fragment.
    UnsatisfiableError
        When a selection predicate can never hold — the paper rejects
        such subscriptions outright.
    """
    return extract_from_analysis(analyze(query), name)


def extract_from_analysis(analyzed: AnalyzedQuery, name: str) -> Properties:
    """Build :class:`Properties` from an already-analyzed query."""
    inputs: List[StreamProperties] = []
    for stream in analyzed.streams():
        inputs.append(_input_properties(analyzed, stream))
    if not inputs:
        raise AnalysisError(f"subscription {name!r} references no input stream")
    return Properties(name=name, inputs=tuple(inputs))


def _input_properties(analyzed: AnalyzedQuery, stream: str) -> StreamProperties:
    root_binding = analyzed.binding_for_stream(stream)
    item_path = root_binding.absolute_path

    operators: List[OperatorSpec] = []

    selection_graph = _selection_graph(analyzed, stream)
    if not selection_graph.is_empty():
        operators.append(SelectionSpec(selection_graph))

    aggregation = _aggregation_spec(analyzed, stream, selection_graph)
    if aggregation is not None:
        # Aggregation queries carry [σ, Φ]: the result stream consists
        # of aggregate values, so no projection operator appears in the
        # properties (reuse compatibility of the inputs is checked by
        # MatchAggregations via the identical pre-selection and the
        # aggregated element, Section 3.3).
        operators.append(aggregation)
        return StreamProperties(
            stream=stream, item_path=item_path, operators=tuple(operators)
        )

    projection = _projection_spec(analyzed, stream, item_path)
    if projection is not None:
        operators.append(projection)

    if root_binding.window is not None:
        # A window without aggregation: the result is window contents.
        operators.append(
            WindowContentsSpec(WindowSpec.from_clause(root_binding.window, item_path))
        )

    return StreamProperties(stream=stream, item_path=item_path, operators=tuple(operators))


def _selection_graph(analyzed: AnalyzedQuery, stream: str) -> PredicateGraph:
    atoms: List[NormalizedAtom] = []
    for resolved in analyzed.selection:
        if resolved.left_binding.stream != stream:
            continue
        atoms.extend(
            normalize_atom(resolved.atom, resolved.left_path, resolved.right_path)
        )
    if not atoms:
        return PredicateGraph()
    return graph_from_atoms(atoms)


def _projection_spec(
    analyzed: AnalyzedQuery, stream: str, item_path: Path
) -> Optional[ProjectionSpec]:
    referenced = set(analyzed.referenced_paths.get(stream, set()))
    outputs = set(analyzed.output_paths.get(stream, set()))
    root_binding = analyzed.binding_for_stream(stream)
    if root_binding.window is not None and root_binding.window.reference is not None:
        reference = Path(item_path.steps + root_binding.window.reference.steps)
        referenced.add(reference)
        outputs.add(reference)
    if not referenced:
        return None
    if any(item_path.starts_with(path) for path in outputs):
        # The whole item is output; no projection takes place.
        return None
    return ProjectionSpec(
        output_elements=frozenset(outputs),
        referenced_elements=frozenset(referenced),
    )


def _aggregation_spec(
    analyzed: AnalyzedQuery, stream: str, selection_graph: PredicateGraph
) -> Optional[AggregationSpec]:
    aggregations = [b for b in analyzed.aggregations() if b.stream == stream]
    if not aggregations:
        return None
    if len(aggregations) > 1:
        raise AnalysisError(
            "multiple aggregations over one stream are outside the flat fragment"
        )
    binding = aggregations[0]
    assert binding.window is not None and binding.aggregate is not None
    root_binding = analyzed.binding_for_stream(stream)
    window = WindowSpec.from_clause(binding.window, root_binding.absolute_path)
    result_filter = _result_filter(analyzed, binding)
    return AggregationSpec(
        function=binding.aggregate,
        aggregated_path=binding.absolute_path,
        window=window,
        pre_selection=selection_graph,
        result_filter=result_filter,
    )


def _result_filter(analyzed: AnalyzedQuery, binding: Binding) -> PredicateGraph:
    atoms: List[NormalizedAtom] = []
    for resolved in analyzed.aggregate_filters:
        if resolved.left_binding.var != binding.var:
            continue
        atom = resolved.atom
        atoms.extend(normalize_comparison(RESULT_NODE, atom.op, None, atom.constant))
    if not atoms:
        return PredicateGraph()
    return graph_from_atoms(atoms)
