"""Data window specifications inside properties (Sections 2 and 3.3).

A :class:`WindowSpec` is the properties-level record of a data window:
window type (``count`` or ``diff``), the ordered reference element for
time-based windows (as an *absolute* path), the window size ∆ and the
step size µ.  The shareability arithmetic of ``MatchAggregations``
(Section 3.3, Figure 5) lives here:

* ``∆' mod ∆ = 0`` — a whole number of reused windows fits one new one;
* ``∆ mod µ = 0`` — the reused windows can tile the input seamlessly;
* ``µ' mod µ = 0`` — a reused value is available at every new update.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from ..wxquery.ast import WindowClause, fraction_to_literal
from ..xmlkit import Path


@dataclass(frozen=True)
class WindowSpec:
    """A normalized data window: ``kind``, reference, ∆, and µ."""

    kind: str  # "count" | "diff"
    size: Fraction
    step: Fraction
    reference: Optional[Path] = None  # absolute path; time-based only

    def __post_init__(self) -> None:
        if self.kind not in ("count", "diff"):
            raise ValueError(f"unknown window kind {self.kind!r}")
        if self.size <= 0 or self.step <= 0:
            raise ValueError("window size and step must be positive")
        if (self.kind == "diff") != (self.reference is not None):
            raise ValueError("exactly time-based windows carry a reference element")

    @classmethod
    def from_clause(cls, clause: WindowClause, item_path: Path) -> "WindowSpec":
        """Build from a parsed window, absolutizing the reference path."""
        reference = None
        if clause.reference is not None:
            reference = Path(item_path.steps + clause.reference.steps)
        return cls(clause.kind, clause.size, clause.effective_step, reference)

    # ------------------------------------------------------------------
    # Shareability (MatchAggregations window conditions)
    # ------------------------------------------------------------------
    def shareable_from(self, reused: "WindowSpec") -> bool:
        """``True`` iff windows of ``reused`` can rebuild this window.

        ``self`` is the *new* subscription's window (∆', µ'); ``reused``
        is the window of the stream considered for reuse (∆, µ).
        """
        if self.kind != reused.kind:
            return False
        if self.kind == "diff" and self.reference != reused.reference:
            return False
        return (
            self.size % reused.size == 0
            and reused.size % reused.step == 0
            and self.step % reused.step == 0
        )

    def windows_per_new_window(self, reused: "WindowSpec") -> int:
        """How many non-overlapping reused windows tile one new window."""
        if not self.shareable_from(reused):
            raise ValueError(f"{self} is not shareable from {reused}")
        return int(self.size / reused.size)

    def __str__(self) -> str:
        head = "count" if self.kind == "count" else f"{self.reference} diff"
        return (
            f"|{head} {fraction_to_literal(self.size)} "
            f"step {fraction_to_literal(self.step)}|"
        )
