"""Memoized matching verdicts for the indexed registration path.

Algorithm 2's expensive checks — predicate implication (Bellman–Ford
per edge), projection coverage, aggregation compatibility — are pure
functions of immutable operator specs.  At scale the same spec pairs
recur constantly: template-generated subscriptions share predicates,
and an installed stream is matched once per node it is available at.

:class:`MatchMemo` caches two layers of verdicts:

* ``properties`` — whole :func:`~repro.matching.match_stream_properties`
  calls keyed on ``(stream content, subscription input, mode)``;
* ``operators`` — per-operator ``_conditions_compatible`` verdicts
  keyed on ``(stream op, subscription op, mode)``, which also serve
  matches of *different* contents sharing individual operators.

Keys rely on the cached hashes of the frozen spec classes
(:mod:`repro.properties.model`) and of
:class:`~repro.predicates.PredicateGraph`.  The memo is owned by a
:class:`~repro.sharing.subscribe.Subscriber` — per system, so separate
systems (e.g. benchmark baselines) never share state.
"""

from __future__ import annotations

from typing import Dict, Tuple


class MatchMemo:
    """Caches for the pure matching checks of Algorithms 2 and 3."""

    __slots__ = ("properties", "operators", "hits", "misses")

    def __init__(self) -> None:
        self.properties: Dict[Tuple[object, object, str], bool] = {}
        self.operators: Dict[Tuple[object, object, str], bool] = {}
        self.hits = 0
        self.misses = 0

    def stats(self) -> Dict[str, float]:
        total = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hits / total if total else 0.0,
            "properties_entries": len(self.properties),
            "operator_entries": len(self.operators),
        }
