"""Stream/subscription matching (Algorithms 2 and 3 plus MatchAggregations)."""

from .aggregation import functions_compatible, match_aggregations, serving_functions
from .memo import MatchMemo
from .properties_match import (
    match_properties,
    match_stream_properties,
    missing_operators,
)

__all__ = [
    "MatchMemo",
    "functions_compatible",
    "match_aggregations",
    "match_properties",
    "match_stream_properties",
    "missing_operators",
    "serving_functions",
]
