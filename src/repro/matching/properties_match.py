"""``MatchProperties`` — Algorithm 2 of the paper.

Decides whether the data stream described by properties ``p`` can be
shared to answer (the relevant input of) a newly registered subscription
``p'``: every operator already applied to the stream must have a
corresponding, condition-compatible operator in the subscription —
otherwise the stream is missing data the subscription needs.

The four operator cases of Algorithm 2 are dispatched on the operator
specs of :mod:`repro.properties.model`:

* selection → :func:`repro.predicates.match_predicates` (Algorithm 3);
* projection → output elements ``R`` ⊇ referenced elements ``R'``;
* window-based aggregation → :func:`repro.matching.aggregation.match_aggregations`;
* anything else (user-defined operators) → equal operator and equal
  input vector (deterministic operators only).
"""

from __future__ import annotations

from typing import Optional

from ..predicates import match_predicates
from .memo import MatchMemo
from ..properties import (
    AggregationSpec,
    OperatorSpec,
    ProjectionSpec,
    Properties,
    SelectionSpec,
    StreamProperties,
    UdfSpec,
    WindowContentsSpec,
)


def match_properties(
    stream: Properties, subscription: Properties, mode: str = "edgewise"
) -> bool:
    """Match a candidate stream against a whole subscription.

    The candidate must be derived from a single original input stream
    (multi-input results are post-processed and never reused, Section 2)
    and the subscription must reference that stream; the per-stream
    check is :func:`match_stream_properties`.
    """
    if len(stream.inputs) != 1:
        return False
    stream_input = stream.inputs[0]
    for sub_input in subscription.inputs:
        if sub_input.stream == stream_input.stream:
            return match_stream_properties(stream_input, sub_input, mode)
    return False


def match_stream_properties(
    stream: StreamProperties,
    subscription: StreamProperties,
    mode: str = "edgewise",
    memo: Optional[MatchMemo] = None,
) -> bool:
    """Algorithm 2 over one input stream.

    ``stream`` plays the role of ``p`` (the candidate for sharing),
    ``subscription`` the role of ``p'`` (the new query's requirements on
    this input).  ``memo`` optionally caches verdicts — matching is a
    pure function of the two immutable spec trees, so a cached verdict
    is always identical to a fresh evaluation.
    """
    if memo is None:
        return _match_stream_properties(stream, subscription, mode, None)
    key = (stream, subscription, mode)
    cached = memo.properties.get(key)
    if cached is not None:
        memo.hits += 1
        return cached
    memo.misses += 1
    verdict = _match_stream_properties(stream, subscription, mode, memo)
    memo.properties[key] = verdict
    return verdict


def _match_stream_properties(
    stream: StreamProperties,
    subscription: StreamProperties,
    mode: str,
    memo: Optional[MatchMemo],
) -> bool:
    # Lines 1–4: the original input streams must coincide.
    if stream.stream != subscription.stream:
        return False
    if stream.item_path != subscription.item_path:
        return False

    # Lines 6–36: every operator of the stream needs a compatible
    # counterpart in the subscription.
    for op in stream.operators:                           # line 6
        if not _operator_matched(op, subscription, mode, memo):  # lines 7–31
            return False                                   # lines 33–35
    return True                                            # line 37


def _operator_matched(
    op: OperatorSpec,
    subscription: StreamProperties,
    mode: str,
    memo: Optional[MatchMemo] = None,
) -> bool:
    for candidate in subscription.operators:               # line 8
        if candidate.kind != op.kind:                      # line 9 (o = o')
            continue
        if _conditions_compatible(op, candidate, mode, memo):  # lines 10–30
            return True                                    # break on match
    return False


def _conditions_compatible(
    op: OperatorSpec,
    other: OperatorSpec,
    mode: str,
    memo: Optional[MatchMemo] = None,
) -> bool:
    if memo is not None and isinstance(
        op, (SelectionSpec, ProjectionSpec, AggregationSpec)
    ):
        # Only the condition checks with real work are worth an entry;
        # window arithmetic and udf equality are cheaper than the probe.
        key = (op, other, mode)
        cached = memo.operators.get(key)
        if cached is not None:
            return cached
        verdict = _conditions_verdict(op, other, mode)
        memo.operators[key] = verdict
        return verdict
    return _conditions_verdict(op, other, mode)


def _conditions_verdict(op: OperatorSpec, other: OperatorSpec, mode: str) -> bool:
    if isinstance(op, SelectionSpec) and isinstance(other, SelectionSpec):
        # Lines 11–15: the subscription's predicates must imply the
        # stream's (MatchPredicates(G, G')).
        return match_predicates(op.graph, other.graph, mode)
    if isinstance(op, ProjectionSpec) and isinstance(other, ProjectionSpec):
        # Lines 16–20: R ⊇ R' — everything the subscription references
        # must still be present in the stream.
        return _projection_covers(op, other)
    if isinstance(op, AggregationSpec) and isinstance(other, AggregationSpec):
        # Lines 21–24: window-based aggregation matching.
        from .aggregation import match_aggregations

        return match_aggregations(op, other, mode)
    if isinstance(op, WindowContentsSpec) and isinstance(other, WindowContentsSpec):
        # Window-contents streams: the new window must be rebuildable
        # from the reused one (same arithmetic as aggregate windows).
        return other.window.shareable_from(op.window)
    if isinstance(op, UdfSpec) and isinstance(other, UdfSpec):
        # Lines 25–30: unknown deterministic operators — equal operator
        # and equal input vector.
        return op.name == other.name and op.parameters == other.parameters
    return False


def _projection_covers(stream_op: ProjectionSpec, sub_op: ProjectionSpec) -> bool:
    """``R ⊇ R'`` with subtree semantics.

    A referenced path is covered when it lies inside (or equals) some
    output subtree of the stream — outputting ``coord/cel`` keeps
    ``coord/cel/ra`` available.
    """
    for needed in sub_op.referenced_elements:
        if not any(needed.starts_with(out) for out in stream_op.output_elements):
            return False
    return True


def missing_operators(
    stream: StreamProperties, subscription: StreamProperties
) -> Optional[list]:
    """Diagnostic helper: subscription operators with no stream
    counterpart of the same kind (useful in optimizer traces/tests)."""
    if stream.stream != subscription.stream:
        return None
    present = {op.kind for op in stream.operators}
    return [op for op in subscription.operators if op.kind not in present]
