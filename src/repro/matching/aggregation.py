"""``MatchAggregations`` — sharing window-based aggregates (Section 3.3).

An existing aggregate result stream can answer a new aggregate
subscription when *all* of the following hold (Figure 5):

1. compatible aggregation operators over the same input data and the
   same aggregated element.  ``avg`` aggregates are internally carried
   as ``(sum, count)`` pairs, so an ``avg`` stream can also serve
   ``sum`` and ``count`` subscriptions (the paper's relaxation of the
   equal-operator requirement);
2. identical selections prior to the aggregation — implication is *not*
   enough, because a looser pre-selection would fold extra items into
   the partial aggregates;
3. if the reused aggregation result was filtered (e.g. ``$a >= 1.3``),
   reuse is only possible for subscriptions applying the same or a more
   restrictive filter over the *same* windows — combining filtered
   values into coarser windows would miss suppressed values;
4. window compatibility: same window type and (for time-based windows)
   the same ordered reference element, with
   ``∆' mod ∆ = 0``, ``∆ mod µ = 0`` and ``µ' mod µ = 0``.
"""

from __future__ import annotations

from ..predicates import match_predicates
from ..properties import AggregationSpec

#: ``reused function -> functions it can serve``.  ``avg`` streams carry
#: (sum, count) pairs on the wire (Section 3.3, last paragraph).
_SERVABLE = {
    "min": frozenset({"min"}),
    "max": frozenset({"max"}),
    "sum": frozenset({"sum"}),
    "count": frozenset({"count"}),
    "avg": frozenset({"avg", "sum", "count"}),
}


def functions_compatible(reused: str, new: str) -> bool:
    """Can partial ``reused`` aggregates produce ``new`` aggregates?"""
    return new in _SERVABLE[reused]


def serving_functions(new: str) -> frozenset:
    """The inverse of :data:`_SERVABLE`: functions whose result streams
    can serve ``new`` aggregates (``sum`` ← {``sum``, ``avg``}, …).

    Used by the stream-availability index to enumerate the aggregation
    signatures a subscription is structurally compatible with.
    """
    return frozenset(
        reused for reused, served in _SERVABLE.items() if new in served
    )


def match_aggregations(
    reused: AggregationSpec, new: AggregationSpec, mode: str = "edgewise"
) -> bool:
    """``True`` iff ``reused``'s result stream can answer ``new``.

    ``mode`` selects the predicate-matching variant used for the result
    filter implication check (see :func:`repro.predicates.match_predicates`).
    """
    # 1. Operators, input element.
    if not functions_compatible(reused.function, new.function):
        return False
    if reused.aggregated_path != new.aggregated_path:
        return False

    # 2. Identical pre-aggregation selections.
    if reused.pre_selection != new.pre_selection:
        return False

    # 3. Filtered aggregation results.
    if reused.is_filtered:
        if reused.window != new.window:
            return False
        if not match_predicates(reused.result_filter, new.result_filter, mode):
            return False
        return True

    # 4. Window compatibility (∆' mod ∆, ∆ mod µ, µ' mod µ).
    return new.window.shareable_from(reused.window)
