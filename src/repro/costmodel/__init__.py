"""Cost model: statistics, operator loads, C(P), latency (Section 3.2)."""

from .descriptions import DEFAULT_DESCRIPTIONS, DescriptionRegistry, UdfDescription
from .latency import DEFAULT_LATENCY_MODEL, LatencyModel
from .load import BASE_LOADS, OperatorLoad, base_load, operator_load
from .model import (
    AGGREGATE_ITEM_SIZE,
    RESIDUE_TOLERANCE,
    CostModel,
    NetworkUsage,
    PlanEffects,
    StreamRate,
    estimate_stream_rate,
)
from .statistics import (
    MIN_SELECTIVITY,
    PathStatistics,
    StatisticsCatalog,
    StreamStatistics,
)

__all__ = [
    "AGGREGATE_ITEM_SIZE",
    "BASE_LOADS",
    "CostModel",
    "DEFAULT_DESCRIPTIONS",
    "DEFAULT_LATENCY_MODEL",
    "DescriptionRegistry",
    "UdfDescription",
    "LatencyModel",
    "MIN_SELECTIVITY",
    "NetworkUsage",
    "OperatorLoad",
    "PathStatistics",
    "PlanEffects",
    "RESIDUE_TOLERANCE",
    "StatisticsCatalog",
    "StreamRate",
    "StreamStatistics",
    "base_load",
    "estimate_stream_rate",
    "operator_load",
]
