"""The cost model ``C`` (Section 3.2).

Three layers:

* :func:`estimate_stream_rate` — ``size(p)`` and ``freq(p)`` of the
  stream described by a :class:`~repro.properties.model.StreamProperties`
  (paper formulas for selection/projection/aggregation/window queries);
* :class:`NetworkUsage` — the current bandwidth/load commitments of the
  network, yielding the available fractions ``a_b(e)`` and ``a_l(v)``;
* :class:`CostModel` — the weighted cost function with the exponential
  overload penalty, plus the hard overload test used by admission
  control in the rejection experiment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..network.topology import Link, Network
from ..predicates import ZERO
from ..properties import (
    AggregationSpec,
    StreamProperties,
    WindowContentsSpec,
    WindowSpec,
)
from .descriptions import DEFAULT_DESCRIPTIONS
from .statistics import MIN_SELECTIVITY, StatisticsCatalog, StreamStatistics

#: Approximate wire sizes (bytes) of one aggregate result item.  ``avg``
#: aggregates travel as (sum, count) pairs (Section 3.3); the engine's
#: wire format matches these within a few bytes.
AGGREGATE_ITEM_SIZE = {
    "min": 24.0,
    "max": 24.0,
    "sum": 26.0,
    "count": 22.0,
    "avg": 46.0,  # <agg><sum>…</sum><count>…</count></agg>
}


@dataclass(frozen=True)
class StreamRate:
    """Average item size (bytes) and frequency (items per second)."""

    size: float
    frequency: float

    @property
    def bits_per_second(self) -> float:
        return self.size * 8.0 * self.frequency


def estimate_stream_rate(
    properties: StreamProperties, catalog: StatisticsCatalog
) -> StreamRate:
    """``size(p)`` and ``freq(p)`` for a (possibly derived) stream.

    Follows Section 3.2 exactly:

    * selections scale the frequency by their selectivity and leave the
      item size unchanged;
    * projections shrink the item size
      (``size(p) = size(s) − Σ_{n∉Π} occ(n)·size(n)``, realized as a
      measured projection over the catalog sample) and leave the
      frequency unchanged;
    * aggregations replace the item by an aggregate value whose size is
      independent of the input, at the window's update frequency;
    * window-contents queries emit one batch of the (selected,
      projected) items per window update.
    """
    stats = catalog.for_stream(properties.stream)
    size = stats.avg_item_size
    frequency = stats.frequency

    selection = properties.selection
    if selection is not None:
        frequency *= stats.selectivity(selection.graph)

    projection = properties.projection
    if projection is not None:
        size = stats.projected_size(projection.output_elements)

    aggregation = properties.aggregation
    if aggregation is not None:
        return _aggregate_rate(aggregation, stats, frequency)

    window_op = properties.operator_of_kind("window")
    if isinstance(window_op, WindowContentsSpec):
        return _window_contents_rate(window_op, stats, size, frequency)

    # User-defined operators: apply declared descriptions when present;
    # unknown UDFs are conservatively rate-neutral (see
    # repro.costmodel.descriptions).
    for op in properties.operators:
        if op.kind != "udf":
            continue
        description = DEFAULT_DESCRIPTIONS.lookup(getattr(op, "name", ""))
        if description is not None:
            frequency *= description.selectivity
            size *= description.size_factor

    return StreamRate(size=size, frequency=frequency)


def _window_update_frequency(
    window: WindowSpec, stats: StreamStatistics, input_frequency: float
) -> float:
    """Average window updates per second (the ``freq(p)`` rules).

    Item-based: the input frequency divided by the step size µ.
    Time-based: µ divided by the average reference-element increment
    gives the items per update; dividing the *raw* input frequency by it
    yields the update rate (the reference element advances with the raw
    stream regardless of selections).
    """
    if window.kind == "count":
        return input_frequency / float(window.step)
    assert window.reference is not None
    increment = stats.avg_increment(window.reference)
    if increment is None or increment <= 0:
        # Degenerate reference element: fall back to one update per step
        # worth of items, mirroring the item-based rule.
        return input_frequency / float(window.step)
    items_per_update = float(window.step) / increment
    if items_per_update <= 0:
        return input_frequency
    return stats.frequency / items_per_update


def _aggregate_rate(
    aggregation: AggregationSpec, stats: StreamStatistics, input_frequency: float
) -> StreamRate:
    size = AGGREGATE_ITEM_SIZE[aggregation.function]
    frequency = _window_update_frequency(aggregation.window, stats, input_frequency)
    if aggregation.is_filtered:
        frequency *= _result_filter_selectivity(aggregation, stats)
    return StreamRate(size=size, frequency=frequency)


def _window_contents_rate(
    window_op: WindowContentsSpec,
    stats: StreamStatistics,
    item_size: float,
    input_frequency: float,
) -> StreamRate:
    """Batch size = items per window × item size (Section 3.2)."""
    window = window_op.window
    if window.kind == "count":
        items_per_window = float(window.size)
    else:
        assert window.reference is not None
        increment = stats.avg_increment(window.reference)
        raw_per_window = (
            float(window.size) / increment if increment and increment > 0 else float(window.size)
        )
        # Selections thin out the items inside the window.
        survival = input_frequency / stats.frequency if stats.frequency else 1.0
        items_per_window = raw_per_window * survival
    window_envelope = 2 * 8.0  # <window> … </window>
    size = items_per_window * item_size + window_envelope
    frequency = _window_update_frequency(window, stats, input_frequency)
    return StreamRate(size=size, frequency=frequency)


def _result_filter_selectivity(
    aggregation: AggregationSpec, stats: StreamStatistics
) -> float:
    """Fraction of aggregate values passing the result filter.

    Approximated with the *aggregated element's* value distribution —
    for windowed means over stationary streams the aggregate
    concentrates around the element mean, so its range is a usable
    stand-in when no aggregate-level statistics exist.
    """
    value_range = stats.value_range(aggregation.aggregated_path)
    if value_range is None:
        return 0.5
    low, high = value_range
    if high <= low:
        return 1.0
    closure = aggregation.result_filter.closure()
    lower: Optional[float] = None
    upper: Optional[float] = None
    for (source, target), bound in closure.items():
        if target == ZERO:
            upper = float(bound.value) if upper is None else min(upper, float(bound.value))
        elif source == ZERO:
            candidate = -float(bound.value)
            lower = candidate if lower is None else max(lower, candidate)
    effective_low = low if lower is None else max(low, lower)
    effective_high = high if upper is None else min(high, upper)
    fraction = (effective_high - effective_low) / (high - low)
    return max(MIN_SELECTIVITY, min(1.0, fraction))


# ----------------------------------------------------------------------
# Network usage bookkeeping
# ----------------------------------------------------------------------
#: Register/deregister round-trips release commitments by float
#: subtraction; the residues they leave (positive *or* negative) are
#: many orders of magnitude below any real commitment (which is at
#: least one item per second through one operator).  Totals within this
#: tolerance of zero are clamped to exactly 0.0 so churn cannot
#: accumulate dust that the static verifier's P13x invariants would
#: misread as stale or negative commitments.
RESIDUE_TOLERANCE = 1e-6


def _clamp_residue(total: float) -> float:
    return 0.0 if -RESIDUE_TOLERANCE < total < RESIDUE_TOLERANCE else total


class NetworkUsage:
    """Committed bandwidth per link and computational load per peer.

    Tracks absolute quantities (bits/s, work units/s); the relative
    ``u_b``/``u_l`` and available ``a_b``/``a_l`` fractions of the cost
    function are derived against the topology's capacities.
    """

    def __init__(self, net: Network) -> None:
        self._net = net
        self._link_bits: Dict[Tuple[str, str], float] = {}
        self._peer_work: Dict[str, float] = {}

    # -- commitments ----------------------------------------------------
    def add_link_traffic(self, link: Link, bits_per_second: float) -> None:
        self._link_bits[link.ends] = _clamp_residue(
            self._link_bits.get(link.ends, 0.0) + bits_per_second
        )

    def add_peer_work(self, peer: str, work_per_second: float) -> None:
        self._peer_work[peer] = _clamp_residue(
            self._peer_work.get(peer, 0.0) + work_per_second
        )

    # -- fractions ------------------------------------------------------
    def link_traffic(self, link: Link) -> float:
        return self._link_bits.get(link.ends, 0.0)

    def peer_work(self, peer: str) -> float:
        return self._peer_work.get(peer, 0.0)

    def used_bandwidth_fraction(self, link: Link) -> float:
        return self.link_traffic(link) / link.bandwidth

    def used_load_fraction(self, peer: str) -> float:
        capacity = self._net.super_peer(peer).capacity
        return self.peer_work(peer) / capacity

    def available_bandwidth_fraction(self, link: Link) -> float:
        """``a_b(e)`` — clamped at zero when already overcommitted."""
        return max(0.0, 1.0 - self.used_bandwidth_fraction(link))

    def available_load_fraction(self, peer: str) -> float:
        """``a_l(v)``."""
        return max(0.0, 1.0 - self.used_load_fraction(peer))

    def copy(self) -> "NetworkUsage":
        clone = NetworkUsage(self._net)
        clone._link_bits = dict(self._link_bits)
        clone._peer_work = dict(self._peer_work)
        return clone


@dataclass
class PlanEffects:
    """The additional commitments a candidate evaluation plan causes.

    ``link_bits``: added stream traffic per affected connection (``P_e``
    aggregated to bits/s); ``peer_work``: added operator load per
    affected peer (``O_v`` aggregated to work units/s).
    """

    link_bits: Dict[Link, float] = field(default_factory=dict)
    peer_work: Dict[str, float] = field(default_factory=dict)

    def add_link(self, link: Link, bits_per_second: float) -> None:
        self.link_bits[link] = self.link_bits.get(link, 0.0) + bits_per_second

    def add_peer(self, peer: str, work_per_second: float) -> None:
        self.peer_work[peer] = self.peer_work.get(peer, 0.0) + work_per_second

    def merge(self, other: "PlanEffects") -> None:
        for link, bits in other.link_bits.items():
            self.add_link(link, bits)
        for peer, work in other.peer_work.items():
            self.add_peer(peer, work)


class CostModel:
    """The cost function ``C(P)`` with weighting factor γ.

    ``γ ∈ [0, 1]`` balances network traffic (γ) against peer load
    (1 − γ); overload beyond the available fractions incurs the paper's
    exponential penalty ``max(0, u − a) · e^(u − a)``.
    """

    def __init__(self, net: Network, gamma: float = 0.5) -> None:
        if not 0.0 <= gamma <= 1.0:
            raise ValueError("gamma must lie in [0, 1]")
        self._net = net
        self.gamma = gamma

    def plan_cost(self, effects: PlanEffects, usage: NetworkUsage) -> float:
        """``C(P)`` of a candidate plan against the current usage."""
        traffic_cost = 0.0
        for link, bits in effects.link_bits.items():
            u_b = bits / link.bandwidth
            a_b = usage.available_bandwidth_fraction(link)
            traffic_cost += u_b + _overload_penalty(u_b, a_b)
        load_cost = 0.0
        for peer, work in effects.peer_work.items():
            capacity = self._net.super_peer(peer).capacity
            u_l = work / capacity
            a_l = usage.available_load_fraction(peer)
            load_cost += u_l + _overload_penalty(u_l, a_l)
        return self.gamma * traffic_cost + (1.0 - self.gamma) * load_cost

    def overloads(self, effects: PlanEffects, usage: NetworkUsage) -> bool:
        """Hard overload test for admission control (Section 4).

        ``True`` when the plan would push any connection or peer past
        its available capacity.
        """
        for link, bits in effects.link_bits.items():
            if bits / link.bandwidth > usage.available_bandwidth_fraction(link) + 1e-12:
                return True
        for peer, work in effects.peer_work.items():
            capacity = self._net.super_peer(peer).capacity
            if work / capacity > usage.available_load_fraction(peer) + 1e-12:
                return True
        return False


def _overload_penalty(used: float, available: float) -> float:
    """``max(0, u − a) · e^(u − a)`` — zero while within capacity."""
    over = used - available
    if over <= 0.0:
        return 0.0
    return over * math.exp(over)
