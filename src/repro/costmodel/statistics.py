"""Statistics catalog feeding the cost model (Section 3.2).

"Cost function inputs like average frequencies of data stream items,
average sizes and occurrences of elements, and selectivities of
operators are obtained from statistics and selectivity estimations."

:class:`StreamStatistics` holds, per registered input stream:

* the average arrival frequency ``freq(s)`` (items per virtual second);
* the average serialized item size ``size(s)`` in bytes;
* per element path: average occurrence ``occ(n_s)`` per item, average
  serialized subtree size ``size(n_s)``, and — for numeric leaves — the
  observed value range (the uniform-distribution input to selectivity
  estimation) and the average increment between successive items (the
  time-based-window frequency estimator's input).

Statistics are *measured from a sample* of the actual generator output
(:meth:`StreamStatistics.from_sample`), which keeps the estimator and
the executed system consistent by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..predicates import ZERO, PredicateGraph
from ..xmlkit import Element, Path, prune_to_paths

#: Selectivity floor: even a predicate selecting "nothing" in the sample
#: is estimated above zero, matching classic catalog practice.
MIN_SELECTIVITY = 1e-4


#: Buckets per equi-width histogram on numeric leaves.
HISTOGRAM_BUCKETS = 24


@dataclass
class PathStatistics:
    """Catalog entry of one element path within a stream item."""

    occurrence: float = 0.0
    avg_size: float = 0.0
    minimum: Optional[float] = None
    maximum: Optional[float] = None
    avg_increment: Optional[float] = None
    #: Largest sampled item-to-item increment — the flow analyzer's
    #: upper bound on how fast a time-based window reference can
    #: advance per arriving item.
    max_increment: Optional[float] = None
    #: ``True`` when the sampled values never decreased item-to-item —
    #: the static qualification for a time-based window's reference
    #: element (streams must be sorted by it, Section 2).
    nondecreasing: Optional[bool] = None
    #: Equi-width histogram over ``[minimum, maximum]`` — captures the
    #: value skew (hot spots) the uniform model misses.
    histogram: Optional[List[int]] = None

    @property
    def spread(self) -> Optional[float]:
        if self.minimum is None or self.maximum is None:
            return None
        return self.maximum - self.minimum

    def mass_fraction(self, low: Optional[float], high: Optional[float]) -> float:
        """Estimated fraction of values inside ``[low, high]``.

        Uses the histogram when available (linear interpolation within
        boundary buckets), falling back to the uniform model.
        """
        if self.minimum is None or self.maximum is None:
            return 1.0
        effective_low = self.minimum if low is None else max(low, self.minimum)
        effective_high = self.maximum if high is None else min(high, self.maximum)
        if effective_high <= effective_low:
            if effective_high == effective_low and self.minimum == self.maximum:
                return 1.0  # constant-valued element
            return 0.0
        spread = self.maximum - self.minimum
        if spread <= 0:
            return 1.0
        if not self.histogram:
            return (effective_high - effective_low) / spread
        total = sum(self.histogram)
        if total == 0:
            return (effective_high - effective_low) / spread
        width = spread / len(self.histogram)
        mass = 0.0
        for index, count in enumerate(self.histogram):
            bucket_low = self.minimum + index * width
            bucket_high = bucket_low + width
            overlap = min(effective_high, bucket_high) - max(effective_low, bucket_low)
            if overlap <= 0:
                continue
            mass += count * min(1.0, overlap / width)
        return min(1.0, mass / total)


@dataclass
class StreamStatistics:
    """Measured statistics of one registered input stream."""

    stream: str
    item_path: Path
    frequency: float
    avg_item_size: float
    paths: Dict[Path, PathStatistics] = field(default_factory=dict)
    #: Retained sample for measured projection sizes.
    _sample: List[Element] = field(default_factory=list, repr=False)
    #: Memoization: plan search re-estimates the same projections and
    #: selections thousands of times during registration.
    _projection_cache: Dict[frozenset, float] = field(default_factory=dict, repr=False)
    _selectivity_cache: Dict[tuple, float] = field(default_factory=dict, repr=False)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_sample(
        cls,
        stream: str,
        item_path: Path,
        items: Sequence[Element],
        frequency: float,
    ) -> "StreamStatistics":
        """Measure statistics from ``items`` (stream items, e.g. photons).

        ``item_path`` is the absolute path to the items (including the
        stream root tag, e.g. ``photons/photon``); all catalog paths are
        stored in absolute form to align with predicate-graph labels.
        """
        if not items:
            raise ValueError(f"stream {stream!r}: cannot build statistics from nothing")
        if frequency <= 0:
            raise ValueError(f"stream {stream!r}: frequency must be positive")
        total_size = 0
        per_path_sizes: Dict[Path, List[int]] = {}
        per_path_counts: Dict[Path, int] = {}
        per_path_values: Dict[Path, List[float]] = {}
        for item in items:
            total_size += item.serialized_size()
            _walk(item, item_path, per_path_sizes, per_path_counts, per_path_values)

        stats = cls(
            stream=stream,
            item_path=item_path,
            frequency=frequency,
            avg_item_size=total_size / len(items),
            _sample=list(items),
        )
        count = len(items)
        for path, sizes in per_path_sizes.items():
            entry = PathStatistics(
                occurrence=per_path_counts[path] / count,
                avg_size=sum(sizes) / len(sizes),
            )
            values = per_path_values.get(path)
            if values:
                entry.minimum = min(values)
                entry.maximum = max(values)
                if len(values) > 1:
                    increments = [b - a for a, b in zip(values, values[1:])]
                    entry.avg_increment = sum(increments) / len(increments)
                    entry.max_increment = max(increments)
                    entry.nondecreasing = all(step >= 0 for step in increments)
                entry.histogram = _build_histogram(
                    values, entry.minimum, entry.maximum
                )
            stats.paths[path] = entry
        return stats

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def path_stats(self, path: Path) -> PathStatistics:
        entry = self.paths.get(path)
        if entry is None:
            raise KeyError(f"stream {self.stream!r} has no statistics for {path}")
        return entry

    def has_path(self, path: Path) -> bool:
        return path in self.paths

    def value_range(self, path: Path) -> Optional[Tuple[float, float]]:
        entry = self.paths.get(path)
        if entry is None or entry.minimum is None or entry.maximum is None:
            return None
        return entry.minimum, entry.maximum

    def avg_increment(self, path: Path) -> Optional[float]:
        entry = self.paths.get(path)
        return None if entry is None else entry.avg_increment

    def max_increment(self, path: Path) -> Optional[float]:
        """Largest sampled item-to-item increment of ``path``."""
        entry = self.paths.get(path)
        return None if entry is None else entry.max_increment

    def is_nondecreasing(self, path: Path) -> Optional[bool]:
        """Whether the sampled values of ``path`` never decreased."""
        entry = self.paths.get(path)
        return None if entry is None else entry.nondecreasing

    # ------------------------------------------------------------------
    # Derived estimates
    # ------------------------------------------------------------------
    def projected_size(self, output_paths: Iterable[Path]) -> float:
        """Measured average size of items projected to ``output_paths``.

        Paths are absolute; they are rebased onto the item before the
        sample items are pruned.  This replaces the paper's subtraction
        formula with a measurement over the same sample — the two agree
        for disjoint projection elements (covered by a unit test).
        """
        key = frozenset(output_paths)
        cached = self._projection_cache.get(key)
        if cached is not None:
            return cached
        relative = [self._rebase(path) for path in key]
        total = 0
        for item in self._sample:
            pruned = prune_to_paths(item, relative)
            if pruned is not None:
                total += pruned.serialized_size()
        result = total / len(self._sample)
        self._projection_cache[key] = result
        return result

    def paper_projected_size(self, output_paths: Iterable[Path]) -> float:
        """The paper's formula: ``size(s) − Σ_{n∉Π} occ(n)·size(n)``.

        The subtraction runs over the *maximal* dropped subtrees (top-
        most paths not retained and not an ancestor of a retained path),
        so nested elements are not double-counted.
        """
        outputs = list(output_paths)
        dropped = 0.0
        for path, entry in self.paths.items():
            if self._retained(path, outputs):
                continue
            if not self._parent_kept(path, outputs):
                continue  # an ancestor is already dropped wholesale
            dropped += entry.occurrence * entry.avg_size
        return self.avg_item_size - dropped

    def _parent_kept(self, path: Path, outputs: List[Path]) -> bool:
        """The direct parent of ``path`` survives the projection."""
        parent = path.parent
        if len(parent.steps) <= len(self.item_path.steps):
            return True  # parent is the item root itself
        return self._retained(parent, outputs)

    def _retained(self, path: Path, outputs: List[Path]) -> bool:
        """Retained = inside an output subtree or an ancestor of one."""
        return self._retained_strict(path, outputs) or self._is_ancestor_of_retained(
            path, outputs
        )

    @staticmethod
    def _retained_strict(path: Path, outputs: List[Path]) -> bool:
        return any(path.starts_with(out) for out in outputs)

    @staticmethod
    def _is_ancestor_of_retained(path: Path, outputs: List[Path]) -> bool:
        return any(out.starts_with(path) for out in outputs)

    def selectivity(self, graph: PredicateGraph) -> float:
        """Estimated fraction of items satisfying ``graph``.

        Histogram-and-independence model: each constrained variable
        contributes the histogram mass of its derived interval (falling
        back to the uniform overlap when no histogram exists);
        variable-to-variable constraints contribute a fixed factor of ½
        (no correlation statistics).
        """
        if graph.is_empty():
            return 1.0
        key = tuple(sorted(
            (str(s), str(t), b.value, b.strict) for (s, t), b in graph.edges.items()
        ))
        cached = self._selectivity_cache.get(key)
        if cached is not None:
            return cached
        selectivity = 1.0
        closure = graph.closure()
        for node in graph.variables():
            lower, upper = None, None
            up = closure.get((node, ZERO))
            lo = closure.get((ZERO, node))
            if up is not None:
                upper = float(up.value)
            if lo is not None:
                lower = -float(lo.value)
            if lower is None and upper is None:
                continue
            value_range = self.value_range(node)
            if value_range is None:
                selectivity *= 0.5  # no statistics: textbook default
                continue
            low, high = value_range
            if high <= low:
                continue  # constant-valued element: no discrimination
            entry = self.paths[node]
            selectivity *= entry.mass_fraction(lower, upper)
        for (source, target), _ in graph.edges.items():
            if source != ZERO and target != ZERO:
                selectivity *= 0.5
        result = max(MIN_SELECTIVITY, min(1.0, selectivity))
        self._selectivity_cache[key] = result
        return result

    # ------------------------------------------------------------------
    def _rebase(self, path: Path) -> Path:
        if path.starts_with(self.item_path):
            return path.relative_to(self.item_path)
        raise KeyError(
            f"path {path} is not under item path {self.item_path} "
            f"of stream {self.stream!r}"
        )


class StatisticsCatalog:
    """Per-stream statistics registry used by the optimizer."""

    def __init__(self) -> None:
        self._streams: Dict[str, StreamStatistics] = {}

    def register(self, stats: StreamStatistics) -> None:
        if stats.stream in self._streams:
            raise ValueError(f"statistics for stream {stats.stream!r} already registered")
        self._streams[stats.stream] = stats

    def for_stream(self, stream: str) -> StreamStatistics:
        try:
            return self._streams[stream]
        except KeyError:
            raise KeyError(f"no statistics registered for stream {stream!r}") from None

    def __contains__(self, stream: str) -> bool:
        return stream in self._streams

    def streams(self) -> List[str]:
        return list(self._streams)


def _build_histogram(
    values: List[float], minimum: float, maximum: float
) -> Optional[List[int]]:
    """Equi-width histogram of the sample, or ``None`` when degenerate."""
    if maximum <= minimum or len(values) < 2:
        return None
    width = (maximum - minimum) / HISTOGRAM_BUCKETS
    buckets = [0] * HISTOGRAM_BUCKETS
    for value in values:
        index = min(HISTOGRAM_BUCKETS - 1, int((value - minimum) / width))
        buckets[index] += 1
    return buckets


def _walk(
    item: Element,
    item_path: Path,
    sizes: Dict[Path, List[int]],
    counts: Dict[Path, int],
    values: Dict[Path, List[float]],
) -> None:
    """Collect per-path size/occurrence/value samples from one item."""
    stack: List[Tuple[Element, Tuple[str, ...]]] = [
        (child, item_path.steps + (child.tag,)) for child in item.children
    ]
    while stack:
        node, steps = stack.pop()
        path = Path(steps)
        sizes.setdefault(path, []).append(node.serialized_size())
        counts[path] = counts.get(path, 0) + 1
        if node.text is not None:
            try:
                values.setdefault(path, []).append(float(node.text))
            except ValueError:
                pass
        stack.extend((child, steps + (child.tag,)) for child in node.children)
