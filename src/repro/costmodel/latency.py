"""Registration latency model (Table 1 substitution — see DESIGN.md).

The paper measures wall-clock times "from the beginning of [a query's]
registration until it was successfully installed and executed" on a
blade cluster.  Without that testbed we model the latency from the
registration protocol's actual message pattern, which is what produces
the paper's shape (stream sharing within a factor of ~3 of the simpler
strategies):

* a fixed per-query overhead (parsing, properties construction, OGSA
  service invocation);
* one probe round-trip per super-peer *visited* by the breadth-first
  search (data/query shipping visit nothing — their route is fixed);
* a per-candidate cost for every properties match performed;
* one installation round-trip per operator placement and per routing
  hop of the final plan;
* the optimizer's *measured* CPU time, added on top.

The constants put the baseline strategies in the paper's hundreds-of-ms
band for the first scenario; only the *ratios* between strategies are
claimed as reproduced (EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LatencyModel:
    """Latency constants in milliseconds."""

    base_ms: float = 240.0
    per_visited_node_ms: float = 110.0
    per_candidate_match_ms: float = 14.0
    per_operator_install_ms: float = 120.0
    per_route_hop_ms: float = 70.0

    def registration_time_ms(
        self,
        visited_nodes: int,
        candidate_matches: int,
        installed_operators: int,
        route_hops: int,
        optimizer_cpu_ms: float = 0.0,
    ) -> float:
        """Total simulated registration latency for one subscription."""
        if min(visited_nodes, candidate_matches, installed_operators, route_hops) < 0:
            raise ValueError("latency model inputs cannot be negative")
        return (
            self.base_ms
            + visited_nodes * self.per_visited_node_ms
            + candidate_matches * self.per_candidate_match_ms
            + installed_operators * self.per_operator_install_ms
            + route_hops * self.per_route_hop_ms
            + optimizer_cpu_ms
        )


DEFAULT_LATENCY_MODEL = LatencyModel()
