"""Operator load model (Section 3.2).

"The average load ``load(o, v, P_o)`` of an operator ``o`` on a peer
``v`` ... depends on the performance of the executing peer, expressed by
a performance index ``pindex(v)``, and the characteristics of the
operator itself ... ``load(σ, v, s) := bload(σ) · pindex(v) · freq(s)``."

Base loads are expressed in abstract *work units per item*; multiplied
by the input frequency they yield work units per virtual second, the
same unit as a peer's capacity ``l(v)``.  The executor charges identical
per-item work when streams actually run, so estimated and measured CPU
load agree up to selectivity-estimation error.

The constants are calibrated so that the paper's first scenario lands in
its reported CPU range (single-digit to ~40 % per super-peer on the
default 1 M units/s capacity); only ratios between operators matter for
the reproduced shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..network.topology import SuperPeer

#: Work units charged per input item, by operator kind.
BASE_LOADS: Dict[str, float] = {
    # Evaluate a conjunctive predicate against an item.
    "selection": 40.0,
    # Rebuild a pruned copy of the item.
    "projection": 60.0,
    # Maintain a window and fold an item into partial aggregates.
    "aggregation": 50.0,
    # Maintain a window emitting item batches.
    "window": 50.0,
    # Combine partial aggregates into coarser ones (compensation).
    "reaggregation": 15.0,
    # Post-processing: construct the subscriber-facing result element.
    "restructure": 30.0,
    # Forward one item over one outgoing link (relay work).
    "transfer": 8.0,
    # Duplicate a stream at a sharing point.
    "duplicate": 4.0,
    # Parse/ingest one item arriving from a registered source.
    "ingest": 10.0,
    # A user-defined operator; without operator descriptions (future
    # work in the paper) a selection-like default is assumed.
    "udf": 40.0,
}


def base_load(kind: str, udf_name: Optional[str] = None) -> float:
    """``bload(o)`` for an operator kind.

    For ``kind == "udf"`` a declared operator description
    (:mod:`repro.costmodel.descriptions`) overrides the generic UDF base
    load when it specifies one.
    """
    if kind == "udf" and udf_name is not None:
        from .descriptions import DEFAULT_DESCRIPTIONS

        description = DEFAULT_DESCRIPTIONS.lookup(udf_name)
        if description is not None and description.base_load is not None:
            return description.base_load
    try:
        return BASE_LOADS[kind]
    except KeyError:
        raise ValueError(f"unknown operator kind {kind!r}") from None


@dataclass(frozen=True)
class OperatorLoad:
    """An operator's estimated steady-state load on one peer."""

    kind: str
    peer: str
    input_frequency: float
    work_per_second: float


def operator_load(kind: str, peer: SuperPeer, input_frequency: float) -> OperatorLoad:
    """``load(o, v, P_o) = bload(o) · pindex(v) · Σ freq(s)``."""
    if input_frequency < 0:
        raise ValueError("input frequency cannot be negative")
    work = base_load(kind) * peer.pindex * input_frequency
    return OperatorLoad(kind, peer.name, input_frequency, work)
