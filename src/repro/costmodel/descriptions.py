"""Operator descriptions for user-defined operators.

Algorithm 2 treats unknown operators as black boxes ("Nothing is known
about the semantics of these operators"); the paper's future-work
remark — "more sophisticated techniques for identifying shareable user
defined operators involve the development of suitable operator
descriptions providing the necessary meta data" — is realized here for
the *cost-model* half of the problem: a :class:`UdfDescription`
declares how an operator transforms stream rate and item size, so
plans containing UDF stages can be costed instead of assumed
rate-neutral.

Descriptions are deliberately conservative: without one, a UDF is
assumed to preserve both size and frequency (the safest neutral
default); with one, the declared factors feed
:func:`repro.costmodel.model.estimate_stream_rate` and the planner's
stage-frequency bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class UdfDescription:
    """Declared cost metadata of one user-defined operator.

    Attributes
    ----------
    name:
        The operator name (matches :class:`repro.properties.UdfSpec`).
    selectivity:
        Expected output/input item ratio (1.0 = keeps every item;
        0.2 = drops 80 %; values > 1 fan out).
    size_factor:
        Expected output/input serialized-size ratio (1.0 = unchanged).
    base_load:
        Work units charged per input item; defaults to the generic
        ``udf`` base load when ``None``.
    """

    name: str
    selectivity: float = 1.0
    size_factor: float = 1.0
    base_load: Optional[float] = None

    def __post_init__(self) -> None:
        if self.selectivity < 0:
            raise ValueError(f"UDF {self.name!r}: selectivity cannot be negative")
        if self.size_factor <= 0:
            raise ValueError(f"UDF {self.name!r}: size factor must be positive")
        if self.base_load is not None and self.base_load < 0:
            raise ValueError(f"UDF {self.name!r}: base load cannot be negative")


class DescriptionRegistry:
    """Registry of declared operator descriptions."""

    def __init__(self) -> None:
        self._descriptions: Dict[str, UdfDescription] = {}

    def register(self, description: UdfDescription) -> None:
        if description.name in self._descriptions:
            raise ValueError(f"description for {description.name!r} already registered")
        self._descriptions[description.name] = description

    def lookup(self, name: str) -> Optional[UdfDescription]:
        return self._descriptions.get(name)

    def __contains__(self, name: str) -> bool:
        return name in self._descriptions


#: Process-wide default registry consulted by the estimator.
DEFAULT_DESCRIPTIONS = DescriptionRegistry()
