"""WXQuery — the Windowed XQuery subscription language (paper Section 2).

The front end in three stages:

>>> from repro.wxquery import parse_query, analyze
>>> q = parse_query('''
...   <photons>{ for $p in stream("photons")/photons/photon
...              where $p/en >= 1.3
...              return <hot> { $p/en } </hot> }</photons>''')
>>> a = analyze(q)
>>> a.streams()
['photons']
"""

from .analyzer import AnalyzedQuery, Binding, ResolvedAtom, analyze
from .ast import (
    AGGREGATE_FUNCTIONS,
    Comparison,
    Condition,
    DirectElement,
    EmptyElement,
    EnclosedExpr,
    Expr,
    FLWRExpr,
    ForClause,
    IfExpr,
    LetClause,
    Operand,
    PathOutput,
    Query,
    SequenceExpr,
    StreamSource,
    VarOutput,
    WindowClause,
    conjunction,
    fraction_to_literal,
    literal_to_fraction,
)
from .errors import AnalysisError, LexError, ParseError, WXQueryError
from .lexer import Token, tokenize
from .parser import parse_query
from .unparse import unparse, unparse_expr

__all__ = [
    "AGGREGATE_FUNCTIONS",
    "AnalyzedQuery",
    "AnalysisError",
    "Binding",
    "Comparison",
    "Condition",
    "DirectElement",
    "EmptyElement",
    "EnclosedExpr",
    "Expr",
    "FLWRExpr",
    "ForClause",
    "IfExpr",
    "LetClause",
    "LexError",
    "Operand",
    "ParseError",
    "PathOutput",
    "Query",
    "ResolvedAtom",
    "SequenceExpr",
    "StreamSource",
    "Token",
    "VarOutput",
    "WXQueryError",
    "WindowClause",
    "analyze",
    "conjunction",
    "fraction_to_literal",
    "literal_to_fraction",
    "parse_query",
    "tokenize",
    "unparse",
    "unparse_expr",
]
