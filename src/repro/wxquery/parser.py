"""Recursive-descent parser for WXQuery.

The grammar is exactly Definition 2.1 of the paper.  The parser builds
:mod:`repro.wxquery.ast` nodes and performs *no* semantic checks beyond
what the grammar forces — variable scoping, fragment restrictions, and
schema checks live in :mod:`repro.wxquery.analyzer`.

Entry point: :func:`parse_query`.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Tuple, Union

from ..xmlkit import Path
from .ast import (
    AGGREGATE_FUNCTIONS,
    Comparison,
    Condition,
    DirectElement,
    EmptyElement,
    EnclosedExpr,
    Expr,
    FLWRExpr,
    ForClause,
    IfExpr,
    LetClause,
    Operand,
    PathOutput,
    Query,
    SequenceExpr,
    StreamSource,
    VarOutput,
    WindowClause,
    literal_to_fraction,
)
from .errors import ParseError
from .lexer import Token, tokenize


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = tokenize(text)
        self.index = 0

    # ------------------------------------------------------------------
    # Token stream helpers
    # ------------------------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def _peek_kind(self, offset: int = 0) -> str:
        index = self.index + offset
        if index >= len(self.tokens):
            return "EOF"
        return self.tokens[index].kind

    def _advance(self) -> Token:
        token = self.current
        if token.kind != "EOF":
            self.index += 1
        return token

    def _error(self, message: str, token: Optional[Token] = None) -> ParseError:
        token = token or self.current
        return ParseError(message, token.line, token.column)

    def _expect(self, kind: str, what: str) -> Token:
        if self.current.kind != kind:
            raise self._error(f"expected {what}, found {self.current.value!r}")
        return self._advance()

    def _at_keyword(self, word: str) -> bool:
        return self.current.kind == "NAME" and self.current.value == word

    def _expect_keyword(self, word: str) -> None:
        if not self._at_keyword(word):
            raise self._error(f"expected keyword {word!r}, found {self.current.value!r}")
        self._advance()

    # ------------------------------------------------------------------
    # Expressions
    # ------------------------------------------------------------------
    def parse_query(self) -> Query:
        body = self.parse_expr()
        if self.current.kind != "EOF":
            raise self._error(f"unexpected trailing input {self.current.value!r}")
        return Query(body=body, source_text=self.text)

    def parse_expr(self) -> Expr:
        kind = self.current.kind
        if kind == "EMPTY_TAG":
            return EmptyElement(self._advance().value)
        if kind == "OPEN_TAG":
            return self._parse_direct_element()
        if kind == "NAME" and self.current.value in ("for", "let"):
            return self._parse_flwr()
        if kind == "NAME" and self.current.value == "if":
            return self._parse_if()
        if kind == "VARIABLE":
            return self._parse_output()
        if kind == "LPAREN":
            return self._parse_sequence()
        raise self._error(f"unexpected token {self.current.value!r} at start of expression")

    def _parse_direct_element(self) -> DirectElement:
        open_token = self._advance()
        content: List[Expr] = []
        while True:
            kind = self.current.kind
            if kind == "CLOSE_TAG":
                close_token = self._advance()
                if close_token.value != open_token.value:
                    raise self._error(
                        f"mismatched close tag </{close_token.value}> for "
                        f"<{open_token.value}>",
                        close_token,
                    )
                return DirectElement(open_token.value, tuple(content))
            if kind == "EMPTY_TAG":
                content.append(EmptyElement(self._advance().value))
            elif kind == "OPEN_TAG":
                content.append(self._parse_direct_element())
            elif kind == "LBRACE":
                self._advance()
                content.append(EnclosedExpr(self.parse_expr()))
                self._expect("RBRACE", "'}'")
            elif kind == "EOF":
                raise self._error(f"unterminated element <{open_token.value}>", open_token)
            else:
                raise self._error(
                    f"unexpected {self.current.value!r} inside <{open_token.value}> "
                    "(only element constructors and '{...}' are allowed)"
                )

    def _parse_flwr(self) -> FLWRExpr:
        clauses: List[Union[ForClause, LetClause]] = []
        while True:
            if self._at_keyword("for"):
                self._advance()
                clauses.append(self._parse_for_clause())
            elif self._at_keyword("let"):
                self._advance()
                clauses.append(self._parse_let_clause())
            else:
                break
        if not clauses:
            raise self._error("expected 'for' or 'let'")
        where: Optional[Condition] = None
        if self._at_keyword("where"):
            self._advance()
            where = self._parse_condition()
        self._expect_keyword("return")
        return_expr = self.parse_expr()
        return FLWRExpr(tuple(clauses), where, return_expr)

    def _parse_for_clause(self) -> ForClause:
        var = self._expect("VARIABLE", "a variable after 'for'").value
        self._expect_keyword("in")
        source = self._parse_binding_source()
        path, path_condition = self._parse_conditioned_path()
        window: Optional[WindowClause] = None
        if self.current.kind == "PIPE":
            window = self._parse_window()
        return ForClause(var, source, path, path_condition, window)

    def _parse_binding_source(self) -> Union[StreamSource, str]:
        if self.current.kind == "VARIABLE":
            return self._advance().value
        if self.current.kind == "NAME" and self.current.value in ("stream", "doc"):
            function = self._advance().value
            self._expect("LPAREN", "'('")
            name = self._expect("STRING", "a quoted stream name").value
            self._expect("RPAREN", "')'")
            return StreamSource(function, name)
        raise self._error(
            f"expected a variable or stream()/doc() call, found {self.current.value!r}"
        )

    def _parse_conditioned_path(self) -> Tuple[Path, Optional[Condition]]:
        """Parse ``[[/π̄]]?``: slash-separated steps with optional ``[χ]``.

        Conditions attached to any step are collected into a single
        conjunction with operands left implicit (bare paths relative to
        the bound variable); the analyzer resolves them.
        """
        steps: List[str] = []
        atoms: List[Comparison] = []
        while self.current.kind == "SLASH":
            self._advance()
            step = self._expect("NAME", "a path step").value
            steps.append(step)
            while self.current.kind == "LBRACKET":
                bracket = self._advance()
                condition = self._parse_condition(allow_bare_paths=True)
                atoms.append((len(steps), bracket, condition))  # type: ignore[arg-type]
                self._expect("RBRACKET", "']'")
        collected: List[Comparison] = []
        for step_count, bracket, condition in atoms:  # type: ignore[misc]
            if step_count != len(steps):
                # A predicate on an intermediate step cannot be rewritten
                # relative to the bound item; the paper only attaches
                # conditions to the binding's final step.
                raise self._error(
                    "path conditions are only supported on the final step",
                    bracket,
                )
            collected.extend(condition.atoms)
        path = Path(tuple(steps))
        return path, Condition(tuple(collected)) if collected else None

    def _parse_window(self) -> WindowClause:
        opening = self._expect("PIPE", "'|'")
        if self._at_keyword("count"):
            self._advance()
            kind = "count"
            reference: Optional[Path] = None
        else:
            reference = self._parse_bare_path("a window reference element")
            self._expect_keyword("diff")
            kind = "diff"
        size = self._parse_number("a window size")
        step: Optional[Fraction] = None
        if self._at_keyword("step"):
            self._advance()
            step = self._parse_number("a step size")
        self._expect("PIPE", "closing '|' of the window")
        try:
            return WindowClause(kind, size, step, reference)
        except ValueError as exc:
            # The AST constructor validates size/step positivity; surface
            # it as a parse diagnostic at the window, not a bare ValueError.
            raise self._error(str(exc), opening) from exc

    def _parse_let_clause(self) -> LetClause:
        var = self._expect("VARIABLE", "a variable after 'let'").value
        self._expect("ASSIGN", "':='")
        func_token = self._expect("NAME", "an aggregation function")
        function = func_token.value
        if function not in AGGREGATE_FUNCTIONS:
            raise self._error(
                f"unknown aggregation function {function!r} "
                f"(expected one of {', '.join(AGGREGATE_FUNCTIONS)})",
                func_token,
            )
        self._expect("LPAREN", "'('")
        source_var = self._expect("VARIABLE", "the aggregated variable").value
        path = Path(())
        if self.current.kind == "SLASH":
            path = self._parse_slash_path()
        self._expect("RPAREN", "')'")
        return LetClause(var, function, source_var, path)

    def _parse_if(self) -> IfExpr:
        self._expect_keyword("if")
        condition = self._parse_condition()
        self._expect_keyword("then")
        then_branch = self.parse_expr()
        self._expect_keyword("else")
        else_branch = self.parse_expr()
        return IfExpr(condition, then_branch, else_branch)

    def _parse_output(self) -> Expr:
        var = self._advance().value
        if self.current.kind == "SLASH":
            return PathOutput(var, self._parse_slash_path())
        return VarOutput(var)

    def _parse_sequence(self) -> SequenceExpr:
        self._expect("LPAREN", "'('")
        items: List[Expr] = []
        if self.current.kind != "RPAREN":
            items.append(self.parse_expr())
            while self.current.kind == "COMMA":
                self._advance()
                items.append(self.parse_expr())
        self._expect("RPAREN", "')'")
        return SequenceExpr(tuple(items))

    # ------------------------------------------------------------------
    # Paths, conditions, numbers
    # ------------------------------------------------------------------
    def _parse_slash_path(self) -> Path:
        steps: List[str] = []
        while self.current.kind == "SLASH":
            self._advance()
            steps.append(self._expect("NAME", "a path step").value)
        if not steps:
            raise self._error("expected a path after '/'")
        return Path(tuple(steps))

    def _parse_bare_path(self, what: str) -> Path:
        steps = [self._expect("NAME", what).value]
        while self.current.kind == "SLASH":
            self._advance()
            steps.append(self._expect("NAME", "a path step").value)
        return Path(tuple(steps))

    def _parse_condition(self, allow_bare_paths: bool = False) -> Condition:
        atoms = [self._parse_comparison(allow_bare_paths)]
        while self._at_keyword("and"):
            self._advance()
            atoms.append(self._parse_comparison(allow_bare_paths))
        return Condition(tuple(atoms))

    def _parse_comparison(self, allow_bare_paths: bool) -> Comparison:
        left = self._parse_operand(allow_bare_paths)
        op_map = {"EQ": "=", "LT": "<", "LE": "<=", "GT": ">", "GE": ">=", "NE": "!="}
        if self.current.kind not in op_map:
            raise self._error(f"expected a comparison operator, found {self.current.value!r}")
        op = op_map[self._advance().kind]

        if self.current.kind in ("NUMBER", "MINUS") and not (
            self.current.kind == "MINUS" and self._peek_kind(1) == "VARIABLE"
        ):
            constant, lexeme = self._parse_signed_number()
            return Comparison(left, op, None, constant, lexeme)

        right = self._parse_operand(allow_bare_paths)
        constant = Fraction(0)
        lexeme: Optional[str] = None
        if self.current.kind in ("PLUS", "MINUS"):
            sign = 1 if self._advance().kind == "PLUS" else -1
            magnitude, lexeme = self._parse_signed_number()
            constant = sign * magnitude
            if sign < 0:
                lexeme = None  # lexeme no longer matches the value
        return Comparison(left, op, right, constant, lexeme)

    def _parse_operand(self, allow_bare_paths: bool) -> Operand:
        if self.current.kind == "VARIABLE":
            var = self._advance().value
            path = Path(())
            if self.current.kind == "SLASH":
                path = self._parse_slash_path()
            return Operand(var, path)
        if allow_bare_paths and self.current.kind == "NAME":
            return Operand(None, self._parse_bare_path("a path"))
        raise self._error(
            f"expected an operand ($var/path), found {self.current.value!r}"
        )

    def _parse_number(self, what: str) -> Fraction:
        value, _ = self._parse_signed_number(what)
        return value

    def _parse_signed_number(self, what: str = "a number") -> Tuple[Fraction, str]:
        negative = False
        if self.current.kind == "MINUS":
            self._advance()
            negative = True
        token = self._expect("NUMBER", what)
        value = literal_to_fraction(token.value)
        lexeme = token.value
        if negative:
            value = -value
            lexeme = "-" + lexeme
        return value, lexeme


def parse_query(text: str) -> Query:
    """Parse a WXQuery subscription into its AST.

    >>> q = parse_query('<r>{ for $p in stream("s")/a/b return $p }</r>')
    >>> q.streams()
    ['s']
    """
    return _Parser(text).parse_query()
