"""Abstract syntax tree for WXQuery (Definition 2.1).

Each numbered production of the definition has a node class:

1. :class:`EmptyElement`       — ``<t/>``
2. :class:`DirectElement`      — ``<t> ... </t>``
3. :class:`FLWRExpr`           — for/let/where/return with data windows
4. :class:`IfExpr`             — ``if χ then α else β``
5. :class:`PathOutput`         — ``$y/π``
6. :class:`VarOutput`          — ``$z``
7. :class:`SequenceExpr`       — ``( α, β, ... )``

Conditions ``χ`` are conjunctions of :class:`Comparison` atoms over
:class:`Operand` (a variable plus a relative child-axis path) and exact
rational constants.  Constants are carried as :class:`fractions.Fraction`
because the predicate-graph layer (Section 3.3) does exact arithmetic on
them; the original lexeme is retained for faithful unparsing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import List, Optional, Sequence, Tuple, Union

from ..xmlkit import Path

#: Aggregation operators Φ of Definition 2.1.
AGGREGATE_FUNCTIONS = ("min", "max", "sum", "count", "avg")

#: Comparison operators θ (Section 2: θ ∈ {=, <, ≤, >, ≥}; ``!=`` is not
#: part of the fragment and is rejected by the analyzer).
COMPARISON_OPS = ("=", "<", "<=", ">", ">=", "!=")


def literal_to_fraction(lexeme: str) -> Fraction:
    """Parse an integer or finite-decimal literal exactly."""
    return Fraction(lexeme)


def fraction_to_literal(value: Fraction) -> str:
    """Shortest decimal rendering of an exact constant."""
    if value.denominator == 1:
        return str(value.numerator)
    as_float = float(value)
    if Fraction(str(as_float)) == value:
        return str(as_float)
    return f"{value.numerator}/{value.denominator}"


# ----------------------------------------------------------------------
# Conditions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Operand:
    """A value reference ``$v`` — a variable plus a relative path.

    In a ``where`` clause operands are written ``$p/coord/cel/ra``;
    inside a path condition ``[coord/cel/ra >= ...]`` the variable is
    implicit (the enclosing ``for`` variable) and ``var`` is ``None``
    until the analyzer resolves it.
    """

    var: Optional[str]
    path: Path

    def resolved(self, var: str) -> "Operand":
        return Operand(var, self.path) if self.var is None else self

    def __str__(self) -> str:
        prefix = f"${self.var}" if self.var is not None else ""
        if self.path.is_empty():
            return prefix or "."
        return f"{prefix}/{self.path}" if prefix else str(self.path)


@dataclass(frozen=True)
class Comparison:
    """One atomic predicate ``$v θ c`` or ``$v θ $w + c``."""

    left: Operand
    op: str
    right_operand: Optional[Operand] = None
    constant: Fraction = Fraction(0)
    constant_lexeme: Optional[str] = None

    def __post_init__(self) -> None:
        if self.op not in COMPARISON_OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    @property
    def is_variable_comparison(self) -> bool:
        return self.right_operand is not None

    def __str__(self) -> str:
        const = self.constant_lexeme or fraction_to_literal(self.constant)
        if self.right_operand is None:
            return f"{self.left} {self.op} {const}"
        if self.constant == 0:
            return f"{self.left} {self.op} {self.right_operand}"
        return f"{self.left} {self.op} {self.right_operand} + {const}"


@dataclass(frozen=True)
class Condition:
    """A conjunction of atomic predicates (Section 2)."""

    atoms: Tuple[Comparison, ...]

    def __str__(self) -> str:
        return " and ".join(str(atom) for atom in self.atoms)

    def resolved(self, var: str) -> "Condition":
        """Bind implicit operands to ``var`` (for path conditions)."""
        return Condition(
            tuple(
                Comparison(
                    atom.left.resolved(var),
                    atom.op,
                    atom.right_operand.resolved(var) if atom.right_operand else None,
                    atom.constant,
                    atom.constant_lexeme,
                )
                for atom in self.atoms
            )
        )

    def __bool__(self) -> bool:
        return bool(self.atoms)


def conjunction(*conditions: Optional[Condition]) -> Condition:
    """Merge several (possibly ``None``) conditions into one."""
    atoms: List[Comparison] = []
    for cond in conditions:
        if cond:
            atoms.extend(cond.atoms)
    return Condition(tuple(atoms))


# ----------------------------------------------------------------------
# Windows
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class WindowClause:
    """A data window ``|count ∆ step µ|`` or ``|π diff ∆ step µ|``.

    ``step`` defaults to ``size`` when omitted (Section 2).  For
    time-based (``diff``) windows ``reference`` names the ordered
    reference element controlling the window.
    """

    kind: str  # "count" | "diff"
    size: Fraction
    step: Optional[Fraction] = None
    reference: Optional[Path] = None

    def __post_init__(self) -> None:
        if self.kind not in ("count", "diff"):
            raise ValueError(f"unknown window kind {self.kind!r}")
        if self.kind == "diff" and self.reference is None:
            raise ValueError("time-based windows need a reference element")
        if self.kind == "count" and self.reference is not None:
            raise ValueError("item-based windows take no reference element")
        if self.size <= 0:
            raise ValueError("window size must be positive")
        if self.step is not None and self.step <= 0:
            raise ValueError("window step must be positive")

    @property
    def effective_step(self) -> Fraction:
        return self.step if self.step is not None else self.size

    def __str__(self) -> str:
        head = "count" if self.kind == "count" else f"{self.reference} diff"
        text = f"|{head} {fraction_to_literal(self.size)}"
        if self.step is not None:
            text += f" step {fraction_to_literal(self.step)}"
        return text + "|"


# ----------------------------------------------------------------------
# Expressions
# ----------------------------------------------------------------------
class Expr:
    """Base class of all WXQuery expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class EmptyElement(Expr):
    """Production 1: ``<t/>``."""

    tag: str


@dataclass(frozen=True)
class EnclosedExpr(Expr):
    """A brace-enclosed computed expression inside a constructor."""

    body: "Expr"


@dataclass(frozen=True)
class DirectElement(Expr):
    """Production 2: ``<t> [[α1,2 | {α3..7}]]* </t>``."""

    tag: str
    content: Tuple[Expr, ...] = ()


@dataclass(frozen=True)
class StreamSource:
    """``stream("name")`` or ``doc("name")`` heading a for-binding."""

    function: str  # "stream" | "doc"
    name: str

    def __post_init__(self) -> None:
        if self.function not in ("stream", "doc"):
            raise ValueError(f"unknown source function {self.function!r}")

    def __str__(self) -> str:
        return f'{self.function}("{self.name}")'


@dataclass(frozen=True)
class ForClause:
    """``for $x in $y/π̄ |window|`` — one binding of an FLWR expression.

    ``source`` is either a :class:`StreamSource` or the name of an
    in-scope variable.  ``path`` is the bare navigation path; conditions
    embedded in path steps (``π̄``) are split off into ``path_condition``
    by the parser, with operands left implicit (resolved to ``var`` by
    the analyzer).
    """

    var: str
    source: Union[StreamSource, str]
    path: Path
    path_condition: Optional[Condition] = None
    window: Optional[WindowClause] = None


@dataclass(frozen=True)
class LetClause:
    """``let $a := Φ($y/π)`` — a window-based aggregation binding."""

    var: str
    function: str
    source_var: str
    path: Path

    def __post_init__(self) -> None:
        if self.function not in AGGREGATE_FUNCTIONS:
            raise ValueError(f"unknown aggregation function {self.function!r}")


@dataclass(frozen=True)
class FLWRExpr(Expr):
    """Production 3: for/let clauses, optional where, return."""

    clauses: Tuple[Union[ForClause, LetClause], ...]
    where: Optional[Condition]
    return_expr: Expr

    def for_clauses(self) -> List[ForClause]:
        return [c for c in self.clauses if isinstance(c, ForClause)]

    def let_clauses(self) -> List[LetClause]:
        return [c for c in self.clauses if isinstance(c, LetClause)]


@dataclass(frozen=True)
class IfExpr(Expr):
    """Production 4: ``if χ then α else β``."""

    condition: Condition
    then_branch: Expr
    else_branch: Expr


@dataclass(frozen=True)
class PathOutput(Expr):
    """Production 5: ``$y/π`` — output subtrees reachable via ``π``."""

    var: str
    path: Path


@dataclass(frozen=True)
class VarOutput(Expr):
    """Production 6: ``$z`` — output the subtree rooted at ``$z``."""

    var: str


@dataclass(frozen=True)
class SequenceExpr(Expr):
    """Production 7: ``( α, β, ... )``."""

    items: Tuple[Expr, ...] = ()


@dataclass(frozen=True)
class Query:
    """A complete parsed subscription."""

    body: Expr
    source_text: str = field(default="", compare=False)

    def streams(self) -> List[str]:
        """Names of all ``stream()`` inputs referenced by the query."""
        names: List[str] = []
        _collect_streams(self.body, names)
        return names


def _collect_streams(expr: Expr, out: List[str]) -> None:
    if isinstance(expr, FLWRExpr):
        for clause in expr.clauses:
            if isinstance(clause, ForClause) and isinstance(clause.source, StreamSource):
                if clause.source.function == "stream" and clause.source.name not in out:
                    out.append(clause.source.name)
        _collect_streams(expr.return_expr, out)
    elif isinstance(expr, DirectElement):
        for item in expr.content:
            _collect_streams(item, out)
    elif isinstance(expr, EnclosedExpr):
        _collect_streams(expr.body, out)
    elif isinstance(expr, IfExpr):
        _collect_streams(expr.then_branch, out)
        _collect_streams(expr.else_branch, out)
    elif isinstance(expr, SequenceExpr):
        for item in expr.items:
            _collect_streams(item, out)
