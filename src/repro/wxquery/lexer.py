"""Tokenizer for WXQuery.

WXQuery mixes XML-ish direct element constructors with XQuery FLWR
syntax, so the lexer is *mode-free* but produces composite tokens for
the XML-ish pieces (``<t>``, ``</t>``, ``<t/>``) — Definition 2.1 only
allows bare tags there, which makes a scanner-level treatment exact.

Token kinds
-----------
``OPEN_TAG`` / ``CLOSE_TAG`` / ``EMPTY_TAG``
    ``<t>``, ``</t>``, ``<t/>`` with ``value`` = tag name.
``LBRACE``/``RBRACE``/``LPAREN``/``RPAREN``/``LBRACKET``/``RBRACKET``
    Grouping. Braces switch between constructor content and expressions.
``PIPE``
    The ``|`` delimiter of data window specifications.
``VARIABLE``
    ``$name`` with ``value`` = name (without ``$``).
``NAME``
    Bare names: keywords, tag names, path steps, function names.
``NUMBER``
    Integer or finite decimal literal, ``value`` = original lexeme.
``STRING``
    Double- or single-quoted literal, ``value`` = unquoted content.
``SLASH``, ``COMMA``, ``ASSIGN`` (``:=``), comparison operators
    (``=``, ``!=``, ``<``, ``<=``, ``>``, ``>=`` — note ``<`` only lexes
    as a comparison where it cannot start a tag), ``PLUS``, ``MINUS``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from .errors import LexError

KEYWORDS = frozenset(
    {
        "for", "let", "where", "return", "in", "if", "then", "else",
        "and", "count", "diff", "step", "stream", "doc",
        "min", "max", "sum", "avg",
    }
)

_NAME_START = frozenset("abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_")
_NAME_CONT = _NAME_START | frozenset("0123456789-.")


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    kind: str
    value: str
    line: int
    column: int

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r}, {self.line}:{self.column})"


class Lexer:
    """Single-pass scanner producing a list of :class:`Token`."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.line = 1
        self.column = 1

    # ------------------------------------------------------------------
    # Character-level helpers
    # ------------------------------------------------------------------
    def _peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < len(self.text) else ""

    def _advance(self, count: int = 1) -> None:
        for _ in range(count):
            if self.pos < len(self.text):
                if self.text[self.pos] == "\n":
                    self.line += 1
                    self.column = 1
                else:
                    self.column += 1
                self.pos += 1

    def _error(self, message: str) -> LexError:
        return LexError(message, self.line, self.column)

    def _skip_space_and_comments(self) -> None:
        while True:
            ch = self._peek()
            if ch and ch in " \t\r\n":
                self._advance()
            elif ch == "(" and self._peek(1) == ":":
                depth = 1
                self._advance(2)
                while depth:
                    if not self._peek():
                        raise self._error("unterminated comment '(:'")
                    if self._peek() == "(" and self._peek(1) == ":":
                        depth += 1
                        self._advance(2)
                    elif self._peek() == ":" and self._peek(1) == ")":
                        depth -= 1
                        self._advance(2)
                    else:
                        self._advance()
            else:
                return

    # ------------------------------------------------------------------
    # Token-level scanning
    # ------------------------------------------------------------------
    def tokens(self) -> List[Token]:
        """Tokenize the whole input."""
        out: List[Token] = []
        while True:
            self._skip_space_and_comments()
            if not self._peek():
                out.append(Token("EOF", "", self.line, self.column))
                return out
            out.append(self._next_token())

    def _next_token(self) -> Token:
        line, column = self.line, self.column
        ch = self._peek()

        if ch == "<":
            tag_token = self._try_tag(line, column)
            if tag_token is not None:
                return tag_token
            self._advance()
            if self._peek() == "=":
                self._advance()
                return Token("LE", "<=", line, column)
            return Token("LT", "<", line, column)

        if ch == ">":
            self._advance()
            if self._peek() == "=":
                self._advance()
                return Token("GE", ">=", line, column)
            return Token("GT", ">", line, column)

        if ch == "!":
            if self._peek(1) == "=":
                self._advance(2)
                return Token("NE", "!=", line, column)
            raise self._error("unexpected '!'")

        if ch == ":":
            if self._peek(1) == "=":
                self._advance(2)
                return Token("ASSIGN", ":=", line, column)
            raise self._error("unexpected ':'")

        simple = {
            "{": "LBRACE", "}": "RBRACE",
            "(": "LPAREN", ")": "RPAREN",
            "[": "LBRACKET", "]": "RBRACKET",
            "|": "PIPE", "/": "SLASH", ",": "COMMA",
            "=": "EQ", "+": "PLUS", "-": "MINUS",
        }
        if ch in simple:
            self._advance()
            return Token(simple[ch], ch, line, column)

        if ch == "$":
            self._advance()
            name = self._scan_name()
            if not name:
                raise self._error("expected a variable name after '$'")
            return Token("VARIABLE", name, line, column)

        if ch in "\"'":
            return self._scan_string(line, column)

        if ch.isdigit() or (ch == "." and self._peek(1).isdigit()):
            return self._scan_number(line, column)

        if ch in _NAME_START:
            name = self._scan_name()
            return Token("NAME", name, line, column)

        raise self._error(f"unexpected character {ch!r}")

    def _scan_name(self) -> str:
        start = self.pos
        while self._peek() in _NAME_CONT and self._peek():
            # A '.' only continues a name when followed by a name char;
            # this keeps "a.b" one step but stops before "avg(.." typos.
            if self._peek() == "." and self._peek(1) not in _NAME_CONT:
                break
            self._advance()
        return self.text[start : self.pos]

    def _scan_number(self, line: int, column: int) -> Token:
        start = self.pos
        while self._peek().isdigit():
            self._advance()
        if self._peek() == ".":
            if not self._peek(1).isdigit():
                raise self._error("decimal literal must have digits after '.'")
            self._advance()
            while self._peek().isdigit():
                self._advance()
        return Token("NUMBER", self.text[start : self.pos], line, column)

    def _scan_string(self, line: int, column: int) -> Token:
        quote = self._peek()
        self._advance()
        start = self.pos
        while self._peek() and self._peek() != quote:
            if self._peek() == "\n":
                raise self._error("unterminated string literal")
            self._advance()
        if not self._peek():
            raise self._error("unterminated string literal")
        value = self.text[start : self.pos]
        self._advance()  # closing quote
        return Token("STRING", value, line, column)

    def _try_tag(self, line: int, column: int) -> Optional[Token]:
        """Lex ``<t>``, ``</t>`` or ``<t/>`` starting at the cursor.

        Returns ``None`` when the ``<`` is a comparison operator (i.e.
        not followed by a tag shape), leaving the cursor untouched.
        """
        text, pos = self.text, self.pos + 1
        closing = False
        if pos < len(text) and text[pos] == "/":
            closing = True
            pos += 1
        name_start = pos
        while pos < len(text) and text[pos] in _NAME_CONT:
            pos += 1
        if pos == name_start:
            return None
        tag = text[name_start:pos]
        if pos < len(text) and text[pos] == ">":
            kind = "CLOSE_TAG" if closing else "OPEN_TAG"
            self._advance(pos + 1 - self.pos)
            return Token(kind, tag, line, column)
        if not closing and text.startswith("/>", pos):
            self._advance(pos + 2 - self.pos)
            return Token("EMPTY_TAG", tag, line, column)
        return None


def tokenize(text: str) -> List[Token]:
    """Tokenize ``text``; the final token always has kind ``EOF``."""
    return Lexer(text).tokens()


def iter_tokens(text: str) -> Iterator[Token]:
    """Iterator form of :func:`tokenize`."""
    return iter(tokenize(text))
