"""Errors raised by the WXQuery front end."""

from __future__ import annotations

from typing import Optional


class WXQueryError(Exception):
    """Base class for all WXQuery front-end errors."""


class LexError(WXQueryError):
    """Raised on characters or token shapes the lexer cannot handle."""

    def __init__(self, message: str, line: int, column: int) -> None:
        self.line = line
        self.column = column
        super().__init__(f"{message} (line {line}, column {column})")


class ParseError(WXQueryError):
    """Raised when the token stream does not match the WXQuery grammar."""

    def __init__(self, message: str, line: Optional[int] = None, column: Optional[int] = None) -> None:
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class AnalysisError(WXQueryError):
    """Raised when a syntactically valid query violates the fragment's
    semantic restrictions (Definition 2.1 and Section 2): undefined
    variables, nested FLWRs beyond the supported shape, non-conjunctive
    conditions, aggregation over a non-window variable, and so on."""
