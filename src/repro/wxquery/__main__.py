"""Command-line WXQuery inspector.

Parse a subscription and show what the system derives from it::

    python -m repro.wxquery check  query.xq     # validate (exit code)
    python -m repro.wxquery ast    query.xq     # canonical (unparsed) form
    python -m repro.wxquery info   query.xq     # bindings, predicates, windows
    python -m repro.wxquery props  query.xq     # properties + predicate graphs

Pass ``-`` (or nothing) to read from stdin.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, TextIO

from ..properties import extract_from_analysis
from .analyzer import analyze
from .errors import WXQueryError
from .parser import parse_query
from .unparse import unparse


def _read(path: str) -> str:
    if path == "-":
        return sys.stdin.read()
    with open(path, "r", encoding="utf-8") as handle:
        return handle.read()


def cmd_check(text: str, out: TextIO) -> int:
    analyze(parse_query(text))
    print("OK: valid WXQuery (flat fragment)", file=out)
    return 0


def cmd_ast(text: str, out: TextIO) -> int:
    print(unparse(parse_query(text)), file=out)
    return 0


def cmd_info(text: str, out: TextIO) -> int:
    analyzed = analyze(parse_query(text))
    print(f"input streams : {', '.join(analyzed.streams())}", file=out)
    for binding in analyzed.bindings.values():
        window = f" window {binding.window}" if binding.window else ""
        aggregate = f" {binding.aggregate}()" if binding.aggregate else ""
        print(
            f"  ${binding.var}: {binding.kind} over {binding.stream}"
            f"/{binding.absolute_path}{window}{aggregate}",
            file=out,
        )
    if analyzed.selection:
        print("selection predicates:", file=out)
        for atom in analyzed.selection:
            print(f"  {atom.atom}", file=out)
    if analyzed.aggregate_filters:
        print("aggregate filters:", file=out)
        for atom in analyzed.aggregate_filters:
            print(f"  {atom.atom}", file=out)
    for stream, paths in sorted(analyzed.referenced_paths.items()):
        rendered = ", ".join(sorted(str(p) for p in paths))
        print(f"referenced in {stream}: {rendered}", file=out)
    return 0


def cmd_props(text: str, out: TextIO) -> int:
    analyzed = analyze(parse_query(text))
    properties = extract_from_analysis(analyzed, "query")
    for stream_properties in properties.inputs:
        print(f"input stream '{stream_properties.stream}' "
              f"(items at {stream_properties.item_path}):", file=out)
        if stream_properties.is_raw:
            print("  (raw: no operators)", file=out)
        for op in stream_properties.operators:
            print(f"  {op.kind}: {op}", file=out)
        selection = stream_properties.selection
        if selection is not None:
            print("  predicate graph edges:", file=out)
            for atom in selection.graph.atoms():
                print(f"    {atom.source} -> {atom.target}  weight {atom.bound}", file=out)
    return 0


COMMANDS = {
    "check": cmd_check,
    "ast": cmd_ast,
    "info": cmd_info,
    "props": cmd_props,
}


def main(argv: Optional[list] = None, out: TextIO = sys.stdout) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.wxquery",
        description="Inspect WXQuery subscriptions.",
    )
    parser.add_argument("command", choices=sorted(COMMANDS))
    parser.add_argument("file", nargs="?", default="-",
                        help="query file, or '-' for stdin (default)")
    args = parser.parse_args(argv)
    try:
        text = _read(args.file)
        return COMMANDS[args.command](text, out)
    except WXQueryError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
