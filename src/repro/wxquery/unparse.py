"""Unparser: render a WXQuery AST back to source text.

Mainly used by tests (parse → unparse → parse round-trips must yield an
equal AST), by the workload generator when it materializes template
instances, and in log/debug output of the sharing optimizer.
"""

from __future__ import annotations

from typing import List

from .ast import (
    Condition,
    DirectElement,
    EmptyElement,
    EnclosedExpr,
    Expr,
    FLWRExpr,
    ForClause,
    IfExpr,
    LetClause,
    PathOutput,
    Query,
    SequenceExpr,
    StreamSource,
    VarOutput,
    fraction_to_literal,
)


def unparse(query: Query) -> str:
    """Render ``query`` as a single-line WXQuery string."""
    return unparse_expr(query.body)


def unparse_expr(expr: Expr) -> str:
    if isinstance(expr, EmptyElement):
        return f"<{expr.tag}/>"
    if isinstance(expr, DirectElement):
        inner = " ".join(unparse_expr(item) for item in expr.content)
        inner = f" {inner} " if inner else ""
        return f"<{expr.tag}>{inner}</{expr.tag}>"
    if isinstance(expr, EnclosedExpr):
        return "{ " + unparse_expr(expr.body) + " }"
    if isinstance(expr, FLWRExpr):
        return _unparse_flwr(expr)
    if isinstance(expr, IfExpr):
        return (
            f"if {_unparse_condition(expr.condition)} "
            f"then {unparse_expr(expr.then_branch)} "
            f"else {unparse_expr(expr.else_branch)}"
        )
    if isinstance(expr, PathOutput):
        return f"${expr.var}/{expr.path}"
    if isinstance(expr, VarOutput):
        return f"${expr.var}"
    if isinstance(expr, SequenceExpr):
        return "(" + ", ".join(unparse_expr(item) for item in expr.items) + ")"
    raise TypeError(f"cannot unparse {expr!r}")


def _unparse_flwr(expr: FLWRExpr) -> str:
    parts: List[str] = []
    for clause in expr.clauses:
        if isinstance(clause, ForClause):
            parts.append(_unparse_for(clause))
        else:
            parts.append(_unparse_let(clause))
    if expr.where is not None and expr.where.atoms:
        parts.append(f"where {_unparse_condition(expr.where)}")
    parts.append(f"return {unparse_expr(expr.return_expr)}")
    return " ".join(parts)


def _unparse_for(clause: ForClause) -> str:
    if isinstance(clause.source, StreamSource):
        source = str(clause.source)
    else:
        source = f"${clause.source}"
    text = f"for ${clause.var} in {source}"
    if not clause.path.is_empty():
        text += f"/{clause.path}"
    if clause.path_condition is not None and clause.path_condition.atoms:
        text += f"[{_unparse_condition(clause.path_condition)}]"
    if clause.window is not None:
        text += f" {clause.window}"
    return text


def _unparse_let(clause: LetClause) -> str:
    argument = f"${clause.source_var}"
    if not clause.path.is_empty():
        argument += f"/{clause.path}"
    return f"let ${clause.var} := {clause.function}({argument})"


def _unparse_condition(condition: Condition) -> str:
    parts: List[str] = []
    for atom in condition.atoms:
        left = _unparse_operand(atom.left)
        if atom.right_operand is None:
            constant = atom.constant_lexeme or fraction_to_literal(atom.constant)
            parts.append(f"{left} {atom.op} {constant}")
        else:
            right = _unparse_operand(atom.right_operand)
            if atom.constant == 0:
                parts.append(f"{left} {atom.op} {right}")
            elif atom.constant > 0:
                parts.append(
                    f"{left} {atom.op} {right} + {fraction_to_literal(atom.constant)}"
                )
            else:
                parts.append(
                    f"{left} {atom.op} {right} - {fraction_to_literal(-atom.constant)}"
                )
    return " and ".join(parts)


def _unparse_operand(operand) -> str:
    if operand.var is None:
        return str(operand.path)
    if operand.path.is_empty():
        return f"${operand.var}"
    return f"${operand.var}/{operand.path}"
