"""Semantic analysis of parsed WXQuery subscriptions.

The analyzer checks the restrictions of the fragment (Section 2) that
the grammar alone cannot express, resolves variable scopes, rewrites all
condition operands to *absolute paths* (paths from the stream root, the
form the predicate graphs of Section 3.3 use as node labels), and
classifies every ``where`` atom as either a stream selection predicate
or a filter on an aggregation result.

The resulting :class:`AnalyzedQuery` is the hand-off point to the
properties extraction (:mod:`repro.properties.extract`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..xmlkit import Path
from .ast import (
    Comparison,
    Condition,
    DirectElement,
    EmptyElement,
    EnclosedExpr,
    Expr,
    FLWRExpr,
    ForClause,
    IfExpr,
    LetClause,
    Operand,
    PathOutput,
    Query,
    SequenceExpr,
    StreamSource,
    VarOutput,
    WindowClause,
)
from .errors import AnalysisError


@dataclass(frozen=True)
class Binding:
    """Resolution of one ``for`` or ``let`` variable.

    Attributes
    ----------
    var:
        Variable name (without ``$``).
    kind:
        ``"for"`` or ``"let"``.
    stream:
        Name of the originating input stream.
    absolute_path:
        For a ``for`` binding: path from the stream root to the bound
        items (e.g. ``photons/photon``).  For a ``let`` binding: the
        absolute path of the aggregated element.
    window:
        The data window attached to the binding, if any.
    aggregate:
        For ``let`` bindings: the aggregation function name.
    source_var:
        For ``let`` bindings: the windowed ``for`` variable aggregated
        over; for chained ``for`` bindings: the parent variable.
    """

    var: str
    kind: str
    stream: str
    absolute_path: Path
    window: Optional[WindowClause] = None
    aggregate: Optional[str] = None
    source_var: Optional[str] = None


@dataclass(frozen=True)
class ResolvedAtom:
    """A ``where``/path predicate with absolute-path operands.

    ``left_binding`` (and ``right_binding`` for variable comparisons)
    name the binding whose subtree each operand navigates, so consumers
    can distinguish stream selections from aggregate filters.
    """

    atom: Comparison
    left_binding: Binding
    left_path: Path
    right_binding: Optional[Binding] = None
    right_path: Optional[Path] = None

    @property
    def is_aggregate_filter(self) -> bool:
        return self.left_binding.kind == "let"


@dataclass
class AnalyzedQuery:
    """A subscription with resolved scopes and classified predicates."""

    query: Query
    flwr: FLWRExpr
    bindings: Dict[str, Binding]
    #: Stream selection atoms (conjunctive), with absolute paths.
    selection: List[ResolvedAtom] = field(default_factory=list)
    #: Atoms filtering aggregation results, e.g. ``$a >= 1.3``.
    aggregate_filters: List[ResolvedAtom] = field(default_factory=list)
    #: Absolute paths referenced anywhere, per stream (the set R' of
    #: Algorithm 2 — marked and unmarked projection elements).
    referenced_paths: Dict[str, Set[Path]] = field(default_factory=dict)
    #: Absolute paths whose subtrees appear in the result, per stream
    #: (the bullet-marked output elements of Figure 3).
    output_paths: Dict[str, Set[Path]] = field(default_factory=dict)
    #: ``True`` when no FLWR is nested inside another FLWR's return.
    is_flat: bool = True

    def streams(self) -> List[str]:
        """Input stream names in binding order."""
        seen: List[str] = []
        for binding in self.bindings.values():
            if binding.kind == "for" and binding.stream not in seen:
                seen.append(binding.stream)
        return seen

    def binding_for_stream(self, stream: str) -> Binding:
        for binding in self.bindings.values():
            if binding.kind == "for" and binding.stream == stream:
                return binding
        raise AnalysisError(f"no binding over stream {stream!r}")

    def aggregations(self) -> List[Binding]:
        return [b for b in self.bindings.values() if b.kind == "let"]


def analyze(query: Query) -> AnalyzedQuery:
    """Analyze ``query``; raises :class:`AnalysisError` on violations."""
    flwr = _main_flwr(query.body)
    analyzer = _Analyzer(query, flwr)
    analyzer.run()
    return analyzer.result


def _main_flwr(expr: Expr) -> FLWRExpr:
    """Locate the single top-level FLWR, unwrapping constructors.

    The paper's flat subscriptions are element constructors wrapping one
    FLWR (Queries 1–4 all have this shape).
    """
    found: List[FLWRExpr] = []
    _find_flwrs(expr, found, top_only=True)
    if not found:
        raise AnalysisError("subscription contains no FLWR expression")
    if len(found) > 1:
        raise AnalysisError(
            "subscription has multiple top-level FLWR expressions; "
            "the flat fragment supports exactly one"
        )
    return found[0]


def _find_flwrs(expr: Expr, out: List[FLWRExpr], top_only: bool) -> None:
    if isinstance(expr, FLWRExpr):
        out.append(expr)
        if not top_only:
            _find_flwrs(expr.return_expr, out, top_only)
        return
    if isinstance(expr, DirectElement):
        for item in expr.content:
            _find_flwrs(item, out, top_only)
    elif isinstance(expr, EnclosedExpr):
        _find_flwrs(expr.body, out, top_only)
    elif isinstance(expr, IfExpr):
        _find_flwrs(expr.then_branch, out, top_only)
        _find_flwrs(expr.else_branch, out, top_only)
    elif isinstance(expr, SequenceExpr):
        for item in expr.items:
            _find_flwrs(item, out, top_only)


class _Analyzer:
    def __init__(self, query: Query, flwr: FLWRExpr) -> None:
        self.result = AnalyzedQuery(query=query, flwr=flwr, bindings={})

    # ------------------------------------------------------------------
    def run(self) -> None:
        self._bind_clauses()
        self._resolve_conditions()
        self._collect_outputs(self.result.flwr.return_expr)
        self._check_flatness()

    # ------------------------------------------------------------------
    # Clause binding
    # ------------------------------------------------------------------
    def _bind_clauses(self) -> None:
        bindings = self.result.bindings
        for clause in self.result.flwr.clauses:
            if isinstance(clause, ForClause):
                binding = self._bind_for(clause, bindings)
            else:
                binding = self._bind_let(clause, bindings)
            if binding.var in bindings:
                raise AnalysisError(f"variable ${binding.var} bound twice")
            bindings[binding.var] = binding
        streams = [b.stream for b in bindings.values() if b.kind == "for" and b.source_var is None]
        if len(streams) != len(set(streams)):
            raise AnalysisError(
                "multiple for-bindings over the same input stream (self-joins "
                "are outside the supported fragment)"
            )

    def _bind_for(self, clause: ForClause, bindings: Dict[str, Binding]) -> Binding:
        if isinstance(clause.source, StreamSource):
            stream = clause.source.name
            absolute = clause.path
            source_var: Optional[str] = None
            if clause.source.function == "doc":
                raise AnalysisError(
                    "doc() inputs are static documents; this reproduction "
                    "covers continuous stream() inputs only"
                )
            if len(absolute) < 1:
                raise AnalysisError(
                    f"for ${clause.var}: a stream binding needs a path to the items"
                )
        else:
            parent = bindings.get(clause.source)
            if parent is None:
                raise AnalysisError(f"for ${clause.var}: undefined variable ${clause.source}")
            if parent.kind != "for":
                raise AnalysisError(
                    f"for ${clause.var}: cannot iterate an aggregation result ${clause.source}"
                )
            stream = parent.stream
            absolute = Path(parent.absolute_path.steps + clause.path.steps)
            source_var = clause.source
        if clause.window is not None and clause.window.kind == "diff":
            reference = clause.window.reference
            assert reference is not None  # enforced by WindowClause
        # Resolve implicit operands in path conditions to this variable.
        if clause.path_condition is not None:
            for atom in clause.path_condition.atoms:
                if atom.left.var is not None and atom.left.var not in bindings:
                    if atom.left.var != clause.var:
                        raise AnalysisError(
                            f"for ${clause.var}: path condition references "
                            f"undefined variable ${atom.left.var}"
                        )
        return Binding(
            var=clause.var,
            kind="for",
            stream=stream,
            absolute_path=absolute,
            window=clause.window,
            source_var=source_var,
        )

    def _bind_let(self, clause: LetClause, bindings: Dict[str, Binding]) -> Binding:
        source = bindings.get(clause.source_var)
        if source is None:
            raise AnalysisError(f"let ${clause.var}: undefined variable ${clause.source_var}")
        if source.kind != "for":
            raise AnalysisError(
                f"let ${clause.var}: aggregation must range over a for-bound variable"
            )
        if source.window is None:
            raise AnalysisError(
                f"let ${clause.var}: {clause.function}() requires a data window on "
                f"${clause.source_var} (window-based aggregation, Section 2)"
            )
        aggregated = Path(source.absolute_path.steps + clause.path.steps)
        return Binding(
            var=clause.var,
            kind="let",
            stream=source.stream,
            absolute_path=aggregated,
            window=source.window,
            aggregate=clause.function,
            source_var=clause.source_var,
        )

    # ------------------------------------------------------------------
    # Conditions
    # ------------------------------------------------------------------
    def _resolve_conditions(self) -> None:
        flwr = self.result.flwr
        for clause in flwr.clauses:
            if isinstance(clause, ForClause) and clause.path_condition is not None:
                condition = clause.path_condition.resolved(clause.var)
                for atom in condition.atoms:
                    self._classify_atom(atom, from_path_condition=True)
        if flwr.where is not None:
            for atom in flwr.where.atoms:
                self._classify_atom(atom, from_path_condition=False)

    def _classify_atom(self, atom: Comparison, from_path_condition: bool) -> None:
        if atom.op == "!=":
            raise AnalysisError(
                f"'!=' is not in the fragment's operator set θ: {atom}"
            )
        left_binding, left_path = self._resolve_operand(atom.left)
        resolved = ResolvedAtom(atom, left_binding, left_path)
        if atom.right_operand is not None:
            right_binding, right_path = self._resolve_operand(atom.right_operand)
            if left_binding.kind == "let" or right_binding.kind == "let":
                raise AnalysisError(
                    f"aggregation results can only be compared to constants: {atom}"
                )
            if left_binding.stream != right_binding.stream:
                raise AnalysisError(
                    f"cross-stream predicates (joins) are outside the flat "
                    f"fragment: {atom}"
                )
            resolved = ResolvedAtom(atom, left_binding, left_path, right_binding, right_path)
        if resolved.is_aggregate_filter:
            if from_path_condition:
                raise AnalysisError(
                    f"path conditions cannot reference aggregation results: {atom}"
                )
            if not atom.left.path.is_empty():
                raise AnalysisError(
                    f"an aggregation result is a scalar; navigation into it is "
                    f"invalid: {atom}"
                )
            self.result.aggregate_filters.append(resolved)
        else:
            self.result.selection.append(resolved)
            self._reference(left_binding.stream, left_path)
            if resolved.right_path is not None and resolved.right_binding is not None:
                self._reference(resolved.right_binding.stream, resolved.right_path)

    def _resolve_operand(self, operand: Operand) -> Tuple[Binding, Path]:
        if operand.var is None:
            raise AnalysisError(f"unresolved implicit operand {operand}")
        binding = self.result.bindings.get(operand.var)
        if binding is None:
            raise AnalysisError(f"undefined variable ${operand.var}")
        absolute = Path(binding.absolute_path.steps + operand.path.steps)
        return binding, absolute

    # ------------------------------------------------------------------
    # Output / projection analysis
    # ------------------------------------------------------------------
    def _reference(self, stream: str, path: Path) -> None:
        self.result.referenced_paths.setdefault(stream, set()).add(path)

    def _output(self, stream: str, path: Path) -> None:
        self.result.output_paths.setdefault(stream, set()).add(path)
        self._reference(stream, path)

    def _collect_outputs(self, expr: Expr) -> None:
        if isinstance(expr, (EmptyElement,)):
            return
        if isinstance(expr, DirectElement):
            for item in expr.content:
                self._collect_outputs(item)
        elif isinstance(expr, EnclosedExpr):
            self._collect_outputs(expr.body)
        elif isinstance(expr, SequenceExpr):
            for item in expr.items:
                self._collect_outputs(item)
        elif isinstance(expr, IfExpr):
            for atom in expr.condition.atoms:
                self._classify_atom(atom, from_path_condition=False)
            self._collect_outputs(expr.then_branch)
            self._collect_outputs(expr.else_branch)
        elif isinstance(expr, PathOutput):
            binding = self.result.bindings.get(expr.var)
            if binding is None:
                raise AnalysisError(f"undefined variable ${expr.var} in output")
            if binding.kind == "let":
                raise AnalysisError(
                    f"an aggregation result is a scalar; navigation into "
                    f"${expr.var} is invalid"
                )
            self._output(binding.stream, Path(binding.absolute_path.steps + expr.path.steps))
        elif isinstance(expr, VarOutput):
            binding = self.result.bindings.get(expr.var)
            if binding is None:
                raise AnalysisError(f"undefined variable ${expr.var} in output")
            if binding.kind == "let":
                # Aggregate outputs are tracked via the binding itself.
                return
            self._output(binding.stream, binding.absolute_path)
        elif isinstance(expr, FLWRExpr):
            raise AnalysisError(
                "nested FLWR expressions are outside the flat fragment "
                "(the paper defers nesting to future work)"
            )
        else:
            raise AnalysisError(f"unsupported expression in return clause: {expr!r}")

    def _check_flatness(self) -> None:
        nested: List[FLWRExpr] = []
        _find_flwrs(self.result.flwr.return_expr, nested, top_only=True)
        self.result.is_flat = not nested
