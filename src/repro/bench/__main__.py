"""Command-line entry point regenerating the paper's tables and figures.

Usage::

    python -m repro.bench fig6        # Figure 6 (scenario 1)
    python -m repro.bench fig7        # Figure 7 (scenario 2)
    python -m repro.bench table1      # Table 1 (registration times)
    python -m repro.bench rejection   # the constrained-capacity study
    python -m repro.bench caches      # cache hit rates + planner phases
    python -m repro.bench all
    python -m repro.bench fig7 --workers 4
        # executing experiments on the sharded executor (byte-identical
        # metrics; see python -m repro.bench.parallel for the sweep)
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict

from ..sharing.strategies import STRATEGIES
from ..workload.scenarios import scenario_one, scenario_two
from .harness import ScenarioRun, run_scenario
from .report import (
    accumulated_traffic_report,
    cache_report,
    cpu_report,
    planner_phase_report,
    registration_table,
    rejection_report,
    traffic_report,
)


def _run_all_strategies(scenario, **kwargs) -> Dict[str, ScenarioRun]:
    return {
        strategy: run_scenario(scenario, strategy, **kwargs)
        for strategy in STRATEGIES
    }


def cmd_fig6(workers=None) -> None:
    print("=== Figure 6: extended example scenario "
          "(8 super-peers, 1 data stream, 25 queries) ===\n")
    runs = _run_all_strategies(scenario_one(), workers=workers)
    print(cpu_report(runs))
    print()
    print(traffic_report(runs))
    print()
    totals = {s: f"{r.total_traffic_mbit():.2f}" for s, r in runs.items()}
    print(f"Total backbone traffic (MBit): {totals}")


def cmd_fig7(workers=None) -> None:
    print("=== Figure 7: 4x4 grid scenario "
          "(16 super-peers, 2 data streams, 100 queries) ===\n")
    runs = _run_all_strategies(scenario_two(), workers=workers)
    print(cpu_report(runs))
    print()
    print(accumulated_traffic_report(runs))
    print()
    totals = {s: f"{r.total_traffic_mbit():.2f}" for s, r in runs.items()}
    print(f"Total backbone traffic (MBit): {totals}")


def cmd_table1(workers=None) -> None:
    print("=== Table 1: query registration times ===\n")
    scenario_runs = {
        "1": _run_all_strategies(scenario_one(), execute=False),
        "2": _run_all_strategies(scenario_two(), execute=False),
    }
    print(registration_table(scenario_runs))


def cmd_rejection(workers=None) -> None:
    print("=== Rejection experiment: scenario 2 with peer CPU capped at "
          "10% and links at 1 MBit/s ===\n")
    runs = _run_all_strategies(
        scenario_two(),
        admission_control=True,
        capacity_factor=0.10,
        link_bandwidth=1_000_000.0,
        execute=False,
    )
    print(rejection_report(runs))


def cmd_caches(workers=None) -> None:
    from ..obs import Recorder

    print("=== Control-plane caches and planner phases "
          "(scenario 1, registration only, traced) ===\n")
    runs = {
        strategy: run_scenario(
            scenario_one(), strategy, execute=False, recorder=Recorder()
        )
        for strategy in STRATEGIES
    }
    print(cache_report(runs))
    print()
    print(planner_phase_report(runs))


COMMANDS = {
    "fig6": cmd_fig6,
    "fig7": cmd_fig7,
    "table1": cmd_table1,
    "rejection": cmd_rejection,
    "caches": cmd_caches,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the evaluation artifacts of 'Data Stream Sharing' (EDBT 2006).",
    )
    parser.add_argument("experiment", choices=[*COMMANDS, "all"])
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="execute on the sharded executor with N worker cells "
        "(results are byte-identical to the sequential executor)",
    )
    args = parser.parse_args(argv)
    if args.experiment == "all":
        for index, command in enumerate(COMMANDS.values()):
            if index:
                print("\n")
            command(workers=args.workers)
    else:
        COMMANDS[args.experiment](workers=args.workers)
    return 0


if __name__ == "__main__":
    sys.exit(main())
