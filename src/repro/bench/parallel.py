"""Sharded-executor benchmark: worker sweep with identity verification.

Sweeps the :class:`~repro.engine.parallel.ShardedSimulator` over worker
counts on Figure 7's scenario and on a multi-hotspot churn scenario, and
writes ``BENCH_PR7.json``.  Every parallel sample is verified to produce
**byte-identical** :class:`~repro.engine.metrics.RunMetrics` against the
sequential reference run — a benchmark entry with ``identical: false``
means the sharded executor is broken, not slow.

The report records ``cpu_count`` alongside the throughput numbers:
speedups are physically bounded by the cores actually present, so a
1-core container legitimately reports ~1.0x at every worker count (the
sweep then measures sharding overhead, which is also worth tracking).

Usage::

    python -m repro.bench.parallel                      # full sweep
    python -m repro.bench.parallel --scenario fig7 --repeats 1
    python -m repro.bench.parallel --check              # smoke gate:
        # fail if the 2-worker fig7 run is >10% slower than 1-worker
        # (only enforced when the host has >= 2 cores)
    python -m repro.bench.parallel --scenario fig7 \
        --check-overhead BENCH_PR7.json --tolerance 0.02
        # instrumentation overhead gate (DESIGN.md §10/§15): the sweep
        # runs with tracing *disabled*, so every sample prices the
        # dormant recorder hooks in the sharded hot path; fail if any
        # (scenario, workers) throughput drops more than 2% below the
        # committed baseline
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import time
from typing import Any, Callable, Dict, List, Optional

from ..analysis.preflight import _build_system
from ..engine.metrics import RunMetrics
from ..workload.scenarios import Scenario, scenario_churn_hotspots, scenario_two


def _fig7_scenario() -> Scenario:
    scenario = scenario_two()
    scenario.duration = 20.0
    return scenario


SCENARIOS: Dict[str, Callable[[], Scenario]] = {
    "fig7": _fig7_scenario,
    "churn_hotspots": scenario_churn_hotspots,
}

#: Items-per-source cap: keeps full sweeps tractable in CI containers.
MAX_ITEMS = 400


def _run_once(
    factory: Callable[[], Scenario], workers: int
) -> Dict[str, Any]:
    """One timed execution on a freshly built system.

    Churn mutates topology state, so every run (including repeats)
    rebuilds the scenario from its deterministic seeds.
    """
    scenario = factory()
    system = _build_system(scenario, "stream-sharing")
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        metrics = system.run(
            scenario.duration,
            max_items_per_source=MAX_ITEMS,
            faults=scenario.faults,
            workers=workers,
        )
        wall = time.perf_counter() - start
    finally:
        gc.enable()
    simulator = system.last_simulator
    items = sum(metrics.items_generated.values())
    sample: Dict[str, Any] = {
        "wall_s": round(wall, 4),
        "items": items,
        "items_per_s": round(items / wall, 1) if wall > 0 else 0.0,
        "metrics": metrics,
    }
    if workers > 1:
        sample["mode"] = simulator.mode_used
        sample["cells"] = simulator.workers_used
        sample["exchange_batches"] = simulator.exchange_batches
        sample["exchange_items"] = simulator.exchange_items
        sample["exchange_bytes"] = simulator.exchange_bytes
        sample["peak_live_items_per_shard"] = {
            str(cell): peak
            for cell, peak in sorted(simulator.peak_live_items_per_shard.items())
        }
    else:
        sample["mode"] = "sequential"
        sample["cells"] = 1
    return sample


def _measure(
    factory: Callable[[], Scenario], workers: int, repeats: int
) -> Dict[str, Any]:
    best: Optional[Dict[str, Any]] = None
    for _ in range(repeats):
        sample = _run_once(factory, workers)
        if best is None or sample["wall_s"] < best["wall_s"]:
            best = sample
    assert best is not None
    return best


def worker_sweep(cpu_count: int) -> List[int]:
    """The deduplicated worker counts to sweep: 1, 2, 4 and the host's
    core count."""
    return sorted({1, 2, 4, max(cpu_count, 1)})


def run_benchmark(names: List[str], repeats: int = 2) -> Dict[str, Any]:
    cpu_count = os.cpu_count() or 1
    report: Dict[str, Any] = {
        "benchmark": "repro.bench.parallel",
        "cpu_count": cpu_count,
        "scenarios": {},
    }
    for name in names:
        factory = SCENARIOS[name]
        entry: Dict[str, Any] = {"workers": {}}
        reference: Optional[RunMetrics] = None
        base_rate: Optional[float] = None
        for workers in worker_sweep(cpu_count):
            sample = _measure(factory, workers, repeats)
            metrics = sample.pop("metrics")
            if reference is None:
                reference = metrics
                base_rate = sample["items_per_s"]
            sample["identical"] = metrics == reference
            if base_rate is not None and base_rate > 0:
                sample["speedup_vs_1w"] = round(
                    sample["items_per_s"] / base_rate, 3
                )
            entry["workers"][str(workers)] = sample
        entry["all_identical"] = all(
            sample["identical"] for sample in entry["workers"].values()
        )
        report["scenarios"][name] = entry
    return report


def check_gate(report: Dict[str, Any]) -> int:
    """Smoke gate for CI: parallel must not be broken, and on multi-core
    hosts the 2-worker fig7 run must stay within 10% of 1-worker."""
    failures: List[str] = []
    for name, entry in report["scenarios"].items():
        if not entry["all_identical"]:
            failures.append(f"{name}: RunMetrics diverged from sequential")
    fig7 = report["scenarios"].get("fig7", {}).get("workers", {})
    if report["cpu_count"] >= 2 and "1" in fig7 and "2" in fig7:
        one, two = fig7["1"]["items_per_s"], fig7["2"]["items_per_s"]
        if two < 0.9 * one:
            failures.append(
                f"fig7: 2-worker throughput {two:.1f} items/s is more than "
                f"10% below 1-worker {one:.1f} items/s"
            )
    else:
        print(
            f"throughput gate skipped (cpu_count={report['cpu_count']}); "
            "identity gate still enforced"
        )
    for failure in failures:
        print(f"GATE FAILURE: {failure}", file=sys.stderr)
    return 1 if failures else 0


def check_overhead(
    report: Dict[str, Any], baseline_path: str, tolerance: float
) -> int:
    """Disabled-instrumentation overhead gate for the sharded executor.

    The sweep always runs with observability *off* (``NULL_RECORDER``
    cells), so its throughput prices exactly what the tracing hooks cost
    when dormant.  Compare every (scenario, workers) sample against the
    committed baseline report and fail when any drops more than
    ``tolerance`` (fraction) below it — the sharded twin of the
    ``repro.bench.micro`` 2% overhead gate.

    Returns a process exit code: 1 on regression, else 0.
    """
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    failures: List[str] = []
    for name, entry in report["scenarios"].items():
        reference = baseline.get("scenarios", {}).get(name)
        if not reference:
            continue
        for workers, sample in entry["workers"].items():
            committed = reference.get("workers", {}).get(workers)
            if not committed:
                continue
            current = sample["items_per_s"]
            floor = committed["items_per_s"] * (1.0 - tolerance)
            status = "ok" if current >= floor else "REGRESSION"
            print(
                f"{name} workers={workers}: {current:.1f} items/s vs "
                f"baseline {committed['items_per_s']:.1f} "
                f"(floor {floor:.1f}) {status}"
            )
            if current < floor:
                failures.append(f"{name}/w{workers}")
    if failures:
        print(
            "instrumentation overhead beyond tolerance: "
            f"{', '.join(failures)}",
            file=sys.stderr,
        )
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.parallel", description=__doc__
    )
    parser.add_argument(
        "--scenario",
        choices=[*SCENARIOS, "all"],
        default="all",
        help="which scenario(s) to sweep (default: all)",
    )
    parser.add_argument(
        "--out", default="BENCH_PR7.json", help="report output path"
    )
    parser.add_argument(
        "--repeats", type=int, default=2, help="timing repeats (best-of)"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when identity breaks or (on >=2 cores) the "
        "2-worker fig7 run regresses >10%% below 1-worker",
    )
    parser.add_argument(
        "--check-overhead",
        metavar="BASELINE",
        help="compare every (scenario, workers) sample's items/s against "
        "this committed baseline report and exit 1 on a drop beyond "
        "--tolerance (disabled-instrumentation overhead gate)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.02,
        help="allowed fractional throughput drop for --check-overhead "
        "(default 0.02)",
    )
    options = parser.parse_args(argv)

    names = list(SCENARIOS) if options.scenario == "all" else [options.scenario]
    report = run_benchmark(names, repeats=options.repeats)
    with open(options.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for name, entry in report["scenarios"].items():
        for workers, sample in entry["workers"].items():
            ident = "identical" if sample["identical"] else "DIVERGED"
            print(
                f"{name} workers={workers} [{sample['mode']}]: "
                f"{sample['items_per_s']:.1f} items/s "
                f"(x{sample.get('speedup_vs_1w', 1.0)}) {ident}"
            )
    print(f"report written to {options.out} (cpu_count={report['cpu_count']})")
    code = 0
    if options.check:
        code = check_gate(report) or code
    if options.check_overhead:
        code = check_overhead(
            report, options.check_overhead, options.tolerance
        ) or code
    return code


if __name__ == "__main__":
    raise SystemExit(main())
