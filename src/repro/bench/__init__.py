"""Benchmark harness and report rendering for the paper's evaluation."""

from .harness import ScenarioRun, run_scenario, scale_network
from .report import (
    STRATEGY_LABELS,
    accumulated_traffic_report,
    cache_report,
    cpu_report,
    planner_phase_report,
    registration_table,
    rejection_report,
    series_table,
    traffic_report,
)

__all__ = [
    "STRATEGY_LABELS",
    "ScenarioRun",
    "accumulated_traffic_report",
    "cache_report",
    "cpu_report",
    "planner_phase_report",
    "registration_table",
    "rejection_report",
    "run_scenario",
    "scale_network",
    "series_table",
    "traffic_report",
]
