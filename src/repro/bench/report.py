"""Plain-text report rendering: the same rows/series the paper shows."""

from __future__ import annotations

from typing import Dict, List, Sequence

from .harness import ScenarioRun

STRATEGY_LABELS = {
    "data-shipping": "Data Shipping",
    "query-shipping": "Query Shipping",
    "stream-sharing": "Stream Sharing",
}


def _format_table(header: Sequence[str], rows: List[Sequence[str]]) -> str:
    widths = [len(h) for h in header]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
    lines = [fmt(header), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


def series_table(
    title: str,
    unit: str,
    series_by_strategy: Dict[str, Dict[str, float]],
    precision: int = 2,
) -> str:
    """Render one figure panel: rows = x-axis labels, columns = strategies."""
    strategies = list(series_by_strategy)
    labels: List[str] = []
    for series in series_by_strategy.values():
        for label in series:
            if label not in labels:
                labels.append(label)
    header = [title] + [STRATEGY_LABELS.get(s, s) for s in strategies]
    rows = [
        [label]
        + [
            f"{series_by_strategy[s].get(label, 0.0):.{precision}f}"
            for s in strategies
        ]
        for label in labels
    ]
    return _format_table(header, rows) + f"\n({unit})"


def cpu_report(runs: Dict[str, ScenarioRun]) -> str:
    return series_table(
        "Peer",
        "Avg. CPU Load (%)",
        {strategy: run.cpu_by_peer() for strategy, run in runs.items()},
    )


def traffic_report(runs: Dict[str, ScenarioRun]) -> str:
    return series_table(
        "Connection",
        "Avg. Network Traffic (kbps)",
        {strategy: run.traffic_by_link_kbps() for strategy, run in runs.items()},
    )


def accumulated_traffic_report(runs: Dict[str, ScenarioRun]) -> str:
    return series_table(
        "Peer",
        "Acc. Network Traffic (MBit, in+out)",
        {strategy: run.accumulated_mbit_by_peer() for strategy, run in runs.items()},
    )


def registration_table(
    scenario_runs: Dict[str, Dict[str, ScenarioRun]]
) -> str:
    """Table 1: registration times (ms) per scenario and strategy."""
    scenarios = list(scenario_runs)
    header = ["Strategy"]
    for kind in ("Average", "Minimum", "Maximum"):
        for scenario in scenarios:
            header.append(f"{kind} {scenario}")
    rows: List[List[str]] = []
    strategies = list(next(iter(scenario_runs.values())))
    for strategy in strategies:
        row = [STRATEGY_LABELS.get(strategy, strategy)]
        stats = {
            scenario: scenario_runs[scenario][strategy].registration_stats_ms()
            for scenario in scenarios
        }
        for index in range(3):
            for scenario in scenarios:
                row.append(f"{stats[scenario][index]:.0f}")
        rows.append(row)
    return _format_table(header, rows) + "\n(Query registration times, ms)"


#: Preferred display order of control-plane span names; span names not
#: listed here render after these, in first-seen order.
PLANNER_PHASE_ORDER = (
    "register",
    "parse",
    "analyze",
    "plan",
    "search",
    "commit",
    "deregister",
    "repair",
    "repair.damage",
    "repair.teardown",
    "repair.reregister",
)


def cache_report(runs: Dict[str, ScenarioRun]) -> str:
    """Control-plane cache effectiveness: hit rate per cache × strategy.

    Always available — the cache counters are kept regardless of
    tracing (DESIGN.md §10).
    """
    rates = {strategy: run.cache_hit_rates() for strategy, run in runs.items()}
    caches: List[str] = []
    for per_cache in rates.values():
        for name in per_cache:
            if name not in caches:
                caches.append(name)
    header = ["Cache"] + [STRATEGY_LABELS.get(s, s) for s in runs]
    rows = [
        [cache]
        + [
            f"{rates[s][cache] * 100.0:.1f}" if cache in rates[s] else "-"
            for s in runs
        ]
        for cache in caches
    ]
    return _format_table(header, rows) + "\n(Cache hit rate, %)"


def planner_phase_report(runs: Dict[str, ScenarioRun]) -> str:
    """Per-phase planner wall time (ms) per strategy.

    Only traced runs (a Recorder handed to ``run_scenario``) carry span
    timings; untraced strategies render as ``-``.
    """
    totals = {strategy: run.planner_phase_seconds() for strategy, run in runs.items()}
    phases = [p for p in PLANNER_PHASE_ORDER if any(p in t for t in totals.values())]
    for per_phase in totals.values():
        for name in per_phase:
            if name not in phases:
                phases.append(name)
    if not phases:
        return "planner phase timings: none (no traced run; pass a Recorder)"
    header = ["Phase"] + [STRATEGY_LABELS.get(s, s) for s in runs]
    rows = [
        [phase]
        + [
            f"{totals[s][phase] * 1000.0:.1f}" if phase in totals[s] else "-"
            for s in runs
        ]
        for phase in phases
    ]
    return _format_table(header, rows) + "\n(Planner phase wall time, ms)"


def rejection_report(runs: Dict[str, ScenarioRun]) -> str:
    header = ["Strategy", "Accepted", "Rejected"]
    rows = [
        [STRATEGY_LABELS.get(strategy, strategy), str(run.accepted), str(run.rejected)]
        for strategy, run in runs.items()
    ]
    return _format_table(header, rows) + "\n(Constrained-capacity admission, Section 4)"
