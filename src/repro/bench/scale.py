"""Control-plane scale benchmark: indexed vs brute-force registration.

Registers a template workload (``scenario_grid``) twice — once through
the brute-force per-node candidate scan (``use_index=False``, the
paper-faithful Algorithm 1) and once through the
:class:`~repro.sharing.index.StreamAvailabilityIndex` path — and
reports, per workload size:

* wall time and registrations per second for both modes;
* total and per-registration ``candidate_matches`` (the search
  telemetry feeding the latency model: how many candidates reached
  Algorithm 2) — sub-linear growth in installed streams is the point
  of the index;
* ``plans_identical``: whether both modes chose byte-identical plan
  decisions (reused stream, tap node, placement node) for every query —
  the index is an optimization, never a behavior change;
* throughput of :meth:`~repro.sharing.system.StreamGlobe.register_queries`
  batch admission on the same workload;
* per-mode ``cache_hit_rate`` (route / rate / match caches) and
  ``planner_phase_s`` (wall time per control-plane span: register,
  analyze, plan, search, commit — DESIGN.md §10), so later PRs can
  gate on cache effectiveness and phase cost.

The report is written to ``BENCH_PR4.json`` at the repo root by
default.  Query parsing happens outside the timed region (identical in
both modes, and not what this benchmark measures).

Usage::

    python -m repro.bench.scale                      # full benchmark
    python -m repro.bench.scale --scenario smoke     # CI smoke run
    python -m repro.bench.scale --check BENCH_PR4.json
        # regression gate: fail if plan equivalence breaks, the indexed
        # candidate_matches count grows, or the indexed-vs-brute
        # speedup drops more than --tolerance (default 30%) below the
        # committed baseline

The gate compares machine-independent metrics only: ``plans_identical``
and ``candidate_matches`` are deterministic, and ``speedup`` is a ratio
of two measurements from the same run on the same machine.  Absolute
registrations/s are reported but not gated — they vary across hosts.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Dict, List, Optional, Tuple

from ..obs.recorder import Recorder
from ..sharing.system import StreamGlobe
from ..workload.scenarios import Scenario, scenario_grid
from ..wxquery import Query, parse_query

#: Workload sizes of the full benchmark: (query count, run brute mode).
#: The brute-force scan is quadratic in registrations, so the largest
#: size runs indexed-only (the brute run would dominate the benchmark's
#: wall time without adding information beyond the 5k point).
FULL_SIZES: Tuple[Tuple[int, bool], ...] = ((1000, True), (5000, True), (10000, False))

SMOKE_SIZES: Tuple[Tuple[int, bool], ...] = ((250, True),)


def _scenario_for(queries: int, smoke: bool) -> Scenario:
    if smoke:
        return scenario_grid(3, 3, queries)
    return scenario_grid(4, 4, queries)


def _parse_workload(scenario: Scenario) -> Dict[str, Query]:
    """Parse every distinct query text once (shared Query objects)."""
    parsed: Dict[str, Query] = {}
    for spec in scenario.queries:
        if spec.text not in parsed:
            parsed[spec.text] = parse_query(spec.text)
    return parsed


def _build_system(
    scenario: Scenario, use_index: bool, recorder: Optional[Recorder] = None
) -> StreamGlobe:
    system = StreamGlobe(
        scenario.build_network(),
        strategy="stream-sharing",
        use_index=use_index,
        recorder=recorder,
    )
    for source in scenario.sources:
        system.register_stream(
            source.name,
            "photons/photon",
            source.generator_factory(),
            frequency=source.frequency,
            source_peer=source.source_peer,
        )
    return system


#: One query's plan decision: (accepted, per-input (stream, reused id,
#: tap node, placement node)).  What `plans_identical` compares.
Decision = Tuple[bool, Tuple[Tuple[str, str, str, str], ...]]


def _register_sequential(
    scenario: Scenario, parsed: Dict[str, Query], use_index: bool
) -> Dict[str, Any]:
    # Traced so the report carries per-phase planner times.  Both modes
    # are traced identically, so the gated ``speedup`` ratio is
    # unaffected by the (small) span overhead inside the timed region.
    recorder = Recorder()
    system = _build_system(scenario, use_index, recorder=recorder)
    decisions: Dict[str, Decision] = {}
    candidate_matches = 0
    accepted = 0
    start = time.perf_counter()
    for spec in scenario.queries:
        result = system.register_query(
            spec.name, parsed[spec.text], spec.subscriber_peer
        )
        if result.accepted:
            accepted += 1
        plan = result.plan
        inputs: Tuple[Tuple[str, str, str, str], ...] = ()
        if plan is not None:
            candidate_matches += plan.candidate_matches
            inputs = tuple(
                (p.input_stream, p.reused_id, p.tap_node, p.placement_node)
                for p in plan.inputs
            )
        decisions[spec.name] = (result.accepted, inputs)
    wall_s = time.perf_counter() - start
    count = len(scenario.queries)
    return {
        "decisions": decisions,
        "entry": {
            "wall_s": round(wall_s, 3),
            "registrations_per_s": round(count / wall_s, 1),
            "accepted": accepted,
            "candidate_matches": candidate_matches,
            "matches_per_registration": round(candidate_matches / count, 1),
            "streams": len(system.deployment.streams),
            "cache_hit_rate": {
                name: round(stats["hit_rate"], 4)
                for name, stats in system.cache_stats().items()
            },
            "planner_phase_s": {
                name: round(totals["total_s"], 3)
                for name, totals in recorder.span_totals().items()
            },
        },
    }


def _register_batch(scenario: Scenario, parsed: Dict[str, Query]) -> Dict[str, Any]:
    system = _build_system(scenario, use_index=True)
    batch = [
        (spec.name, parsed[spec.text], spec.subscriber_peer)
        for spec in scenario.queries
    ]
    start = time.perf_counter()
    results = system.register_queries(batch)
    wall_s = time.perf_counter() - start
    return {
        "wall_s": round(wall_s, 3),
        "registrations_per_s": round(len(batch) / wall_s, 1),
        "accepted": sum(1 for r in results if r.accepted),
        "streams": len(system.deployment.streams),
    }


def _measure_size(queries: int, run_brute: bool, smoke: bool) -> Dict[str, Any]:
    scenario = _scenario_for(queries, smoke)
    parsed = _parse_workload(scenario)

    indexed = _register_sequential(scenario, parsed, use_index=True)
    entry: Dict[str, Any] = {
        "queries": queries,
        "distinct_query_texts": len(parsed),
        "modes": {"indexed": indexed["entry"]},
        "batch": _register_batch(scenario, parsed),
    }
    if run_brute:
        brute = _register_sequential(scenario, parsed, use_index=False)
        entry["modes"]["brute"] = brute["entry"]
        entry["speedup"] = round(
            indexed["entry"]["registrations_per_s"]
            / brute["entry"]["registrations_per_s"],
            2,
        )
        entry["plans_identical"] = indexed["decisions"] == brute["decisions"]
    return entry


def run_benchmark(smoke: bool) -> Dict[str, Any]:
    report: Dict[str, Any] = {"benchmark": "repro.bench.scale", "scenarios": {}}
    # The smoke sizes run in both modes so the committed full report
    # contains the scenario the CI smoke gate compares against.
    for queries, run_brute in SMOKE_SIZES:
        report["scenarios"][f"smoke-{queries}"] = _measure_size(
            queries, run_brute, smoke=True
        )
    if not smoke:
        for queries, run_brute in FULL_SIZES:
            report["scenarios"][f"n{queries}"] = _measure_size(
                queries, run_brute, smoke=False
            )
    return report


def check_regression(
    report: Dict[str, Any], baseline_path: str, tolerance: float
) -> int:
    """Gate on control-plane scalability regressions.

    Fails (returns 1) when, for any scenario present in both reports:

    * indexed and brute-force registration no longer choose identical
      plans (``plans_identical`` false) — correctness, zero tolerance;
    * the indexed path's ``candidate_matches`` grew beyond the
      committed count × (1 + tolerance) — the index stopped pruning;
    * the indexed-vs-brute ``speedup`` fell below the committed value ×
      (1 − tolerance).
    """
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    failures: List[str] = []
    for name, entry in report["scenarios"].items():
        reference = baseline.get("scenarios", {}).get(name)
        if not reference:
            continue
        ok = True
        if "plans_identical" in entry and not entry["plans_identical"]:
            print(f"{name}: indexed and brute plans diverged  REGRESSION")
            ok = False
        current_matches = entry["modes"]["indexed"]["candidate_matches"]
        committed_matches = reference["modes"]["indexed"]["candidate_matches"]
        ceiling = committed_matches * (1.0 + tolerance)
        status = "ok" if current_matches <= ceiling else "REGRESSION"
        print(
            f"{name}: indexed candidate_matches {current_matches} vs baseline "
            f"{committed_matches} (ceiling {ceiling:.0f}) {status}"
        )
        ok = ok and current_matches <= ceiling
        if "speedup" in entry and "speedup" in reference:
            floor = reference["speedup"] * (1.0 - tolerance)
            status = "ok" if entry["speedup"] >= floor else "REGRESSION"
            print(
                f"{name}: speedup {entry['speedup']:.2f}x vs baseline "
                f"{reference['speedup']:.2f}x (floor {floor:.2f}x) {status}"
            )
            ok = ok and entry["speedup"] >= floor
        if not ok:
            failures.append(name)
    if failures:
        print(f"regressed scenarios: {', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.scale", description=__doc__
    )
    parser.add_argument(
        "--scenario",
        choices=("smoke", "full"),
        default="full",
        help="smoke: one small size on a 3x3 grid (CI); "
        "full: 1k/5k/10k on a 4x4 grid (default)",
    )
    parser.add_argument("--out", default="BENCH_PR4.json", help="report output path")
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        help="compare against a committed baseline report; exit 1 on a "
        "plan-equivalence, pruning, or speedup regression",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional degradation for --check (default 0.30)",
    )
    options = parser.parse_args(argv)

    report = run_benchmark(smoke=options.scenario == "smoke")
    with open(options.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for name, entry in report["scenarios"].items():
        indexed = entry["modes"]["indexed"]
        line = (
            f"{name}: indexed {indexed['registrations_per_s']:.0f} reg/s "
            f"({indexed['matches_per_registration']:.0f} matches/reg)"
        )
        if "brute" in entry["modes"]:
            brute = entry["modes"]["brute"]
            line += (
                f", brute {brute['registrations_per_s']:.0f} reg/s "
                f"({brute['matches_per_registration']:.0f} matches/reg), "
                f"speedup {entry['speedup']:.1f}x, "
                f"plans identical: {entry['plans_identical']}"
            )
        print(line)
    print(f"report written to {options.out}")
    if options.check:
        return check_regression(report, options.check, options.tolerance)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
