"""Static-vs-adaptive benchmark: live plan migration under load drift.

Runs each drift scenario three ways and writes ``BENCH_PR8.json``:

* **static** — the plan placed at registration time, never revisited;
* **adaptive** — the same system with a
  :class:`~repro.sharing.rebalance.Rebalancer` attached: the drift
  detector watches the per-epoch CPU% series and migrates the affected
  subscriptions off sustained hotspots (every migration passes the
  ``verify=True`` pre-flight);
* **adaptive-sharded** — the adaptive run again on the 2-worker
  sharded data plane, verified byte-identical to the sequential
  adaptive run (skipped, with a printed notice, on 1-core hosts).

The headline figure is the *hottest peer's run-average CPU%* — the
load the drifted source concentrates on the originally cheapest peer —
plus the conservation ledger: stateless (selection/projection)
subscriptions must deliver exactly the static run's items (migration
is make-before-break at quiescent barriers), while windowed
aggregations may shift by their restarted windows (DESIGN.md §8, same
as churn repair).

Usage::

    python -m repro.bench.rebalance                    # all scenarios
    python -m repro.bench.rebalance --scenario drift
    python -m repro.bench.rebalance --check            # smoke gate:
        # fail unless the adaptive run migrates, beats static on the
        # hottest peer, keeps downtime at 0 and conserves stateless
        # deliveries (sharded identity only enforced on >= 2 cores)
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import sys
import time
from typing import Any, Callable, Dict, List, Optional, Tuple

from ..engine.metrics import RunMetrics
from ..obs.drift import DriftConfig
from ..sharing.rebalance import Rebalancer
from ..sharing.system import StreamGlobe
from ..workload.scenarios import (
    Scenario,
    scenario_drift,
    scenario_hotspot_shift,
)

SCENARIOS: Dict[str, Callable[[], Scenario]] = {
    "drift": scenario_drift,
    "hotspot_shift": scenario_hotspot_shift,
}

#: Detector thresholds calibrated to the simulated CPU% scale of the
#: drift scenarios (the hot peer idles around 6%% and surges past 25%%
#: after the rate step), not to the 80%% production default.
DRIFT_CONFIG = DriftConfig(
    cpu_threshold=15.0,
    clear_threshold=8.0,
    window=2,
    sustain=2,
    cooldown=4,
)

#: Query kinds whose delivered counts must be *exactly* conserved
#: across a migration (no windows to restart).
STATELESS_KINDS = ("selection", "projection")


def _build_verified(scenario: Scenario) -> StreamGlobe:
    """Register the scenario's workload on a ``verify=True`` system, so
    every migration re-runs the full analysis pre-flight."""
    system = StreamGlobe(
        scenario.build_network(), strategy="stream-sharing", verify=True
    )
    for source in scenario.sources:
        system.register_stream(
            source.name,
            "photons/photon",
            source.generator_factory(),
            frequency=source.frequency,
            source_peer=source.source_peer,
        )
    for spec in scenario.queries:
        system.register_query(spec.name, spec.text, spec.subscriber_peer)
    return system


def _hottest_peer(metrics: RunMetrics, system: StreamGlobe) -> Tuple[str, float]:
    net = system.net
    peer = max(
        net.super_peer_names(),
        key=lambda name: (metrics.peer_cpu_percent(net, name), name),
    )
    return peer, metrics.peer_cpu_percent(net, peer)


def _run_once(
    scenario: Scenario,
    rebalancer_factory: Optional[Callable[[StreamGlobe], Rebalancer]] = None,
    workers: Optional[int] = None,
) -> Tuple[RunMetrics, StreamGlobe, Optional[Rebalancer], float]:
    system = _build_verified(scenario)
    rebalancer = (
        rebalancer_factory(system) if rebalancer_factory is not None else None
    )
    gc.collect()
    gc.disable()
    try:
        start = time.perf_counter()
        metrics = system.run(
            scenario.duration,
            faults=scenario.faults,
            workers=workers,
            rebalancer=rebalancer,
        )
        wall = time.perf_counter() - start
    finally:
        gc.enable()
    return metrics, system, rebalancer, wall


def _sample(
    metrics: RunMetrics,
    system: StreamGlobe,
    rebalancer: Optional[Rebalancer],
    wall: float,
) -> Dict[str, Any]:
    peer, cpu = _hottest_peer(metrics, system)
    sample: Dict[str, Any] = {
        "wall_s": round(wall, 4),
        "hottest_peer": peer,
        "hottest_peer_cpu_percent": round(cpu, 6),
        "total_mbit": round(metrics.total_mbit(), 6),
        "items_delivered": sum(metrics.items_delivered.values()),
        "items_generated": sum(metrics.items_generated.values()),
        "migrations_applied": metrics.migrations_applied,
        "migration_downtime_epochs": metrics.migration_downtime_epochs,
    }
    if rebalancer is not None:
        sample["drift_alerts"] = len(rebalancer.detector.alerts)
        sample["migrations"] = [
            {
                "epoch_index": report.epoch_index,
                "hot_peers": list(report.hot_peers),
                "moved_queries": report.moved_queries,
                "removed_streams": len(report.removed_streams),
                "hot_work_released": round(report.hot_work_released(), 3),
                "summary": report.summary(),
            }
            for report in rebalancer.reports
        ]
    return sample


def _conservation(
    scenario: Scenario, static: RunMetrics, adaptive: RunMetrics
) -> Dict[str, Any]:
    """Per-kind delivery ledger: stateless kinds must match exactly."""
    kinds = {spec.name: spec.kind for spec in scenario.queries}
    mismatched: List[str] = []
    aggregate_delta = 0
    for name, kind in kinds.items():
        a = static.items_delivered.get(name, 0)
        b = adaptive.items_delivered.get(name, 0)
        if kind in STATELESS_KINDS:
            if a != b:
                mismatched.append(f"{name} ({kind}): static {a} != adaptive {b}")
        else:
            aggregate_delta += abs(a - b)
    return {
        "stateless_conserved": not mismatched,
        "stateless_mismatches": mismatched,
        "aggregate_items_delta": aggregate_delta,
    }


def run_benchmark(names: List[str]) -> Dict[str, Any]:
    cpu_count = os.cpu_count() or 1
    report: Dict[str, Any] = {
        "benchmark": "repro.bench.rebalance",
        "cpu_count": cpu_count,
        "drift_config": {
            "cpu_threshold": DRIFT_CONFIG.cpu_threshold,
            "clear_threshold": DRIFT_CONFIG.clear_threshold,
            "window": DRIFT_CONFIG.window,
            "sustain": DRIFT_CONFIG.sustain,
            "cooldown": DRIFT_CONFIG.cooldown,
        },
        "scenarios": {},
    }
    for name in names:
        factory = SCENARIOS[name]

        def make_rebalancer(system: StreamGlobe) -> Rebalancer:
            return Rebalancer(system, config=DRIFT_CONFIG)

        static, static_sys, _, static_wall = _run_once(factory())
        adaptive, adaptive_sys, rebalancer, adaptive_wall = _run_once(
            factory(), rebalancer_factory=make_rebalancer
        )
        entry: Dict[str, Any] = {
            "static": _sample(static, static_sys, None, static_wall),
            "adaptive": _sample(adaptive, adaptive_sys, rebalancer, adaptive_wall),
            "conservation": _conservation(factory(), static, adaptive),
        }
        entry["cpu_improvement_percent"] = round(
            entry["static"]["hottest_peer_cpu_percent"]
            - entry["adaptive"]["hottest_peer_cpu_percent"],
            6,
        )
        if cpu_count >= 2:
            sharded, sharded_sys, sh_rebalancer, sharded_wall = _run_once(
                factory(), rebalancer_factory=make_rebalancer, workers=2
            )
            simulator = sharded_sys.last_simulator
            sharded_sample = _sample(
                sharded, sharded_sys, sh_rebalancer, sharded_wall
            )
            sharded_sample["mode"] = simulator.mode_used
            sharded_sample["cells"] = simulator.workers_used
            sharded_sample["identical_to_sequential"] = sharded == adaptive
            entry["adaptive_sharded"] = sharded_sample
        else:
            print(
                f"sharded leg skipped (cpu_count={cpu_count}); sequential "
                "gates still enforced"
            )
        report["scenarios"][name] = entry
    return report


def check_gate(report: Dict[str, Any]) -> int:
    """Smoke gate for CI: adaptive must migrate, beat static on the
    hottest peer, stay downtime-free and conserve stateless deliveries
    on ``scenario_drift``; sharded identity is enforced whenever the
    sharded leg ran (>= 2 cores)."""
    failures: List[str] = []
    drift = report["scenarios"].get("drift")
    if drift is not None:
        static_cpu = drift["static"]["hottest_peer_cpu_percent"]
        adaptive_cpu = drift["adaptive"]["hottest_peer_cpu_percent"]
        if drift["adaptive"]["migrations_applied"] < 1:
            failures.append("drift: adaptive run applied no migrations")
        if adaptive_cpu >= static_cpu:
            failures.append(
                f"drift: adaptive hottest-peer CPU {adaptive_cpu:.3f}% did "
                f"not improve on static {static_cpu:.3f}%"
            )
    for name, entry in report["scenarios"].items():
        if entry["adaptive"]["migration_downtime_epochs"] != 0:
            failures.append(f"{name}: migration downtime epochs != 0")
        conservation = entry["conservation"]
        if not conservation["stateless_conserved"]:
            failures.append(
                f"{name}: stateless deliveries not conserved: "
                + "; ".join(conservation["stateless_mismatches"])
            )
        sharded = entry.get("adaptive_sharded")
        if sharded is not None and not sharded["identical_to_sequential"]:
            failures.append(
                f"{name}: sharded adaptive RunMetrics diverged from "
                "sequential adaptive"
            )
    for failure in failures:
        print(f"GATE FAILURE: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.rebalance", description=__doc__
    )
    parser.add_argument(
        "--scenario",
        choices=[*SCENARIOS, "all"],
        default="all",
        help="which scenario(s) to run (default: all)",
    )
    parser.add_argument(
        "--out", default="BENCH_PR8.json", help="report output path"
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 when the adaptive run fails to migrate, to beat "
        "static, to conserve stateless deliveries, or to match the "
        "sharded data plane",
    )
    options = parser.parse_args(argv)

    names = list(SCENARIOS) if options.scenario == "all" else [options.scenario]
    report = run_benchmark(names)
    with open(options.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for name, entry in report["scenarios"].items():
        static = entry["static"]
        adaptive = entry["adaptive"]
        print(
            f"{name}: static hottest {static['hottest_peer']} "
            f"{static['hottest_peer_cpu_percent']:.3f}% -> adaptive "
            f"{adaptive['hottest_peer']} "
            f"{adaptive['hottest_peer_cpu_percent']:.3f}% "
            f"({adaptive['migrations_applied']} migration(s), "
            f"downtime {adaptive['migration_downtime_epochs']})"
        )
        for migration in adaptive.get("migrations", []):
            print(f"  {migration['summary']}")
    print(f"report written to {options.out} (cpu_count={report['cpu_count']})")
    if options.check:
        return check_gate(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
