"""Churn benchmark: degradation and recovery under injected faults.

Runs the churn scenario (a grid with a mid-run super-peer crash and
rejoin, :func:`~repro.workload.scenarios.scenario_churn`) twice — once
fault-free, once with the fault schedule — and reports what the fault
cost: recovery time, items lost, extra re-routing traffic, and whether
every *unaffected* subscription delivered byte-identical results in
both runs (the fault-isolation guarantee).  The report is written to
``BENCH_PR3.json`` at the repo root by default.

Usage::

    python -m repro.bench.churn                      # full benchmark
    python -m repro.bench.churn --scenario smoke     # CI smoke run
    python -m repro.bench.churn --check BENCH_PR3.json
        # regression gate: fail if recovery overhead (re-routed
        # traffic fraction) or recovery time grows more than
        # --tolerance (default 30%) over the committed baseline
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Any, Callable, Dict, List, Optional

from ..workload.scenarios import Scenario, scenario_churn
from ..xmlkit.serializer import serialize
from .harness import run_scenario


def _smoke_scenario() -> Scenario:
    return scenario_churn(rows=3, cols=3, query_count=8, duration=15.0,
                          crash_at=5.0, rejoin_at=10.0)


SCENARIOS: Dict[str, Callable[[], Scenario]] = {
    "smoke": _smoke_scenario,
    "churn": scenario_churn,
}


def _execute(scenario: Scenario, faulted: bool) -> Dict[str, Any]:
    """Register the workload and run it, capturing delivered results."""
    run = run_scenario(scenario, "stream-sharing", execute=False)
    outputs: Dict[str, List[str]] = {spec.name: [] for spec in scenario.queries}

    def capture(query: str, item) -> None:
        outputs[query].append(serialize(item))

    metrics = run.system.run(
        scenario.duration,
        faults=scenario.faults if faulted else None,
        capture=capture,
    )
    return {"system": run.system, "metrics": metrics, "outputs": outputs}


def _affected_queries(scenario: Scenario) -> List[str]:
    """Queries a fresh faulted registration tears down at least once.

    Determined by replaying the fault schedule against a newly
    registered (unexecuted) deployment — the same damage analysis the
    live repair performs.
    """
    run = run_scenario(scenario, "stream-sharing", execute=False)
    affected: set = set()
    assert scenario.faults is not None
    for event in scenario.faults.events():
        report = run.system.apply_fault(event)
        affected.update(report.torn_down_queries)
    return sorted(affected)


def run_benchmark(names: List[str]) -> Dict[str, Any]:
    report: Dict[str, Any] = {"benchmark": "repro.bench.churn", "scenarios": {}}
    for name in names:
        baseline = _execute(SCENARIOS[name](), faulted=False)
        faulted = _execute(SCENARIOS[name](), faulted=True)
        affected = _affected_queries(SCENARIOS[name]())

        base_out = baseline["outputs"]
        fault_out = faulted["outputs"]
        unaffected = [q for q in base_out if q not in affected]
        isolated = all(base_out[q] == fault_out[q] for q in unaffected)

        metrics = faulted["metrics"]
        entry = {
            "duration": SCENARIOS[name]().duration,
            "faults": SCENARIOS[name]().faults.describe(),
            "faults_applied": metrics.faults_applied,
            "affected_queries": affected,
            "unaffected_identical": isolated,
            "items_lost": metrics.items_lost,
            "recovery_time_s": round(metrics.recovery_time_s, 4),
            "rerouted_mbit": round(metrics.rerouted_mbit(), 4),
            "recovery_overhead": round(metrics.recovery_overhead(), 4),
            "queries_repaired": metrics.queries_repaired,
            "queries_lost": metrics.queries_lost,
            "total_mbit_faulted": round(metrics.total_mbit(), 4),
            "total_mbit_baseline": round(baseline["metrics"].total_mbit(), 4),
        }
        report["scenarios"][name] = entry
    return report


def check_regression(
    report: Dict[str, Any], baseline_path: str, tolerance: float
) -> int:
    """Gate on recovery-overhead (and recovery-time) regressions.

    Returns 1 if, for any common scenario, the recovery overhead or the
    recovery time grew more than ``tolerance`` (fraction) beyond the
    committed baseline, or the fault-isolation guarantee broke.
    """
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    failures: List[str] = []
    for name, entry in report["scenarios"].items():
        reference = baseline.get("scenarios", {}).get(name)
        if not reference:
            continue
        if not entry["unaffected_identical"]:
            print(f"{name}: unaffected subscriptions diverged  REGRESSION")
            failures.append(name)
            continue
        ok = True
        for key in ("recovery_overhead", "recovery_time_s"):
            current = entry[key]
            committed = reference[key]
            ceiling = committed * (1.0 + tolerance)
            status = "ok" if current <= ceiling else "REGRESSION"
            print(
                f"{name}: {key} {current:.4f} vs baseline {committed:.4f} "
                f"(ceiling {ceiling:.4f}) {status}"
            )
            ok = ok and current <= ceiling
        if not ok:
            failures.append(name)
    if failures:
        print(f"regressed scenarios: {', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.churn", description=__doc__
    )
    parser.add_argument(
        "--scenario",
        choices=[*SCENARIOS, "all"],
        default="all",
        help="which scenario(s) to run (default: all)",
    )
    parser.add_argument("--out", default="BENCH_PR3.json", help="report output path")
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        help="compare against a committed baseline report; exit 1 on a "
        "recovery-overhead regression beyond --tolerance",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional overhead growth for --check (default 0.30)",
    )
    options = parser.parse_args(argv)

    names = list(SCENARIOS) if options.scenario == "all" else [options.scenario]
    report = run_benchmark(names)
    with open(options.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for name, entry in report["scenarios"].items():
        print(
            f"{name}: recovery {entry['recovery_time_s']:.3f}s, "
            f"{entry['items_lost']} item(s) lost, "
            f"re-routed {entry['rerouted_mbit']:.4f} MBit "
            f"(overhead {entry['recovery_overhead']:.1%}), "
            f"unaffected identical: {entry['unaffected_identical']}"
        )
    print(f"report written to {options.out}")
    if options.check:
        return check_regression(report, options.check, options.tolerance)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
