"""Benchmark harness: run a scenario under a strategy, collect the
paper's metrics.

The harness owns the pieces every experiment shares: building (and
optionally capacity-limiting) the network, registering sources and
queries, executing the deployment, and packaging the series the paper's
figures and tables report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..engine import RunMetrics
from ..network.topology import Network
from ..sharing import RegistrationResult, StreamGlobe
from ..workload.scenarios import Scenario


def scale_network(
    net: Network,
    capacity_factor: float = 1.0,
    link_bandwidth: Optional[float] = None,
) -> Network:
    """Clone a topology with scaled peer capacities / link bandwidths.

    Used by the rejection experiment: "we limited the maximum CPU load
    of peers to 10 % of their actual capacity and the maximum bandwidth
    of network connections between peers to 1 MBit/s" (Section 4).
    """
    scaled = Network()
    for peer in net.super_peers():
        scaled.add_super_peer(
            peer.name, capacity=peer.capacity * capacity_factor, pindex=peer.pindex
        )
    for link in net.links():
        scaled.add_link(
            link.a,
            link.b,
            bandwidth=link_bandwidth if link_bandwidth is not None else link.bandwidth,
        )
    for thin in net.thin_peers():
        scaled.add_thin_peer(thin.name, thin.super_peer)
    return scaled


@dataclass
class ScenarioRun:
    """Everything measured from one scenario × strategy execution."""

    scenario: str
    strategy: str
    system: StreamGlobe = field(repr=False)
    metrics: Optional[RunMetrics]
    registrations: List[RegistrationResult]

    # ------------------------------------------------------------------
    @property
    def accepted(self) -> int:
        return sum(1 for r in self.registrations if r.accepted)

    @property
    def rejected(self) -> int:
        return sum(1 for r in self.registrations if not r.accepted)

    def registration_stats_ms(self) -> Tuple[float, float, float]:
        """(average, minimum, maximum) registration time (Table 1)."""
        times = [r.registration_ms for r in self.registrations]
        if not times:
            return (0.0, 0.0, 0.0)
        return (sum(times) / len(times), min(times), max(times))

    def cpu_by_peer(self) -> Dict[str, float]:
        assert self.metrics is not None
        return dict(self.metrics.cpu_series(self.system.net))

    def traffic_by_link_kbps(self) -> Dict[str, float]:
        assert self.metrics is not None
        return dict(self.metrics.traffic_series(self.system.net))

    def accumulated_mbit_by_peer(self) -> Dict[str, float]:
        assert self.metrics is not None
        return {
            name: self.metrics.peer_accumulated_mbit(self.system.net, name)
            for name in self.system.net.super_peer_names()
        }

    def total_traffic_mbit(self) -> float:
        assert self.metrics is not None
        return self.metrics.total_mbit()

    def cache_hit_rates(self) -> Dict[str, float]:
        """Hit rate per control-plane cache (always available)."""
        return {
            name: stats["hit_rate"]
            for name, stats in self.system.cache_stats().items()
        }

    def planner_phase_seconds(self) -> Dict[str, float]:
        """Total wall seconds per control-plane span name.

        Empty unless the run was traced (a :class:`~repro.obs.Recorder`
        was handed to :func:`run_scenario`).
        """
        recorder = self.system.recorder
        if not recorder.enabled:
            return {}
        return {
            name: totals["total_s"]
            for name, totals in recorder.span_totals().items()
        }


def run_scenario(
    scenario: Scenario,
    strategy: str,
    gamma: float = 0.5,
    match_mode: str = "edgewise",
    search_order: str = "bfs",
    admission_control: bool = False,
    share_aggregates: bool = True,
    enable_widening: bool = False,
    capacity_factor: float = 1.0,
    link_bandwidth: Optional[float] = None,
    execute: bool = True,
    use_index: bool = True,
    recorder=None,
    workers: Optional[int] = None,
) -> ScenarioRun:
    """Register a scenario's workload under ``strategy`` and execute it.

    ``execute=False`` skips the measured simulation (used by
    registration-only experiments like Table 1 and the rejection study).

    ``recorder`` — an optional :class:`~repro.obs.Recorder` handed to
    the system, capturing control-plane spans and the data-plane epoch
    series for the whole scenario (``python -m repro.obs record`` uses
    this).

    ``workers`` — execute on the sharded executor with this many worker
    cells (metrics stay byte-identical to the sequential executor; see
    :class:`~repro.engine.parallel.ShardedSimulator`).
    """
    net = scenario.build_network()
    if not math.isclose(capacity_factor, 1.0) or link_bandwidth is not None:
        net = scale_network(net, capacity_factor, link_bandwidth)

    system = StreamGlobe(
        net,
        strategy=strategy,
        gamma=gamma,
        match_mode=match_mode,
        search_order=search_order,
        admission_control=admission_control,
        share_aggregates=share_aggregates,
        enable_widening=enable_widening,
        use_index=use_index,
        recorder=recorder,
    )
    for source in scenario.sources:
        system.register_stream(
            source.name,
            "photons/photon",
            source.generator_factory(),
            frequency=source.frequency,
            source_peer=source.source_peer,
        )
    registrations = [
        system.register_query(spec.name, spec.text, spec.subscriber_peer)
        for spec in scenario.queries
    ]
    metrics = (
        system.run(scenario.duration, faults=scenario.faults, workers=workers)
        if execute
        else None
    )
    return ScenarioRun(
        scenario=scenario.name,
        strategy=strategy,
        system=system,
        metrics=metrics,
        registrations=registrations,
    )
