"""Executor micro-benchmark: throughput and peak-memory comparison.

Measures the streaming :class:`~repro.engine.executor.StreamSimulator`
against the materializing oracle on the built-in scenarios and writes a
JSON report (``BENCH_PR2.json`` at the repo root by default).  Each
scenario is also run at half duration to demonstrate that the streaming
executor's peak in-flight item count is bounded independently of run
duration (while the materializing executor's grows linearly).

Usage::

    python -m repro.bench.micro                    # all scenarios
    python -m repro.bench.micro --scenario smoke   # CI smoke run
    python -m repro.bench.micro --check BENCH_PR2.json
        # regression gate: fail if streaming items/s drops more than
        # --tolerance (default 30%) below the committed baseline
    python -m repro.bench.micro --columnar --out BENCH_PR9.json \
        --min-columnar-speedup 2.0
        # A/B the tree vs columnar (REPRO_COLUMNAR) streaming executor:
        # verifies RunMetrics identity, records columnar_speedup, and
        # gates the speedup floor (identity is always enforced; the
        # speed gate self-disarms on single-core hosts)

Each scenario entry also records ``cache_hit_rate`` — the
control-plane cache snapshot (route / rate / match) taken right after
registration (DESIGN.md §10).  The timed region itself stays untraced:
this benchmark measures the instrumentation-disabled path, and CI's
overhead gate holds it within 2% of the committed baseline.

The ``pre_pr`` block embeds the throughput of the executor *before*
this optimization round (measured on the same scenarios from the seed
revision), so the report directly documents the speedup.
"""

from __future__ import annotations

import argparse
import contextlib
import gc
import json
import os
import sys
import time
from typing import Any, Callable, Dict, Iterator, List, Optional

from ..engine.columnar import ENV_VAR as COLUMNAR_ENV
from ..engine.executor import MaterializingSimulator, StreamSimulator
from ..workload.scenarios import Scenario, scenario_one, scenario_two
from .harness import run_scenario

#: Throughput of the seed (pre-PR) executor on this benchmark's
#: scenarios, measured before the streaming rewrite.  Committed so the
#: report documents the speedup against a fixed reference point.
PRE_PR_BASELINE: Dict[str, Dict[str, float]] = {
    "fig7": {"wall_s": 6.3477, "items": 10795, "items_per_s": 1700.6},
    "smoke": {"wall_s": 0.207, "items": 1001, "items_per_s": 4836.1},
}


def _smoke_scenario() -> Scenario:
    scenario = scenario_one(query_count=10)
    scenario.duration = 10.0
    return scenario


SCENARIOS: Dict[str, Callable[[], Scenario]] = {
    "smoke": _smoke_scenario,
    "fig7": scenario_two,
}


@contextlib.contextmanager
def _columnar_env(mode: Optional[str]) -> Iterator[None]:
    """Pin ``REPRO_COLUMNAR`` for one measurement (restore after)."""
    if mode is None:
        yield
        return
    previous = os.environ.get(COLUMNAR_ENV)
    os.environ[COLUMNAR_ENV] = mode
    try:
        yield
    finally:
        if previous is None:
            del os.environ[COLUMNAR_ENV]
        else:
            os.environ[COLUMNAR_ENV] = previous


def _measure(
    simulator_cls,
    system,
    duration: float,
    repeats: int,
    workers: int = 0,
    columnar: Optional[str] = None,
    keep_metrics: bool = False,
) -> Dict[str, Any]:
    """Best-of-``repeats`` execution of one executor on one deployment.

    ``workers > 1`` measures the sharded executor
    (:class:`~repro.engine.parallel.ShardedSimulator`) instead; its
    sample reports ``peak_live_items`` as the *maximum* over shard
    cells — each cell holds its own in-flight window, so summing them
    would overstate any single process's live footprint — and adds the
    per-shard breakdown under ``peak_live_items_per_shard``.
    """
    best: Optional[Dict[str, Any]] = None
    for _ in range(repeats):
        generators = {
            name: source.generator_factory()
            for name, source in system.sources.items()
        }
        # The env pin covers construction too: the executor resolves
        # REPRO_COLUMNAR once per simulator.
        with _columnar_env(columnar):
            if workers > 1:
                from ..engine.parallel import ShardedSimulator

                simulator = ShardedSimulator(
                    system.net,
                    system.deployment,
                    generators,
                    duration,
                    plan=system.shard_plan(),
                    workers=workers,
                )
            else:
                simulator = simulator_cls(
                    system.net, system.deployment, generators, duration
                )
            # Collect leftovers of previous runs, then keep the collector
            # out of the timed region — generational GC passes triggered
            # by a *previous* executor's garbage would otherwise skew the
            # sample.
            gc.collect()
            gc.disable()
            try:
                start = time.perf_counter()
                metrics = simulator.run()
                wall = time.perf_counter() - start
            finally:
                gc.enable()
        items = sum(metrics.items_generated.values())
        sample: Dict[str, Any] = {
            "wall_s": round(wall, 4),
            "items": items,
            "items_per_s": round(items / wall, 1),
            "mbit": round(metrics.total_mbit(), 4),
            "peak_live_items": simulator.peak_live_items,
        }
        if keep_metrics:
            sample["metrics"] = metrics
        if workers > 1:
            sample["peak_live_items_per_shard"] = {
                str(cell): peak
                for cell, peak in sorted(
                    simulator.peak_live_items_per_shard.items()
                )
            }
            sample["mode"] = simulator.mode_used
            sample["cells"] = simulator.workers_used
        if best is None or sample["wall_s"] < best["wall_s"]:
            best = sample
    assert best is not None
    return best


def run_benchmark(
    names: List[str],
    repeats: int = 3,
    parallel_workers: int = 0,
    columnar: bool = False,
) -> Dict[str, Any]:
    report: Dict[str, Any] = {
        "benchmark": "repro.bench.micro",
        "pre_pr": PRE_PR_BASELINE,
        "cpu_count": os.cpu_count() or 1,
        "scenarios": {},
    }
    for name in names:
        scenario = SCENARIOS[name]()
        system = run_scenario(scenario, "stream-sharing", execute=False).system
        # Registration happened above; snapshot the control-plane cache
        # hit rates (always-on counters) before the timed executions.
        cache = {
            cache_name: round(stats["hit_rate"], 4)
            for cache_name, stats in system.cache_stats().items()
        }
        streaming = _measure(StreamSimulator, system, scenario.duration, repeats)
        materializing = _measure(
            MaterializingSimulator, system, scenario.duration, repeats
        )
        # Half-duration run: streaming peak must not scale with duration.
        half = _measure(StreamSimulator, system, scenario.duration / 2, 1)
        entry: Dict[str, Any] = {
            "duration": scenario.duration,
            "cache_hit_rate": cache,
            "streaming": streaming,
            "materializing": materializing,
            "streaming_half_duration_peak": half["peak_live_items"],
        }
        if columnar:
            # Tree vs columnar A/B on the same deployment: identity is
            # checked on the full RunMetrics, speedup on items/s.
            tree = _measure(
                StreamSimulator,
                system,
                scenario.duration,
                repeats,
                columnar="off",
                keep_metrics=True,
            )
            fast = _measure(
                StreamSimulator,
                system,
                scenario.duration,
                repeats,
                columnar="on",
                keep_metrics=True,
            )
            entry["columnar_identical"] = tree.pop("metrics") == fast.pop(
                "metrics"
            )
            entry["streaming_tree"] = tree
            entry["streaming_columnar"] = fast
            entry["columnar_speedup"] = (
                round(fast["items_per_s"] / tree["items_per_s"], 2)
                if tree["items_per_s"]
                else 0.0
            )
        if parallel_workers > 1:
            entry["streaming_parallel"] = _measure(
                StreamSimulator,
                system,
                scenario.duration,
                repeats,
                workers=parallel_workers,
            )
        pre = PRE_PR_BASELINE.get(name)
        if pre:
            entry["speedup_vs_pre_pr"] = round(
                streaming["items_per_s"] / pre["items_per_s"], 2
            )
        report["scenarios"][name] = entry
    return report


def check_columnar_gate(report: Dict[str, Any], min_speedup: float) -> int:
    """CI gate for the columnar accelerator.

    Metrics identity is a correctness property and is enforced
    unconditionally; the speedup floor is a performance property and —
    like the bench-parallel gate — self-disarms on starved hosts
    (``cpu_count < 2``), where timing ratios are noise.
    """
    failures: List[str] = []
    enforce_speed = report.get("cpu_count", 1) >= 2
    if not enforce_speed:
        print(
            f"columnar speedup gate skipped (cpu_count="
            f"{report.get('cpu_count')}); identity gate still enforced"
        )
    for name, entry in report["scenarios"].items():
        if "columnar_identical" not in entry:
            continue
        if not entry["columnar_identical"]:
            failures.append(f"{name}: columnar RunMetrics diverged from tree")
        speedup = entry.get("columnar_speedup", 0.0)
        if enforce_speed and speedup < min_speedup:
            failures.append(
                f"{name}: columnar speedup {speedup:.2f}x is below the "
                f"{min_speedup:.2f}x floor"
            )
    for failure in failures:
        print(f"GATE FAILURE: {failure}", file=sys.stderr)
    return 1 if failures else 0


def check_regression(
    report: Dict[str, Any], baseline_path: str, tolerance: float
) -> int:
    """Compare streaming items/s against a committed baseline report.

    Returns a process exit code: 1 if any common scenario regressed by
    more than ``tolerance`` (fraction), else 0.
    """
    with open(baseline_path, "r", encoding="utf-8") as handle:
        baseline = json.load(handle)
    failures: List[str] = []
    for name, entry in report["scenarios"].items():
        reference = baseline.get("scenarios", {}).get(name)
        if not reference:
            continue
        current = entry["streaming"]["items_per_s"]
        committed = reference["streaming"]["items_per_s"]
        floor = committed * (1.0 - tolerance)
        status = "ok" if current >= floor else "REGRESSION"
        print(
            f"{name}: {current:.1f} items/s vs baseline {committed:.1f} "
            f"(floor {floor:.1f}) {status}"
        )
        if current < floor:
            failures.append(name)
    if failures:
        print(f"regressed scenarios: {', '.join(failures)}", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.micro", description=__doc__
    )
    parser.add_argument(
        "--scenario",
        choices=[*SCENARIOS, "all"],
        default="all",
        help="which scenario(s) to run (default: all)",
    )
    parser.add_argument(
        "--out", default="BENCH_PR2.json", help="report output path"
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="timing repeats (best-of)"
    )
    parser.add_argument(
        "--parallel-workers",
        type=int,
        default=0,
        metavar="N",
        help="also measure the sharded executor with N worker cells "
        "(reports peak live items per shard, not summed)",
    )
    parser.add_argument(
        "--columnar",
        action="store_true",
        help="also measure the streaming executor in tree (REPRO_COLUMNAR"
        "=off) vs columnar (=on) mode, verify RunMetrics identity and "
        "record the columnar_speedup per scenario",
    )
    parser.add_argument(
        "--min-columnar-speedup",
        type=float,
        default=0.0,
        metavar="X",
        help="with --columnar: exit 1 when identity breaks, or (on >=2 "
        "cores) when a scenario's columnar speedup falls below X",
    )
    parser.add_argument(
        "--check",
        metavar="BASELINE",
        help="compare against a committed baseline report; exit 1 on "
        "a throughput regression beyond --tolerance",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.30,
        help="allowed fractional items/s regression for --check (default 0.30)",
    )
    options = parser.parse_args(argv)

    names = list(SCENARIOS) if options.scenario == "all" else [options.scenario]
    report = run_benchmark(
        names,
        repeats=options.repeats,
        parallel_workers=options.parallel_workers,
        columnar=options.columnar,
    )
    with open(options.out, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for name, entry in report["scenarios"].items():
        streaming = entry["streaming"]
        materializing = entry["materializing"]
        print(
            f"{name}: streaming {streaming['items_per_s']:.1f} items/s "
            f"(peak {streaming['peak_live_items']} live items) | "
            f"materializing {materializing['items_per_s']:.1f} items/s "
            f"(peak {materializing['peak_live_items']})"
        )
        if "columnar_speedup" in entry:
            tree = entry["streaming_tree"]
            fast = entry["streaming_columnar"]
            ident = "identical" if entry["columnar_identical"] else "DIVERGED"
            print(
                f"{name}: columnar {fast['items_per_s']:.1f} items/s vs "
                f"tree {tree['items_per_s']:.1f} items/s "
                f"(x{entry['columnar_speedup']}) metrics {ident}"
            )
        parallel = entry.get("streaming_parallel")
        if parallel:
            shards = ", ".join(
                f"{cell}:{peak}"
                for cell, peak in parallel["peak_live_items_per_shard"].items()
            )
            print(
                f"{name}: parallel[{parallel['cells']}x{parallel['mode']}] "
                f"{parallel['items_per_s']:.1f} items/s "
                f"(peak per shard {shards})"
            )
    print(f"report written to {options.out}")
    if options.columnar and options.min_columnar_speedup > 0:
        code = check_columnar_gate(report, options.min_columnar_speedup)
        if code:
            return code
    if options.check:
        return check_regression(report, options.check, options.tolerance)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
