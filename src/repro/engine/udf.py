"""User-defined operators (Algorithm 2's "unknown operators" case).

The paper requires nothing of unknown operators except *determinism*:
"the same operator applied to the same inputs must always yield the
same result" — then two streams produced by the same operator with the
same input vector are interchangeable.  The matching side lives in
:class:`repro.properties.model.UdfSpec`; this module provides the
execution side:

* a process-wide :class:`UdfRegistry` mapping operator names to Python
  callables ``(item, *parameters) -> list[item]``;
* :class:`UdfOperator`, the pipeline stage executing a
  :class:`~repro.properties.model.UdfSpec`.

UDF streams enter the network through
:meth:`repro.sharing.system.StreamGlobe.install_derived_stream` — the
subscription *language* cannot express UDFs (they are outside
Definition 2.1), matching how StreamGlobe treated them as
administratively deployed operators.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..properties import UdfSpec
from ..xmlkit import Element
from .operators import EngineError, Operator

#: A user-defined transform: one input item to zero or more output items.
UdfFunction = Callable[..., List[Element]]


class UdfRegistry:
    """Named registry of deterministic user-defined operators."""

    def __init__(self) -> None:
        self._functions: Dict[str, UdfFunction] = {}

    def register(self, name: str, function: UdfFunction) -> None:
        """Register ``function`` under ``name``.

        The function must be deterministic; the sharing algorithms rely
        on it (Section 3.3's only requirement on unknown operators).
        """
        if name in self._functions:
            raise EngineError(f"UDF {name!r} already registered")
        self._functions[name] = function

    def resolve(self, name: str) -> UdfFunction:
        try:
            return self._functions[name]
        except KeyError:
            raise EngineError(f"unknown UDF {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._functions

    def names(self) -> List[str]:
        return list(self._functions)


#: The default process-wide registry used by the operator factory.
DEFAULT_UDF_REGISTRY = UdfRegistry()


class UdfOperator(Operator):
    """Pipeline stage executing a registered user-defined operator."""

    kind = "udf"

    def __init__(self, spec: UdfSpec, registry: UdfRegistry = DEFAULT_UDF_REGISTRY) -> None:
        self.spec = spec
        self._function = registry.resolve(spec.name)

    def process(self, item: Element) -> List[Element]:
        out = self._function(item, *self.spec.parameters)
        if not isinstance(out, list):
            raise EngineError(
                f"UDF {self.spec.name!r} must return a list of elements"
            )
        return out


def clear_default_registry() -> None:
    """Reset the default registry (test isolation helper)."""
    DEFAULT_UDF_REGISTRY._functions.clear()
