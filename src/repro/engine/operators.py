"""Operator base class and the factory that builds executable operators
from the operator *specs* stored in properties and plans.

Every operator is a push-based transformer: ``process(item)`` consumes
one input item and returns zero or more output items.  ``flush()``
drains any end-of-stream state (open windows are *not* flushed by
default — continuous queries never see end-of-stream; the executor only
calls ``flush`` when a benchmark explicitly asks for drained state).

Work accounting: the executor charges ``base_load(op.kind) · pindex``
work units per *input* item, which is exactly the cost model's
``load(o, v, P_o)`` integrated over the run (Section 3.2) — estimation
and measurement share one constant table.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Union

from ..properties import (
    AggregationSpec,
    OperatorSpec,
    ProjectionSpec,
    ReAggregationSpec,
    RestructureSpec,
    SelectionSpec,
    UdfSpec,
    WindowContentsSpec,
)
from ..xmlkit import Element, Path

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .columnar import ColumnBatch


class Operator:
    """Base push operator; subclasses set ``kind`` and override hooks."""

    kind: str = "abstract"

    #: ``True`` when the subclass implements :meth:`process_columns`;
    #: the trie/pipeline dispatch on this flag (one attribute read)
    #: instead of ``hasattr`` per batch.  Operators without a kernel
    #: receive decoded trees from the caller.
    columnar: bool = False

    def process(self, item: Element) -> List[Element]:
        """Consume one item; return the produced items (possibly none)."""
        raise NotImplementedError

    def process_columns(
        self, batch: "ColumnBatch"
    ) -> Union[List[Element], "ColumnBatch"]:
        """Consume a column batch (only when ``columnar`` is ``True``).

        Must be observationally identical to calling :meth:`process`
        on every decoded row in order — same outputs, same operator
        state afterwards — so tree and columnar batches can interleave
        freely on one operator instance (fallback boundaries).
        """
        raise NotImplementedError

    def flush(self) -> List[Element]:
        """Drain remaining state at explicit end-of-stream (default: none)."""
        return []

    def __repr__(self) -> str:
        return f"<{type(self).__name__} kind={self.kind}>"


class EngineError(Exception):
    """Raised for malformed items or spec/engine mismatches."""


def build_operator(spec: OperatorSpec, item_path: Path, restructurer=None) -> Operator:
    """Instantiate the executable operator for a spec.

    ``restructurer`` must be supplied for :class:`RestructureSpec`
    (it carries the analyzed query the post-processing step evaluates).
    """
    from .aggregate import ReAggregateOperator, WindowAggregateOperator
    from .project import ProjectOperator
    from .restructure import RestructureOperator
    from .select import SelectOperator
    from .window import WindowContentsOperator

    if isinstance(spec, SelectionSpec):
        return SelectOperator(spec.graph, item_path)
    if isinstance(spec, ProjectionSpec):
        return ProjectOperator(spec.output_elements, item_path)
    if isinstance(spec, AggregationSpec):
        return WindowAggregateOperator(spec, item_path)
    if isinstance(spec, ReAggregationSpec):
        return ReAggregateOperator(spec)
    if isinstance(spec, WindowContentsSpec):
        return WindowContentsOperator(spec, item_path)
    if isinstance(spec, UdfSpec):
        from .udf import UdfOperator

        return UdfOperator(spec)
    if isinstance(spec, RestructureSpec):
        if restructurer is None:
            raise EngineError(
                f"restructure operator for {spec.query_name!r} needs a restructurer"
            )
        return RestructureOperator(restructurer)
    raise EngineError(f"no executable operator for spec {spec!r}")
