"""Metrics replay: turn accumulated executor counters into RunMetrics.

The streaming executor never accounts during the hot pump loop — it
accumulates plain integer counters (items produced, bytes produced,
per-stage billed inputs) and *replays* them into a
:class:`~repro.engine.metrics.RunMetrics` on demand.  This module is
that replay, factored out of :class:`~repro.engine.executor
.StreamSimulator` so the sharded executor
(:mod:`repro.engine.parallel`) can merge per-worker counter states and
replay them through the *same* code path: equal counters in, equal
floating-point accumulation order through, byte-identical metrics out.

The replay order is part of the contract (floating-point addition does
not commute):

1. streams retired by plan repair, in retirement order;
2. live streams, parents before children (Kahn order);
3. subscription post-processing, in query registration order.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..costmodel import base_load
from ..network.topology import Network
from .metrics import RunMetrics

if TYPE_CHECKING:  # avoid a runtime cycle with repro.sharing
    from ..sharing.plan import InstalledStream, RegisteredQuery

__all__ = [
    "DeliveryCounters",
    "RetiredSnapshot",
    "StreamCounters",
    "replay_metrics",
]

#: ``(operator kind, udf name, billed input count)`` per pipeline stage.
StageCount = Tuple[str, Optional[str], int]


class StreamCounters:
    """The accumulated counters of one live stream."""

    __slots__ = (
        "produced_count",
        "produced_bytes",
        "duplicate_base",
        "stage_counts",
        "repair_added",
    )

    def __init__(
        self,
        produced_count: int = 0,
        produced_bytes: int = 0,
        duplicate_base: int = 0,
        stage_counts: Sequence[StageCount] = (),
        repair_added: bool = False,
    ) -> None:
        self.produced_count = produced_count
        self.produced_bytes = produced_bytes
        #: Parent items produced before this node attached (mid-run
        #: attachments duplicate only post-attach parent items).
        self.duplicate_base = duplicate_base
        self.stage_counts = list(stage_counts)
        #: Created by plan repair — its traffic is re-routing overhead.
        self.repair_added = repair_added


class RetiredSnapshot:
    """Accounting snapshot of a stream node retired by plan repair.

    Shared-prefix stages keep accumulating for surviving siblings after
    a retirement, so the retired stream's stage input counts must be
    pinned at the moment it detaches.
    """

    __slots__ = (
        "stream",
        "produced_count",
        "produced_bytes",
        "duplicate_count",
        "stage_counts",
        "repair_added",
    )

    def __init__(
        self,
        stream: "InstalledStream",
        produced_count: int,
        produced_bytes: int,
        duplicate_count: int,
        stage_counts: List[StageCount],
        repair_added: bool,
    ) -> None:
        self.stream = stream
        self.produced_count = produced_count
        self.produced_bytes = produced_bytes
        self.duplicate_count = duplicate_count
        self.stage_counts = stage_counts
        self.repair_added = repair_added


class DeliveryCounters:
    """The accumulated counters of one subscription's delivery step.

    ``record`` is the query's *accounting* record: the registration the
    delivery object was last attached under (repairs swap it; parked
    subscriptions keep their pre-fault record so their pre-fault work
    still bills at the right subscriber).
    """

    __slots__ = ("record", "multi", "inputs", "results")

    def __init__(
        self, record: "RegisteredQuery", multi: bool, inputs: int, results: int
    ) -> None:
        self.record = record
        self.multi = multi
        #: Multi-input: total buffered items over all inputs.  Single:
        #: items fed to the restructurer (per delivered entry).
        self.inputs = inputs
        self.results = results


def replay_metrics(
    net: Network,
    duration: float,
    order: Sequence["InstalledStream"],
    counters: Dict[str, StreamCounters],
    retired: Sequence[RetiredSnapshot],
    deliveries: Sequence[DeliveryCounters],
    faults_applied: int = 0,
    items_lost: int = 0,
    items_lost_by_query: Optional[Dict[str, int]] = None,
    recovery_time_s: float = 0.0,
    queries_repaired: int = 0,
    queries_lost: int = 0,
    migrations_applied: int = 0,
    migration_downtime_epochs: int = 0,
) -> RunMetrics:
    """Replay accumulated counters into :class:`RunMetrics`.

    The accumulation order matches the materializing executor exactly,
    so fault-free runs produce floating-point-identical metrics — and
    the sharded executor, replaying merged worker counters through this
    same function, matches the sequential executor bit for bit.

    Peer and link lookups include removed topology entities, since
    retired routes may cross a crashed peer.
    """
    metrics = RunMetrics(duration=duration)
    for snapshot in retired:
        _account_retired(net, snapshot, metrics)
    for stream in order:
        state = counters[stream.stream_id]
        peer = net.super_peer(stream.origin_node, include_removed=True)
        if stream.is_original:
            metrics.count_generated(stream.stream_id, state.produced_count)
            ingest = base_load("ingest") * peer.pindex
            metrics.add_peer_work(stream.origin_node, ingest * state.produced_count)
        else:
            assert stream.parent_id is not None
            parent_count = (
                counters[stream.parent_id].produced_count - state.duplicate_base
            )
            duplicate = base_load("duplicate") * peer.pindex
            metrics.add_peer_work(stream.origin_node, duplicate * parent_count)
            for kind, udf_name, inputs in state.stage_counts:
                work = base_load(kind, udf_name) * peer.pindex * inputs
                metrics.add_peer_work(stream.origin_node, work)
        _account_transport(
            net,
            stream,
            state.produced_count,
            state.produced_bytes,
            state.repair_added,
            metrics,
        )
    for delivery in deliveries:
        record = delivery.record
        peer = net.super_peer(record.subscriber_node, include_removed=True)
        work_per_item = base_load("restructure") * peer.pindex
        if delivery.multi:
            metrics.add_peer_work(
                record.subscriber_node, work_per_item * delivery.inputs
            )
            metrics.count_delivery(record.name, delivery.results)
            continue
        for _ in record.delivered:
            metrics.add_peer_work(
                record.subscriber_node, work_per_item * delivery.inputs
            )
            metrics.count_delivery(record.name, delivery.results)
    metrics.faults_applied = faults_applied
    metrics.items_lost = items_lost
    # Sorted so the insertion order is identical no matter which
    # executor (or cell merge order) accumulated the dict.
    metrics.items_lost_by_query = {
        name: lost
        for name, lost in sorted((items_lost_by_query or {}).items())
        if lost
    }
    metrics.recovery_time_s = recovery_time_s
    metrics.queries_repaired = queries_repaired
    metrics.queries_lost = queries_lost
    metrics.migrations_applied = migrations_applied
    metrics.migration_downtime_epochs = migration_downtime_epochs
    return metrics


def _account_retired(
    net: Network, retired: RetiredSnapshot, metrics: RunMetrics
) -> None:
    stream = retired.stream
    peer = net.super_peer(stream.origin_node, include_removed=True)
    if stream.is_original:
        metrics.count_generated(stream.stream_id, retired.produced_count)
        ingest = base_load("ingest") * peer.pindex
        metrics.add_peer_work(stream.origin_node, ingest * retired.produced_count)
    else:
        duplicate = base_load("duplicate") * peer.pindex
        metrics.add_peer_work(
            stream.origin_node, duplicate * retired.duplicate_count
        )
        for kind, udf_name, inputs in retired.stage_counts:
            work = base_load(kind, udf_name) * peer.pindex * inputs
            metrics.add_peer_work(stream.origin_node, work)
    _account_transport(
        net,
        stream,
        retired.produced_count,
        retired.produced_bytes,
        retired.repair_added,
        metrics,
    )


def _account_transport(
    net: Network,
    stream: "InstalledStream",
    produced_count: int,
    produced_bytes: int,
    repair_added: bool,
    metrics: RunMetrics,
) -> None:
    hops = stream.links()
    if not hops or not produced_count:
        return
    total_bits = float(produced_bytes * 8)
    for a, b in hops:
        metrics.add_link_bits(net.link(a, b, include_removed=True), total_bits)
    # Forwarding work: the sender side of every hop touches each item.
    for sender, _ in hops:
        sender_peer = net.super_peer(sender, include_removed=True)
        work = base_load("transfer") * sender_peer.pindex * produced_count
        metrics.add_peer_work(sender, work)
    if repair_added:
        metrics.rerouted_traffic_bits += total_bits * len(hops)
