"""Operator pipelines: ordered operator chains with work accounting."""

from __future__ import annotations

import pickle
from time import perf_counter
from typing import Callable, List, Optional, Sequence, Tuple

from ..properties import OperatorSpec
from ..xmlkit import Element, Path
from .columnar import (
    AUTO_MIN_ROWS,
    Batch,
    ColumnBatch,
    apply_operator,
    columnar_mode,
    encode_batch,
)
from .operators import Operator, build_operator
from .restructure import Restructurer


class Pipeline:
    """A chain of push operators installed at one super-peer.

    ``process_batch`` folds a batch of input items through every stage;
    per-stage input counts are tracked so the executor can charge each
    operator's work exactly as the cost model defines it (base load ×
    inputs).  Stage-wise batch evaluation is observationally identical
    to pushing items one by one: every operator sees the same input
    sequence in the same order, so deterministic (possibly stateful)
    operators reach the same state and emit the same outputs.

    End-of-stream semantics: the executor never calls :meth:`flush` —
    subscriptions are *continuous* queries over unbounded streams, so a
    run's horizon is a measurement window, not an end-of-stream marker;
    flushing would emit partial windows the infinite stream never
    produces (see DESIGN.md §7).  ``flush`` exists for explicit drains
    in tests and tools.
    """

    def __init__(self, operators: Sequence[Operator]) -> None:
        self.operators: List[Operator] = list(operators)
        self.input_counts: List[int] = [0] * len(self.operators)
        #: Build recipe, remembered by :meth:`from_specs` so a compiled
        #: pipeline can cross a process boundary (see ``__reduce__``).
        self._specs: Optional[Tuple[OperatorSpec, ...]] = None
        self._item_path: Optional[Path] = None
        self._restructurer: Optional[Restructurer] = None

    @classmethod
    def from_specs(
        cls,
        specs: Sequence[OperatorSpec],
        item_path: Path,
        restructurer: Optional[Restructurer] = None,
    ) -> "Pipeline":
        pipeline = cls(
            [build_operator(spec, item_path, restructurer) for spec in specs]
        )
        pipeline._specs = tuple(specs)
        pipeline._item_path = item_path
        pipeline._restructurer = restructurer
        return pipeline

    def __reduce__(self) -> tuple:
        """Pickle as the build recipe, not the compiled closures.

        Unpickling recompiles every operator with *fresh* state — the
        same recovery-restart semantics plan repair gives re-created
        pipelines; window contents and input counts do not migrate.
        Only :meth:`from_specs` pipelines know their recipe."""
        if self._specs is None:
            raise pickle.PicklingError(
                "only Pipeline.from_specs pipelines can be pickled"
            )
        return (
            Pipeline.from_specs,
            (self._specs, self._item_path, self._restructurer),
        )

    def process(self, item: Element) -> List[Element]:
        return self.process_batch((item,))

    def process_batch(
        self,
        items: Batch,
        timer: Optional[Callable[[Operator, int, float], None]] = None,
    ) -> List[Element]:
        """Fold ``items`` through every stage.

        ``timer``, when given, observes ``(operator, input_count,
        wall_seconds)`` per evaluated stage — same contract as the
        shared-prefix trie's timer; the disabled path is one ``None``
        check per stage.

        When ``REPRO_COLUMNAR`` permits it and the batch is regular,
        the fold runs over a :class:`ColumnBatch`; stages without a
        columnar kernel see decoded trees, and the return value is
        always a plain element list (decoded at the boundary), so the
        public contract — outputs, per-stage ``input_counts`` — is
        unchanged bit for bit.
        """
        batch: Batch = list(items) if not isinstance(items, ColumnBatch) else items
        if not isinstance(batch, ColumnBatch):
            mode = columnar_mode()
            if (
                mode != "off"
                and (mode == "on" or len(batch) >= AUTO_MIN_ROWS)
                and any(operator.columnar for operator in self.operators)
            ):
                batch = encode_batch(batch)
        for index, operator in enumerate(self.operators):
            if not batch:
                break
            self.input_counts[index] += len(batch)
            if timer is None:
                batch = apply_operator(operator, batch)
            else:
                inputs = len(batch)
                start = perf_counter()
                batch = apply_operator(operator, batch)
                timer(operator, inputs, perf_counter() - start)
        if isinstance(batch, ColumnBatch):
            return list(batch.decode())
        return batch

    def flush(self) -> List[Element]:
        """Drain stage state front-to-back (explicit end-of-stream)."""
        batch: List[Element] = []
        for index, operator in enumerate(self.operators):
            drained = operator.flush()
            next_batch: List[Element] = []
            for current in batch:
                self.input_counts[index] += 1
                next_batch.extend(operator.process(current))
            batch = next_batch + drained
        return batch

    def __len__(self) -> int:
        return len(self.operators)

    def __iter__(self):
        return iter(self.operators)
