"""Operator pipelines: ordered operator chains with work accounting."""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..properties import OperatorSpec
from ..xmlkit import Element, Path
from .operators import Operator, build_operator
from .restructure import Restructurer


class Pipeline:
    """A chain of push operators installed at one super-peer.

    ``process`` folds one input item through every stage; per-stage
    input counts are tracked so the executor can charge each operator's
    work exactly as the cost model defines it (base load × inputs).
    """

    def __init__(self, operators: Sequence[Operator]) -> None:
        self.operators: List[Operator] = list(operators)
        self.input_counts: List[int] = [0] * len(self.operators)

    @classmethod
    def from_specs(
        cls,
        specs: Sequence[OperatorSpec],
        item_path: Path,
        restructurer: Optional[Restructurer] = None,
    ) -> "Pipeline":
        return cls(
            [build_operator(spec, item_path, restructurer) for spec in specs]
        )

    def process(self, item: Element) -> List[Element]:
        batch = [item]
        for index, operator in enumerate(self.operators):
            self.input_counts[index] += len(batch)
            next_batch: List[Element] = []
            for current in batch:
                next_batch.extend(operator.process(current))
            batch = next_batch
            if not batch:
                break
        return batch

    def flush(self) -> List[Element]:
        """Drain stage state front-to-back (explicit end-of-stream)."""
        batch: List[Element] = []
        for index, operator in enumerate(self.operators):
            drained = operator.flush()
            next_batch: List[Element] = []
            for current in batch:
                self.input_counts[index] += 1
                next_batch.extend(operator.process(current))
            batch = next_batch + drained
        return batch

    def __len__(self) -> int:
        return len(self.operators)

    def __iter__(self):
        return iter(self.operators)
