"""Shared-prefix evaluation of sibling operator pipelines.

When several derived streams tap the same parent with a common
operator-spec prefix (same item path, equal leading specs), the prefix
computes identical outputs for every sibling: all engine operators are
deterministic push transformers (the paper demands determinism even of
*unknown* operators, Section 3.3), so equal input sequences yield equal
states and equal outputs.  :class:`PrefixTree` merges such pipelines
into a trie of :class:`PrefixStage` nodes and evaluates each shared
stage once per input batch, fanning the outputs out to every consumer.

Work accounting is **not** shared: the cost model charges every
installed stream for its own operators (base load × inputs), so each
stage records its input count and the executor bills it once per
stream whose pipeline runs through the stage — the measured CPU load
stays exactly what per-stream evaluation would have charged, only the
wall-clock work is deduplicated.
"""

from __future__ import annotations

from time import perf_counter
from typing import Callable, List, Optional, Sequence, Tuple

from ..properties import OperatorSpec
from ..xmlkit import Element, Path
from .columnar import Batch, ColumnBatch, apply_operator
from .operators import Operator, build_operator


class _Gauge:
    """Tracks the number of in-flight items (peak-memory telemetry).

    ``peak`` is the all-run maximum; ``window_peak`` is the maximum
    since the last :meth:`take_window_peak` — the per-epoch queue-depth
    series the observability layer samples at epoch boundaries.
    """

    __slots__ = ("current", "peak", "window_peak")

    def __init__(self) -> None:
        self.current = 0
        self.peak = 0
        self.window_peak = 0

    def add(self, count: int) -> None:
        self.current += count
        if self.current > self.peak:
            self.peak = self.current
        if self.current > self.window_peak:
            self.window_peak = self.current

    def sub(self, count: int) -> None:
        self.current -= count

    def take_window_peak(self) -> int:
        """Return the peak since the last call and reset the window."""
        peak = self.window_peak
        self.window_peak = self.current
        return peak


class PrefixStage:
    """One operator stage in the shared-prefix trie.

    ``streams`` lists the ids of the installed streams whose pipeline
    ends exactly at this stage; ``input_count`` accumulates the number
    of items the stage consumed (identical to what each sharing
    stream's own pipeline stage would have counted).
    """

    __slots__ = ("spec", "operator", "input_count", "children", "streams")

    def __init__(self, spec: OperatorSpec, operator: Operator) -> None:
        self.spec = spec
        self.operator = operator
        self.input_count = 0
        self.children: List["PrefixStage"] = []
        self.streams: List[str] = []

    def __repr__(self) -> str:
        return (
            f"<PrefixStage {self.operator.kind} terminals={self.streams!r} "
            f"children={len(self.children)}>"
        )


class PrefixTree:
    """The merged pipelines of all siblings sharing one item path."""

    def __init__(self, item_path: Path) -> None:
        self.item_path = item_path
        self.roots: List[PrefixStage] = []

    def add(
        self, stream_id: str, specs: Sequence[OperatorSpec]
    ) -> List[PrefixStage]:
        """Merge one stream's pipeline into the trie.

        Returns the stage path the stream runs through, for per-stream
        work accounting.  ``specs`` must be non-empty (relay streams
        have no pipeline and bypass the trie entirely).
        """
        if not specs:
            raise ValueError(f"stream {stream_id!r}: empty pipeline has no stages")
        level = self.roots
        path: List[PrefixStage] = []
        for spec in specs:
            stage = next((node for node in level if node.spec == spec), None)
            if stage is None:
                stage = PrefixStage(spec, build_operator(spec, self.item_path))
                level.append(stage)
            path.append(stage)
            level = stage.children
        path[-1].streams.append(stream_id)
        return path

    def stage_count(self) -> int:
        """Number of distinct stages (operator instances) in the trie."""
        count = 0
        frontier = list(self.roots)
        while frontier:
            stage = frontier.pop()
            count += 1
            frontier.extend(stage.children)
        return count

    # ------------------------------------------------------------------
    def evaluate(
        self,
        batch: Batch,
        emit: Callable[[str, Batch], None],
        gauge: Optional[_Gauge] = None,
        timer: Optional[Callable[[PrefixStage, int, float], None]] = None,
    ) -> None:
        """Push one input batch through every stage exactly once.

        ``emit(stream_id, outputs)`` is invoked for every terminal
        stream, with tree outputs already frozen (size-pinned) for
        cheap transport accounting; column-batch outputs keep their
        size columns instead.  Empty batches short-circuit without
        touching operator state, matching per-stream pipelines which
        never call an operator on an empty batch.  ``timer``, when
        given, observes ``(stage, input_count, wall_seconds)`` per
        evaluated stage — the disabled path costs one ``None`` check.
        """
        for root in self.roots:
            self._evaluate(root, batch, emit, gauge, timer)

    def _evaluate(
        self,
        stage: PrefixStage,
        batch: Batch,
        emit: Callable[[str, Batch], None],
        gauge: Optional[_Gauge],
        timer: Optional[Callable[[PrefixStage, int, float], None]] = None,
    ) -> None:
        if not batch:
            return
        stage.input_count += len(batch)
        if timer is None:
            out = apply_operator(stage.operator, batch)
        else:
            start = perf_counter()
            out = apply_operator(stage.operator, batch)
            timer(stage, len(batch), perf_counter() - start)
        if not isinstance(out, ColumnBatch):
            for produced in out:
                produced.freeze()
        if gauge is not None:
            gauge.add(len(out))
        for stream_id in stage.streams:
            emit(stream_id, out)
        for child in stage.children:
            self._evaluate(child, out, emit, gauge, timer)
        if gauge is not None:
            gauge.sub(len(out))


def group_pipelines(
    entries: Sequence[Tuple[str, Path, Sequence[OperatorSpec]]],
) -> List[Tuple[Path, PrefixTree, dict]]:
    """Build one :class:`PrefixTree` per distinct item path.

    ``entries`` are ``(stream_id, item_path, specs)`` triples for the
    non-relay children of one parent stream.  Returns
    ``(item_path, tree, {stream_id: stage_path})`` groups; streams with
    different item paths never share stages (their operators navigate
    relative to different item roots).
    """
    groups: List[Tuple[Path, PrefixTree, dict]] = []
    for stream_id, item_path, specs in entries:
        group = next((g for g in groups if g[0] == item_path), None)
        if group is None:
            group = (item_path, PrefixTree(item_path), {})
            groups.append(group)
        group[2][stream_id] = group[1].add(stream_id, specs)
    return groups
