"""The measured stream execution: pump generated items through every
installed stream of a :class:`~repro.sharing.plan.Deployment` and count
real serialized bytes per link and real operator work per peer.

This is the reproduction's stand-in for the paper's blade cluster (see
DESIGN.md): the figures' CPU-load and network-traffic series are
*measurements* of this simulation, while the optimizer only ever sees
the cost model's estimates — exactly the estimate/measure split of the
original system.

Two executors are provided:

* :class:`StreamSimulator` — the production executor: a single-pass,
  generator-driven streaming engine.  Source items are pumped through
  the deployment DAG depth-first in small batches, so peak memory is
  O(window state + one batch) instead of O(all items × all streams);
  items are size-frozen at ingest (relays charge bytes without
  re-walking subtrees) and sibling pipelines with a common operator
  prefix are evaluated once (:mod:`repro.engine.fanout`).
* :class:`MaterializingSimulator` — the original per-stream
  materializing executor, kept as the correctness oracle: the golden
  equivalence test pins that both produce identical
  :class:`~repro.engine.metrics.RunMetrics` on every built-in scenario.

End-of-stream: neither executor flushes pipelines.  Subscriptions are
continuous queries over unbounded streams; a run's ``duration`` is a
measurement horizon, not an end-of-stream marker, so partially filled
windows stay open exactly as they would in the live system (DESIGN.md
§7).  :meth:`Pipeline.flush` remains available for explicit drains.

Churn: :class:`StreamSimulator` optionally executes a
:class:`~repro.faults.FaultSchedule`.  The run is split into epochs at
the scheduled fault times (plus each fault's recovery completion);
between epochs the fault mutates the topology, the supplied ``repair``
callback rebuilds the deployment, and the executor *reconciles* its
running plan with the repaired one — retiring removed streams (their
counters are snapshotted for accounting), attaching repair-created
streams with fresh operator state (recovery restarts window state,
DESIGN.md §8), and re-wiring subscriptions whose delivery chain was
rebuilt.  Unaffected streams keep their operator state and their
delivery continuity, so their output is identical to a fault-free run.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
)

from ..costmodel import base_load
from ..network.topology import Network
from ..xmlkit import Element

if TYPE_CHECKING:  # avoid a runtime cycle with repro.sharing
    from ..faults.schedule import FaultSchedule
    from ..obs.slo import QuerySLO
    from ..sharing.plan import Deployment, InstalledStream, RegisteredQuery
from ..obs.recorder import NULL_RECORDER
from ..obs.timeseries import snapshot_delta
from .accounting import (
    DeliveryCounters,
    RetiredSnapshot,
    StreamCounters,
    replay_metrics,
)
from .columnar import (
    Batch,
    ColumnBatch,
    DeliveryKernel,
    batch_bytes,
    columnar_mode,
    columnar_stats,
    encode_ingest,
)
from .fanout import PrefixStage, PrefixTree, _Gauge, group_pipelines
from .metrics import RunMetrics
from .pipeline import Pipeline
from .restructure import Restructurer


class ItemGenerator(Protocol):
    """Anything that produces stream items on a virtual clock."""

    @property
    def clock(self) -> float: ...

    def next_item(self) -> Element: ...


class ExecutionError(Exception):
    """Raised for deployments the executor cannot run."""


# ----------------------------------------------------------------------
# Shared machinery
# ----------------------------------------------------------------------
def topological_streams(deployment: "Deployment") -> List["InstalledStream"]:
    """Parents before children (original streams first), via Kahn's
    algorithm specialized to the single-parent stream forest: every
    stream is enqueued exactly once, when its parent is placed — O(n)
    instead of the former O(n²) fixpoint loop."""
    streams = deployment.streams
    children: Dict[str, List["InstalledStream"]] = {}
    queue: deque = deque()
    for stream in streams.values():
        if stream.parent_id is None:
            queue.append(stream)
        else:
            children.setdefault(stream.parent_id, []).append(stream)
    ordered: List["InstalledStream"] = []
    placed: set = set()
    while queue:
        stream = queue.popleft()
        ordered.append(stream)
        placed.add(stream.stream_id)
        queue.extend(children.get(stream.stream_id, ()))
    if len(ordered) != len(streams):
        cycle = ", ".join(
            s.stream_id for s in streams.values() if s.stream_id not in placed
        )
        raise ExecutionError(f"stream dependency cycle: {cycle}")
    return ordered


def interleave_round_robin(
    per_stream: Sequence[Tuple[str, Sequence[Element]]],
) -> Iterator[Tuple[str, Element]]:
    """Deterministic round-robin interleave of several delivered streams.

    Yields ``(input_stream, item)``: round ``r`` visits every stream
    that still has an ``r``-th item, in the given stream order —
    uneven-length streams simply drop out of later rounds.
    """
    active = [
        (input_stream, iter(delivered)) for input_stream, delivered in per_stream
    ]
    while active:
        survivors: List[Tuple[str, Iterator[Element]]] = []
        for input_stream, iterator in active:
            try:
                item = next(iterator)
            except StopIteration:
                continue
            survivors.append((input_stream, iterator))
            yield input_stream, item
        active = survivors


# ----------------------------------------------------------------------
# Streaming executor internals
# ----------------------------------------------------------------------
class _SingleDelivery:
    """Incremental post-processing of a single-input subscription."""

    __slots__ = ("record", "restructurer", "inputs", "results", "capture", "_kernel")

    def __init__(
        self,
        record: "RegisteredQuery",
        capture: Optional[Callable[[str, Element], None]] = None,
    ) -> None:
        self.record = record
        self.restructurer = Restructurer(record.analyzed)
        self.inputs = 0
        self.results = 0
        self.capture = capture
        #: Lazily built column count kernel (capture-free feeds only).
        self._kernel: Optional[DeliveryKernel] = None

    def feed(self, batch: Batch) -> None:
        self.inputs += len(batch)
        build = self.restructurer.build
        capture = self.capture
        if isinstance(batch, ColumnBatch):
            if capture is None:
                # Count-only delivery: the kernel counts restructured
                # results per shape without building the trees; it
                # vouches for exactness or returns None (then decode
                # and take the per-item path below).
                kernel = self._kernel
                if kernel is None:
                    kernel = self._kernel = DeliveryKernel(self.restructurer)
                count = kernel.count(batch)
                if count is not None:
                    self.results += count
                    return
            batch = batch.decode()
        if capture is None:
            for item in batch:
                self.results += len(build(item))
            return
        name = self.record.name
        for item in batch:
            out = build(item)
            self.results += len(out)
            for produced in out:
                capture(name, produced)


class _MultiDelivery:
    """Buffered post-processing of a multi-input subscription.

    The round-robin interleave pairs the ``r``-th items of every input,
    which is only known once all inputs finished — so multi-input
    subscriptions are the one place the streaming executor buffers
    whole streams (delivered, post-compensation items only; bounded by
    the subscription's own delivery rate, not the source rate).
    """

    __slots__ = ("record", "buffers", "gauge", "results", "total_inputs", "capture")

    def __init__(
        self,
        record: "RegisteredQuery",
        gauge: _Gauge,
        capture: Optional[Callable[[str, Element], None]] = None,
    ) -> None:
        self.record = record
        self.buffers: List[List[Element]] = [[] for _ in record.delivered]
        self.gauge = gauge
        self.results = 0
        self.total_inputs = 0
        self.capture = capture

    def feed(self, index: int, batch: Batch) -> None:
        if isinstance(batch, ColumnBatch):
            # Combination interleaves whole buffered streams item by
            # item — a genuine tree boundary.
            batch = batch.decode()
        self.buffers[index].extend(batch)
        self.gauge.add(len(batch))

    def finish(self) -> None:
        from .combine import LatestValueCombiner

        self.total_inputs = sum(len(buffered) for buffered in self.buffers)
        combiner = LatestValueCombiner(self.record.analyzed)
        per_stream = [
            (input_stream, self.buffers[index])
            for index, (input_stream, _) in enumerate(self.record.delivered)
        ]
        name = self.record.name
        for input_stream, item in interleave_round_robin(per_stream):
            out = combiner.push(input_stream, item)
            self.results += len(out)
            if self.capture is not None:
                for produced in out:
                    self.capture(name, produced)
        self.gauge.sub(self.total_inputs)


class _StreamNode:
    """Per-stream runtime state of the streaming executor."""

    __slots__ = (
        "stream",
        "produced_count",
        "produced_bytes",
        "has_hops",
        "relay_children",
        "trie_groups",
        "stage_path",
        "deliveries",
        "duplicate_base",
        "repair_added",
    )

    def __init__(self, stream: "InstalledStream") -> None:
        self.stream = stream
        self.produced_count = 0
        self.produced_bytes = 0
        self.has_hops = len(stream.route) > 1
        #: Children with an empty pipeline: they forward items verbatim.
        self.relay_children: List["_StreamNode"] = []
        #: Non-relay children merged into shared-prefix tries.
        self.trie_groups: List[Tuple[object, PrefixTree, dict]] = []
        #: This stream's own stage path inside its parent's trie.
        self.stage_path: List[PrefixStage] = []
        #: Subscription consumers fed with this stream's items.
        self.deliveries: List[Callable[[Batch], None]] = []
        #: Parent items produced before this node attached (mid-run
        #: attachments duplicate only post-attach parent items).
        self.duplicate_base = 0
        #: Created by plan repair — its traffic is re-routing overhead.
        self.repair_added = False


class _Gate:
    """Recovery gate on a repaired subscription's delivery feeds.

    While closed (re-registration still in progress in stream time),
    arriving items are dropped and counted as lost.
    """

    __slots__ = ("open", "open_at", "lost")

    def __init__(self, open_at: float) -> None:
        self.open = False
        self.open_at = open_at
        self.lost = 0


#: Retired-node accounting snapshots now live in ``repro.engine
#: .accounting`` so the sharded executor can ship them between
#: processes; the old private name stays as an alias.
_RetiredNode = RetiredSnapshot


def _prune_stages(stages: List[PrefixStage]) -> None:
    """Drop trie stages that feed no terminal stream and no child."""
    for stage in list(stages):
        _prune_stages(stage.children)
        if not stage.children and not stage.streams:
            stages.remove(stage)


class StreamSimulator:
    """Execute a deployment for a span of virtual time (single pass).

    Parameters
    ----------
    net:
        The super-peer topology (capacities, performance indices).
    deployment:
        The installed streams and registered queries to execute.
    generators:
        One :class:`ItemGenerator` per *original* stream id.
    duration:
        Virtual seconds of stream input to generate.
    max_items_per_source:
        Safety cap on generated items per source.
    batch_size:
        Items generated per pump through the DAG; bounds peak memory
        together with open window state.
    schedule:
        Optional :class:`~repro.faults.FaultSchedule`.  Events due
        before ``duration`` are applied at their stream times; later
        events never fire.  Topology and deployment mutations persist
        after the run.
    repair:
        Callback invoked after each applied fault, typically
        ``PlanRepairer.repair`` — called as ``repair(context=...)`` and
        returning a :class:`~repro.sharing.repair.RepairReport`.
        Without it the topology mutates but the deployment keeps
        running its pre-fault plan (for what-if measurements only).
    capture:
        Optional ``(query_name, result_item)`` hook observing every
        restructured result delivered to a subscriber — the golden
        fault-equivalence tests compare these item-for-item.
    recorder:
        Optional :class:`~repro.obs.Recorder`.  When enabled, the run
        is split into epochs (``epoch_samples`` fixed boundaries plus
        every fault/recovery boundary) and one
        :class:`~repro.obs.EpochSnapshot` per epoch is emitted, along
        with per-operator latency histograms and item counters.  The
        default is the shared no-op recorder: every instrumentation
        site then costs a single attribute or ``None`` check
        (DESIGN.md §10).
    epoch_samples:
        Number of evenly spaced time-series sampling boundaries a
        traced run is split into (faults add their own boundaries).
    rebalancer:
        Optional :class:`~repro.sharing.rebalance.Rebalancer`.  When
        given, the run always takes the epoch path and the rebalancer
        observes every mid-run epoch snapshot; when it migrates plans
        (tearing down and re-registering subscriptions working on a
        sustained-hot super-peer), the executor reconciles the running
        pipelines against the rewritten deployment exactly like churn
        repair — but with an already *open* delivery gate, since the
        epoch boundary is quiescent and the rewrite is make-before-
        break (``migration_downtime_epochs`` stays 0 and no items are
        lost; the conservation tests pin both).

    After :meth:`run`, ``peak_live_items`` holds the maximum number of
    stream items the executor held in flight at any moment — bounded by
    ``batch_size`` × DAG depth (plus multi-input delivery buffers),
    independent of ``duration``.
    """

    def __init__(
        self,
        net: Network,
        deployment: "Deployment",
        generators: Dict[str, ItemGenerator],
        duration: float,
        max_items_per_source: Optional[int] = None,
        batch_size: int = 64,
        schedule: Optional["FaultSchedule"] = None,
        repair: Optional[Callable[..., object]] = None,
        capture: Optional[Callable[[str, Element], None]] = None,
        recorder: Optional[object] = None,
        epoch_samples: int = 8,
        rebalancer: Optional[object] = None,
    ) -> None:
        if duration <= 0:
            raise ExecutionError("duration must be positive")
        if batch_size <= 0:
            raise ExecutionError("batch size must be positive")
        self.net = net
        self.deployment = deployment
        self.generators = generators
        self.duration = duration
        self.max_items = max_items_per_source
        self.batch_size = batch_size
        self.schedule = schedule
        self.repair = repair
        self.capture = capture
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.epoch_samples = epoch_samples
        self.rebalancer = rebalancer
        self.peak_live_items = 0
        #: Most recent per-query SLO records (refreshed at every epoch
        #: boundary and at run end — the live ``/slo.json`` source).
        self.last_query_slos: List["QuerySLO"] = []
        #: ``REPRO_COLUMNAR`` resolved once per simulator (forked cell
        #: runtimes inherit the environment, so shards agree).
        self._columnar_mode = columnar_mode()

    # ------------------------------------------------------------------
    def run(self) -> RunMetrics:
        order = self._topological_streams()
        self._feeds: Dict[str, List[Tuple[str, Callable]]] = {}
        nodes, singles, multis = self._build_plan(order)
        gauge = _Gauge()
        for delivery in multis.values():
            delivery.gauge = gauge  # buffered items count as in-flight
        self._gauge = gauge
        #: All deliveries in registration order — the accounting order,
        #: stable across repairs (queries re-registered by a repair keep
        #: their delivery object, and with it their position and their
        #: accumulated counters).
        self._deliveries: Dict[str, object] = {
            record.name: singles.get(record.name) or multis[record.name]
            for record in self.deployment.queries.values()
        }
        self._retired: List[_RetiredNode] = []
        self._gates: List[_Gate] = []
        self._sources = [s.stream_id for s in order if s.is_original]
        self._produced = {stream_id: 0 for stream_id in self._sources}
        self._faults_applied = 0
        self._source_items_lost = 0
        self._recovery_time_s = 0.0
        self._queries_repaired = 0
        self._migrations_applied = 0
        self._migration_downtime_epochs = 0
        self._migration_gates: List[_Gate] = []
        self._query_lost: Dict[str, int] = {}
        self._query_migrations: Dict[str, int] = {}
        self._backpressure_epochs = 0

        recorder = self.recorder
        self._epoch_index = 0
        self._epoch_start = 0.0
        self._last_metrics: Optional[RunMetrics] = None
        self._last_operator_totals: Optional[Dict[str, int]] = None
        self._op_timer = self._make_op_timer() if recorder.enabled else None
        columnar_base = columnar_stats() if recorder.enabled else None

        if self.schedule or recorder.enabled or self.rebalancer is not None:
            # Traced runs always take the epoch path: sources advance in
            # interleaved time slices so snapshots cut across the whole
            # deployment.  Per-stream results are unchanged — sources
            # are independent DAG roots, operators are deterministic,
            # and multi-input combination runs over the full buffers at
            # finish() — so metrics match the untraced single-pass run.
            # Rebalanced runs take it too: the drift detector consumes
            # the same epoch snapshots a traced run records.
            self._run_epochs(gauge)
        else:
            for stream in order:
                if stream.is_original:
                    self._pump_source(nodes[stream.stream_id], gauge, self.duration)
        for delivery in multis.values():
            delivery.finish()

        self.peak_live_items = gauge.peak
        metrics = self._account(self._topological_streams(), nodes)
        self.last_query_slos = self.query_slos()
        if recorder.enabled:
            # The final epoch is emitted after finish(): multi-input
            # subscriptions only restructure (and bill) their buffered
            # items there, so snapshotting at the duration boundary
            # would miss that work.
            self._emit_epoch(self.duration, metrics)
            recorder.set_gauge("exec.peak_live_items", gauge.peak)
            recorder.inc("exec.runs")
            for slo in self.last_query_slos:
                recorder.event("query.slo", **slo.to_dict())
            for peer, work in sorted(metrics.peer_work.items()):
                recorder.set_gauge(f"peer.work.{peer}", work)
            for (a, b), bits in sorted(metrics.link_bits.items()):
                recorder.set_gauge(f"link.bits.{a}-{b}", bits)
            if columnar_base is not None:
                # Process-wide counters: report this run's delta only.
                for key, value in columnar_stats().items():
                    delta = value - columnar_base[key]
                    if delta:
                        recorder.inc(f"columnar.{key}", delta)
        return metrics

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def stream_counts(self) -> Dict[str, int]:
        """Items produced per stream id over the last :meth:`run`.

        Streams retired mid-run by plan repair contribute their pinned
        counts; a repaired stream reinstalled under the same id sums
        both segments.  This is the measured ground truth the flow
        analyzer's interval bounds are checked against
        (``tests/test_prop_flow_soundness.py``).
        """
        if not hasattr(self, "_nodes"):
            raise ExecutionError("stream_counts() requires a completed run()")
        counts: Dict[str, int] = {}
        for retired in self._retired:
            stream_id = retired.stream.stream_id
            counts[stream_id] = counts.get(stream_id, 0) + retired.produced_count
        for stream_id, node in self._nodes.items():
            counts[stream_id] = counts.get(stream_id, 0) + node.produced_count
        return counts

    # ------------------------------------------------------------------
    # Fault-scheduled execution
    # ------------------------------------------------------------------
    def _run_epochs(self, gauge: _Gauge) -> None:
        """Pump sources epoch by epoch, applying faults at boundaries.

        Boundaries are the scheduled fault times plus each repair's
        recovery completion (when its gated deliveries reopen); a
        traced run adds ``epoch_samples`` evenly spaced sampling
        boundaries and emits one time-series snapshot per epoch —
        *before* the boundary's faults apply, so churn transients land
        in the following epochs.
        """
        events = (
            [e for e in self.schedule.events() if e.time < self.duration]
            if self.schedule
            else []
        )
        recorder = self.recorder
        observing = recorder.enabled or self.rebalancer is not None
        samples: List[float] = []
        if observing and self.epoch_samples > 0:
            step = self.duration / self.epoch_samples
            samples = [step * k for k in range(1, self.epoch_samples)]
        sample_index = 0
        opens: List[Tuple[float, int, _Gate]] = []
        sequence = 0
        index = 0
        while True:
            next_fault = events[index].time if index < len(events) else math.inf
            next_open = opens[0][0] if opens else math.inf
            next_sample = (
                samples[sample_index] if sample_index < len(samples) else math.inf
            )
            boundary = min(next_fault, next_open, next_sample, self.duration)
            self._pump_all_until(boundary, gauge)
            if boundary >= self.duration:
                break
            while sample_index < len(samples) and samples[sample_index] <= boundary:
                sample_index += 1
            snapshot = self._emit_epoch(boundary) if observing else None
            # Recovery completions first: a fault striking the instant a
            # previous recovery ends sees the recovered subscriptions.
            while opens and opens[0][0] <= boundary:
                heapq.heappop(opens)[2].open = True
            while index < len(events) and events[index].time <= boundary:
                event = events[index]
                index += 1
                gate = self._apply_fault(event)
                if gate is not None and gate.open_at < self.duration:
                    heapq.heappush(opens, (gate.open_at, sequence, gate))
                    sequence += 1
            # The rebalancer observes after the boundary's faults: a
            # migration then adapts the post-repair plan instead of
            # rewriting one a coincident fault immediately tears up.
            if self.rebalancer is not None and snapshot is not None:
                self._migration_downtime_epochs += sum(
                    1 for g in self._migration_gates if not g.open
                )
                self._apply_migration(snapshot)

    def _pump_all_until(self, until: float, gauge: _Gauge) -> None:
        for stream_id in self._sources:
            node = self._nodes.get(stream_id)
            if node is not None:
                self._pump_source(node, gauge, until)
            else:
                # Source's home super-peer is down: the thin-peer keeps
                # producing, the items are lost at ingest.
                self._drain_source(stream_id, until)

    def _apply_fault(self, event) -> Optional[_Gate]:
        """Mutate the topology, repair the plan, reconcile the executor.

        Returns the recovery gate when it still needs to be opened at a
        later boundary, else ``None``.
        """
        event.apply(self.net)
        self._faults_applied += 1
        recorder = self.recorder
        if recorder.enabled:
            recorder.event(
                "fault.applied", stream_time=event.time, fault=event.describe()
            )
            recorder.inc("exec.faults_applied")
        report = (
            self.repair(context=event.describe()) if self.repair is not None else None
        )
        recovery_s = 0.0
        if report is not None:
            recovery_s = report.recovery_time_ms() / 1000.0
            self._queries_repaired += len(report.repaired_queries)
        self._recovery_time_s += min(recovery_s, self.duration - event.time)
        gate = _Gate(open_at=event.time + recovery_s)
        gate.open = recovery_s <= 0.0
        self._gates.append(gate)
        self._reconcile(gate)
        return None if gate.open else gate

    def _apply_migration(self, snapshot) -> None:
        """Offer one epoch snapshot to the rebalancer; apply its moves.

        A migration rewrites the deployment control-plane-side (tear
        down + re-register, verified pre-flight); the executor then
        reconciles its running pipelines against the rewritten plan
        through the same diff churn repair uses.  The delivery gate is
        created *open*: the boundary is quiescent (everything pumped up
        to it was delivered), the rewrite is instantaneous in stream
        time, so nothing is dropped — migration is make-before-break,
        unlike fault recovery where the old plan is already dead.
        """
        report = self.rebalancer.observe_epoch(snapshot)
        if report is None:
            return
        self._migrations_applied += 1
        for name in getattr(report, "moved_queries", ()):
            self._query_migrations[name] = self._query_migrations.get(name, 0) + 1
        recorder = self.recorder
        if recorder.enabled:
            recorder.inc("exec.migrations_applied")
        gate = _Gate(open_at=snapshot.t_end)
        gate.open = True
        self._gates.append(gate)
        self._migration_gates.append(gate)
        self._reconcile(gate)

    # ------------------------------------------------------------------
    # Plan construction
    # ------------------------------------------------------------------
    def _topological_streams(self) -> List["InstalledStream"]:
        return topological_streams(self.deployment)

    def _build_plan(
        self, order: List["InstalledStream"]
    ) -> Tuple[
        Dict[str, _StreamNode],
        Dict[str, _SingleDelivery],
        Dict[str, _MultiDelivery],
    ]:
        nodes = {stream.stream_id: _StreamNode(stream) for stream in order}

        # Wire children to parents; merge non-relay siblings into tries.
        derived: Dict[str, List["InstalledStream"]] = {}
        for stream in order:
            if stream.parent_id is None:
                continue
            if stream.pipeline:
                derived.setdefault(stream.parent_id, []).append(stream)
            else:
                nodes[stream.parent_id].relay_children.append(nodes[stream.stream_id])
        for parent_id, children in derived.items():
            parent_node = nodes[parent_id]
            parent_node.trie_groups = group_pipelines(
                [
                    (child.stream_id, child.content.item_path, child.pipeline)
                    for child in children
                ]
            )
            for _, _, stage_paths in parent_node.trie_groups:
                for stream_id, stage_path in stage_paths.items():
                    nodes[stream_id].stage_path = stage_path

        # Subscription consumers.
        self._nodes = nodes
        singles: Dict[str, _SingleDelivery] = {}
        multis: Dict[str, _MultiDelivery] = {}
        for record in self.deployment.queries.values():
            if len(record.delivered) > 1:
                delivery: object = _MultiDelivery(record, _Gauge(), self.capture)
                multis[record.name] = delivery
            else:
                delivery = _SingleDelivery(record, self.capture)
                singles[record.name] = delivery
            self._attach_feeds(record.name, delivery)
        return nodes, singles, multis

    @staticmethod
    def _multi_feeder(
        delivery: _MultiDelivery, index: int
    ) -> Callable[[Batch], None]:
        def feed(batch: Batch) -> None:
            delivery.feed(index, batch)

        return feed

    def _gated(
        self, name: str, gate: _Gate, feed: Callable[[Batch], None]
    ) -> Callable[[Batch], None]:
        query_lost = self._query_lost

        def gated_feed(batch: Batch) -> None:
            if gate.open:
                feed(batch)
            else:
                gate.lost += len(batch)
                query_lost[name] = query_lost.get(name, 0) + len(batch)

        return gated_feed

    def _attach_feeds(
        self, name: str, delivery: object, gated_by: Optional[_Gate] = None
    ) -> None:
        """Wire a subscription's feeds onto its delivered stream nodes."""
        entries = self._feeds.setdefault(name, [])
        record = delivery.record  # type: ignore[attr-defined]
        if isinstance(delivery, _MultiDelivery):
            feeds = [
                self._multi_feeder(delivery, index)
                for index in range(len(record.delivered))
            ]
        else:
            feeds = [delivery.feed]  # type: ignore[attr-defined]
        for feed, (_, stream_id) in zip(feeds, record.delivered):
            if stream_id not in self._nodes:
                continue
            if gated_by is not None:
                feed = self._gated(name, gated_by, feed)
            self._nodes[stream_id].deliveries.append(feed)
            entries.append((stream_id, feed))

    def _remove_feeds(self, name: str) -> None:
        for stream_id, feed in self._feeds.pop(name, []):
            node = self._nodes.get(stream_id)
            if node is None:
                continue  # the node itself was retired
            try:
                node.deliveries.remove(feed)
            except ValueError:
                pass

    # ------------------------------------------------------------------
    # Plan reconciliation after a repair
    # ------------------------------------------------------------------
    def _reconcile(self, gate: _Gate) -> None:
        """Diff the executor's running plan against the repaired one.

        Streams no longer installed (or replaced by a same-id fresh
        installation) are retired: their counters are snapshotted, they
        detach from their parent's relay list or shared-prefix trie
        (surviving siblings keep their stages and operator state), and
        orphaned stages are pruned.  Repair-created streams attach with
        fresh operator state — recovery restarts windows rather than
        migrating them — and with ``duplicate_base`` pinned so only
        post-attach parent items are billed as duplication work.
        """
        deployment = self.deployment
        nodes = self._nodes

        stale = {
            stream_id: node
            for stream_id, node in nodes.items()
            if deployment.streams.get(stream_id) is not node.stream
        }
        for node in stale.values():
            self._retired.append(self._snapshot(node))
        for node in stale.values():
            self._detach(node)
        for stream_id in stale:
            del nodes[stream_id]

        added = [
            stream
            for stream in topological_streams(deployment)
            if stream.stream_id not in nodes
        ]
        pipelined: Dict[str, List["InstalledStream"]] = {}
        for stream in added:
            node = _StreamNode(stream)
            node.repair_added = True
            nodes[stream.stream_id] = node
            if stream.parent_id is None:
                continue  # re-installed original (its home rejoined)
            parent_node = nodes[stream.parent_id]
            node.duplicate_base = parent_node.produced_count
            if stream.pipeline:
                pipelined.setdefault(stream.parent_id, []).append(stream)
            else:
                parent_node.relay_children.append(node)
        # Repair-created pipelines share prefixes among themselves (all
        # start with fresh state at the same instant) but never join a
        # surviving trie: that would hand them a sibling's pre-fault
        # window state, which recovery must restart.
        for parent_id, children in pipelined.items():
            parent_node = nodes[parent_id]
            groups = group_pipelines(
                [
                    (child.stream_id, child.content.item_path, child.pipeline)
                    for child in children
                ]
            )
            parent_node.trie_groups = parent_node.trie_groups + groups
            for _, _, stage_paths in groups:
                for stream_id, stage_path in stage_paths.items():
                    nodes[stream_id].stage_path = stage_path

        # Re-wire subscriptions the repair touched; silence the ones it
        # had to park (their delivery objects stay for accounting).
        for name, delivery in self._deliveries.items():
            record = deployment.queries.get(name)
            if record is None:
                self._remove_feeds(name)
                continue
            if delivery.record is record:  # type: ignore[attr-defined]
                continue  # untouched by this repair
            self._remove_feeds(name)
            delivery.record = record  # type: ignore[attr-defined]
            self._attach_feeds(name, delivery, gated_by=gate)

    def _snapshot(self, node: _StreamNode) -> _RetiredNode:
        stream = node.stream
        parent_node = (
            self._nodes.get(stream.parent_id) if stream.parent_id is not None else None
        )
        duplicate_count = (
            parent_node.produced_count - node.duplicate_base
            if parent_node is not None
            else 0
        )
        return _RetiredNode(
            stream=stream,
            produced_count=node.produced_count,
            produced_bytes=node.produced_bytes,
            duplicate_count=duplicate_count,
            stage_counts=[
                (
                    stage.operator.kind,
                    getattr(getattr(stage.operator, "spec", None), "name", None),
                    stage.input_count,
                )
                for stage in node.stage_path
            ],
            repair_added=node.repair_added,
        )

    def _detach(self, node: _StreamNode) -> None:
        stream = node.stream
        if stream.parent_id is None:
            return
        parent = self._nodes.get(stream.parent_id)
        if parent is None:
            return  # parent retired in the same pass; nothing to unlink
        if node in parent.relay_children:
            parent.relay_children.remove(node)
            return
        for _, trie, stage_paths in parent.trie_groups:
            stage_path = stage_paths.pop(stream.stream_id, None)
            if stage_path is None:
                continue
            terminal = stage_path[-1]
            if stream.stream_id in terminal.streams:
                terminal.streams.remove(stream.stream_id)
            _prune_stages(trie.roots)
            break
        parent.trie_groups = [
            group for group in parent.trie_groups if group[1].roots
        ]

    # ------------------------------------------------------------------
    # Streaming execution
    # ------------------------------------------------------------------
    def _pump_source(self, node: _StreamNode, gauge: _Gauge, until: float) -> None:
        stream = node.stream
        generator = self.generators.get(stream.stream_id)
        if generator is None:
            raise ExecutionError(
                f"no generator for original stream {stream.stream_id!r}"
            )
        produced = self._produced[stream.stream_id]
        batch_size = self.batch_size
        while generator.clock < until:
            batch: List[Element] = []
            while (
                generator.clock < until
                and len(batch) < batch_size
                and (self.max_items is None or produced + len(batch) < self.max_items)
            ):
                batch.append(generator.next_item().freeze())
            if not batch:
                break
            produced += len(batch)
            self._pump(node, encode_ingest(batch, self._columnar_mode), gauge)
            if self.max_items is not None and produced >= self.max_items:
                break
        self._produced[stream.stream_id] = produced

    def _drain_source(self, stream_id: str, until: float) -> None:
        """Advance a down source's generator, counting its items lost."""
        generator = self.generators.get(stream_id)
        if generator is None:
            return
        produced = self._produced[stream_id]
        while generator.clock < until and (
            self.max_items is None or produced < self.max_items
        ):
            generator.next_item()
            produced += 1
            self._source_items_lost += 1
        self._produced[stream_id] = produced

    def _pump(self, node: _StreamNode, batch: Batch, gauge: _Gauge) -> None:
        """Consume one batch of ``node``'s items: account, deliver, fan out."""
        gauge.add(len(batch))
        node.produced_count += len(batch)
        if node.has_hops:
            node.produced_bytes += batch_bytes(batch)
        for feed in node.deliveries:
            feed(batch)
        for relay in node.relay_children:
            self._pump(relay, batch, gauge)
        for _, trie, _ in node.trie_groups:
            trie.evaluate(batch, self._emit, gauge, self._op_timer)
        gauge.sub(len(batch))

    def _emit(self, stream_id: str, out: Batch) -> None:
        self._pump(self._nodes[stream_id], out, self._gauge)

    # ------------------------------------------------------------------
    # Observability (traced runs only; see DESIGN.md §10)
    # ------------------------------------------------------------------
    def _make_op_timer(self) -> Callable[[PrefixStage, int, float], None]:
        """Build the per-stage timer handed to the shared-prefix tries.

        The timer records wall-clock latency only.  ``op.*.items``
        counters are billed from :meth:`_operator_totals` deltas at
        epoch boundaries instead: timer-side counts bill a shared trie
        stage once per *evaluation*, which depends on how sibling
        pipelines land in shard cells — billed totals are partition-
        invariant, so the sharded executor's merged counters pin equal
        to this executor's (DESIGN.md §15).
        """
        recorder = self.recorder

        def op_timer(stage: PrefixStage, inputs: int, seconds: float) -> None:
            name = getattr(stage.spec, "name", None) or stage.operator.kind
            recorder.observe(f"op.{name}.batch_s", seconds)

        return op_timer

    def _operator_totals(self) -> Dict[str, int]:
        """Cumulative billed inputs per operator name (live + retired).

        Follows the accounting convention: a shared trie stage is billed
        once per stream whose pipeline runs through it, so the totals
        stay comparable with the cost model's per-stream charges.
        """
        totals: Dict[str, int] = {}
        for retired in self._retired:
            for kind, udf_name, inputs in retired.stage_counts:
                name = udf_name or kind
                totals[name] = totals.get(name, 0) + inputs
        for node in self._nodes.values():
            for stage in node.stage_path:
                name = getattr(stage.spec, "name", None) or stage.operator.kind
                totals[name] = totals.get(name, 0) + stage.input_count
        return totals

    def _emit_epoch(
        self, t_end: float, metrics: Optional[RunMetrics] = None
    ):
        """Snapshot the delta since the previous epoch boundary.

        ``metrics`` is the cumulative accounting replay at ``t_end``
        (recomputed here when not supplied) — :meth:`_account` is a pure
        replay of accumulated counters, so calling it mid-run observes
        without perturbing the execution.  Returns the snapshot (also
        handed to the recorder, a no-op when tracing is off — untraced
        rebalanced runs still need it for the drift detector), or
        ``None`` at a coincident boundary.
        """
        if t_end <= self._epoch_start and self._epoch_index > 0:
            return None  # coincident boundaries: nothing elapsed
        if metrics is None:
            metrics = self._account(self._topological_streams(), self._nodes)
        totals = self._operator_totals()
        if self.recorder.enabled:
            previous = self._last_operator_totals or {}
            for name, count in totals.items():
                delta = count - previous.get(name, 0)
                if delta:
                    self.recorder.inc(f"op.{name}.items", delta)
        snapshot = snapshot_delta(
            self._epoch_index,
            self._epoch_start,
            t_end,
            metrics,
            self._last_metrics,
            self.net,
            totals,
            self._last_operator_totals,
            inflight_items=self._gauge.current,
            inflight_peak=self._gauge.take_window_peak(),
        )
        self.recorder.add_epoch(snapshot)
        if snapshot.inflight_peak > self.batch_size:
            self._backpressure_epochs += 1
        self._epoch_index += 1
        self._epoch_start = t_end
        self._last_metrics = metrics
        self._last_operator_totals = totals
        self.last_query_slos = self.query_slos()
        return snapshot

    # ------------------------------------------------------------------
    # Per-query SLO accounting (DESIGN.md §15)
    # ------------------------------------------------------------------
    def query_slos(self) -> List["QuerySLO"]:
        """One :class:`~repro.obs.slo.QuerySLO` per registered query.

        Pure reads of accumulated counters, so it is safe to call
        mid-run (the live ``/slo.json`` endpoint does).  The sequential
        executor delivers inside the producing pump, so ``epoch_lag``
        and the derived delivery latency are 0; the sharded executor
        overrides both from the certified plan.
        """
        from ..obs.slo import QuerySLO

        slos: List[QuerySLO] = []
        for name, delivery in self._deliveries.items():
            if isinstance(delivery, _MultiDelivery):
                inputs, results = delivery.total_inputs, delivery.results
            else:
                inputs = delivery.inputs  # type: ignore[attr-defined]
                results = delivery.results  # type: ignore[attr-defined]
            slos.append(
                QuerySLO(
                    query=name,
                    shard=0,
                    epoch_lag=0,
                    delivery_latency_s=0.0,
                    delivered_inputs=inputs,
                    delivered_results=results,
                    items_lost=self._query_lost.get(name, 0),
                    migrations=self._query_migrations.get(name, 0),
                    backpressure_epochs=self._backpressure_epochs,
                    queue_peak=self._gauge.peak,
                    parked=name not in self.deployment.queries,
                )
            )
        return slos

    # ------------------------------------------------------------------
    # Metrics replay
    # ------------------------------------------------------------------
    @staticmethod
    def _stage_counts(node: _StreamNode) -> List[Tuple[str, Optional[str], int]]:
        return [
            (
                stage.operator.kind,
                getattr(getattr(stage.operator, "spec", None), "name", None),
                stage.input_count,
            )
            for stage in node.stage_path
        ]

    def _stream_counters(
        self, nodes: Dict[str, _StreamNode]
    ) -> Dict[str, StreamCounters]:
        return {
            stream_id: StreamCounters(
                produced_count=node.produced_count,
                produced_bytes=node.produced_bytes,
                duplicate_base=node.duplicate_base,
                stage_counts=self._stage_counts(node),
                repair_added=node.repair_added,
            )
            for stream_id, node in nodes.items()
        }

    def _delivery_counters(self) -> List[DeliveryCounters]:
        # Built from the delivery registry, not ``deployment.queries``:
        # the registry keeps registration order across repairs and still
        # holds subscriptions that ended the run torn down (their
        # pre-fault deliveries were real work and must be counted).
        out: List[DeliveryCounters] = []
        for delivery in self._deliveries.values():
            if isinstance(delivery, _MultiDelivery):
                out.append(
                    DeliveryCounters(
                        delivery.record, True, delivery.total_inputs, delivery.results
                    )
                )
            else:
                out.append(
                    DeliveryCounters(
                        delivery.record,  # type: ignore[attr-defined]
                        False,
                        delivery.inputs,  # type: ignore[attr-defined]
                        delivery.results,  # type: ignore[attr-defined]
                    )
                )
        return out

    def _account(
        self, order: List["InstalledStream"], nodes: Dict[str, _StreamNode]
    ) -> RunMetrics:
        """Replay the accumulated counters into :class:`RunMetrics` via
        :func:`repro.engine.accounting.replay_metrics` — the shared
        replay whose accumulation order matches the materializing
        executor exactly, so fault-free runs produce floating-point-
        identical metrics (and the sharded executor, feeding merged
        counters through the same function, matches this one)."""
        return replay_metrics(
            self.net,
            self.duration,
            order,
            self._stream_counters(nodes),
            self._retired,
            self._delivery_counters(),
            faults_applied=self._faults_applied,
            items_lost=self._source_items_lost
            + sum(gate.lost for gate in self._gates),
            items_lost_by_query=self._query_lost,
            recovery_time_s=self._recovery_time_s,
            queries_repaired=self._queries_repaired,
            queries_lost=sum(
                1 for name in self._deliveries if name not in self.deployment.queries
            ),
            migrations_applied=self._migrations_applied,
            migration_downtime_epochs=self._migration_downtime_epochs,
        )


# ----------------------------------------------------------------------
# The materializing oracle
# ----------------------------------------------------------------------
class MaterializingSimulator:
    """The seed executor: materialize every stream's full item list.

    Kept as the correctness oracle for :class:`StreamSimulator` — it
    evaluates every derived stream with its own private pipeline over
    the parent's fully materialized item list, exactly as the original
    implementation did.  Peak memory is O(all items × all streams);
    ``peak_live_items`` reports the total number of materialized items
    for comparison in the micro benchmark.
    """

    def __init__(
        self,
        net: Network,
        deployment: "Deployment",
        generators: Dict[str, ItemGenerator],
        duration: float,
        max_items_per_source: Optional[int] = None,
        recorder: Optional[object] = None,
    ) -> None:
        if duration <= 0:
            raise ExecutionError("duration must be positive")
        self.net = net
        self.deployment = deployment
        self.generators = generators
        self.duration = duration
        self.max_items = max_items_per_source
        self.recorder = recorder if recorder is not None else NULL_RECORDER
        self.peak_live_items = 0

    # ------------------------------------------------------------------
    def run(self) -> RunMetrics:
        metrics = RunMetrics(duration=self.duration)
        items: Dict[str, List[Element]] = {}

        for stream in self._topological_streams():
            if stream.is_original:
                items[stream.stream_id] = self._generate(stream, metrics)
            else:
                items[stream.stream_id] = self._derive(stream, items, metrics)
            self._account_transport(stream, items[stream.stream_id], metrics)

        self.peak_live_items = sum(len(produced) for produced in items.values())
        self._postprocess(items, metrics)
        return metrics

    # ------------------------------------------------------------------
    # Stream production
    # ------------------------------------------------------------------
    def _topological_streams(self) -> List["InstalledStream"]:
        return topological_streams(self.deployment)

    def _generate(self, stream: "InstalledStream", metrics: RunMetrics) -> List[Element]:
        generator = self.generators.get(stream.stream_id)
        if generator is None:
            raise ExecutionError(f"no generator for original stream {stream.stream_id!r}")
        produced: List[Element] = []
        peer = self.net.super_peer(stream.origin_node)
        ingest = base_load("ingest") * peer.pindex
        while generator.clock < self.duration:
            if self.max_items is not None and len(produced) >= self.max_items:
                break
            produced.append(generator.next_item())
        metrics.count_generated(stream.stream_id, len(produced))
        metrics.add_peer_work(stream.origin_node, ingest * len(produced))
        return produced

    def _derive(
        self,
        stream: "InstalledStream",
        items: Dict[str, List[Element]],
        metrics: RunMetrics,
    ) -> List[Element]:
        assert stream.parent_id is not None
        parent_items = items[stream.parent_id]
        peer = self.net.super_peer(stream.origin_node)

        # Tapping an existing stream duplicates it at the tap node.
        duplicate = base_load("duplicate") * peer.pindex
        metrics.add_peer_work(stream.origin_node, duplicate * len(parent_items))

        if not stream.pipeline:
            return parent_items  # pure relay: content unchanged

        pipeline = Pipeline.from_specs(stream.pipeline, stream.content.item_path)
        recorder = self.recorder
        timer = None
        if recorder.enabled:

            def timer(operator, inputs, seconds):
                name = (
                    getattr(getattr(operator, "spec", None), "name", None)
                    or operator.kind
                )
                recorder.observe(f"op.{name}.batch_s", seconds)
                recorder.inc(f"op.{name}.items", inputs)

        out: List[Element] = []
        for item in parent_items:
            out.extend(pipeline.process_batch((item,), timer))
        for operator, inputs in zip(pipeline.operators, pipeline.input_counts):
            udf_name = getattr(getattr(operator, "spec", None), "name", None)
            work = base_load(operator.kind, udf_name) * peer.pindex * inputs
            metrics.add_peer_work(stream.origin_node, work)
        return out

    # ------------------------------------------------------------------
    # Transport and delivery
    # ------------------------------------------------------------------
    def _account_transport(
        self, stream: "InstalledStream", produced: List[Element], metrics: RunMetrics
    ) -> None:
        hops = stream.links()
        if not hops or not produced:
            return
        bits_per_item = [item.serialized_size() * 8 for item in produced]
        total_bits = float(sum(bits_per_item))
        for a, b in hops:
            metrics.add_link_bits(self.net.link(a, b), total_bits)
        # Forwarding work: the sender side of every hop touches each item.
        for sender, _ in hops:
            peer = self.net.super_peer(sender)
            work = base_load("transfer") * peer.pindex * len(produced)
            metrics.add_peer_work(sender, work)

    def _postprocess(self, items: Dict[str, List[Element]], metrics: RunMetrics) -> None:
        """Run each subscription's restructuring at its super-peer."""
        for record in self.deployment.queries.values():
            peer = self.net.super_peer(record.subscriber_node)
            work_per_item = base_load("restructure") * peer.pindex
            if len(record.delivered) > 1:
                self._postprocess_multi(record, items, metrics, work_per_item)
                continue
            restructurer = Restructurer(record.analyzed)
            for _, stream_id in record.delivered:
                delivered = items.get(stream_id, [])
                metrics.add_peer_work(
                    record.subscriber_node, work_per_item * len(delivered)
                )
                results = 0
                for item in delivered:
                    results += len(restructurer.build(item))
                metrics.count_delivery(record.name, results)

    def _postprocess_multi(
        self,
        record: "RegisteredQuery",
        items: Dict[str, List[Element]],
        metrics: RunMetrics,
        work_per_item: float,
    ) -> None:
        """Multi-input combination: latest-value semantics over a
        deterministic round-robin interleaving of the delivered streams
        (see :class:`repro.engine.combine.LatestValueCombiner`)."""
        from .combine import LatestValueCombiner

        combiner = LatestValueCombiner(record.analyzed)
        per_stream = [
            (input_stream, items.get(stream_id, []))
            for input_stream, stream_id in record.delivered
        ]
        total_inputs = sum(len(delivered) for _, delivered in per_stream)
        metrics.add_peer_work(record.subscriber_node, work_per_item * total_inputs)
        results = 0
        for input_stream, item in interleave_round_robin(per_stream):
            results += len(combiner.push(input_stream, item))
        metrics.count_delivery(record.name, results)
