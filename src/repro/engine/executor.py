"""The measured stream execution: pump generated items through every
installed stream of a :class:`~repro.sharing.plan.Deployment` and count
real serialized bytes per link and real operator work per peer.

This is the reproduction's stand-in for the paper's blade cluster (see
DESIGN.md): the figures' CPU-load and network-traffic series are
*measurements* of this simulation, while the optimizer only ever sees
the cost model's estimates — exactly the estimate/measure split of the
original system.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Protocol

from ..costmodel import base_load
from ..network.topology import Network
from ..xmlkit import Element

if TYPE_CHECKING:  # avoid a runtime cycle with repro.sharing
    from ..sharing.plan import Deployment, InstalledStream
from .metrics import RunMetrics
from .pipeline import Pipeline
from .restructure import Restructurer


class ItemGenerator(Protocol):
    """Anything that produces stream items on a virtual clock."""

    @property
    def clock(self) -> float: ...

    def next_item(self) -> Element: ...


class ExecutionError(Exception):
    """Raised for deployments the executor cannot run."""


class StreamSimulator:
    """Execute a deployment for a span of virtual time.

    Parameters
    ----------
    net:
        The super-peer topology (capacities, performance indices).
    deployment:
        The installed streams and registered queries to execute.
    generators:
        One :class:`ItemGenerator` per *original* stream id.
    duration:
        Virtual seconds of stream input to generate.
    max_items_per_source:
        Safety cap on generated items per source.
    """

    def __init__(
        self,
        net: Network,
        deployment: "Deployment",
        generators: Dict[str, ItemGenerator],
        duration: float,
        max_items_per_source: Optional[int] = None,
    ) -> None:
        if duration <= 0:
            raise ExecutionError("duration must be positive")
        self.net = net
        self.deployment = deployment
        self.generators = generators
        self.duration = duration
        self.max_items = max_items_per_source

    # ------------------------------------------------------------------
    def run(self) -> RunMetrics:
        metrics = RunMetrics(duration=self.duration)
        items: Dict[str, List[Element]] = {}

        for stream in self._topological_streams():
            if stream.is_original:
                items[stream.stream_id] = self._generate(stream, metrics)
            else:
                items[stream.stream_id] = self._derive(stream, items, metrics)
            self._account_transport(stream, items[stream.stream_id], metrics)

        self._postprocess(items, metrics)
        return metrics

    # ------------------------------------------------------------------
    # Stream production
    # ------------------------------------------------------------------
    def _topological_streams(self) -> List["InstalledStream"]:
        """Parents before children (original streams first)."""
        ordered: List["InstalledStream"] = []
        placed: set = set()
        pending = list(self.deployment.streams.values())
        while pending:
            progressed = False
            remaining: List["InstalledStream"] = []
            for stream in pending:
                if stream.parent_id is None or stream.parent_id in placed:
                    ordered.append(stream)
                    placed.add(stream.stream_id)
                    progressed = True
                else:
                    remaining.append(stream)
            if not progressed:
                cycle = ", ".join(s.stream_id for s in remaining)
                raise ExecutionError(f"stream dependency cycle: {cycle}")
            pending = remaining
        return ordered

    def _generate(self, stream: "InstalledStream", metrics: RunMetrics) -> List[Element]:
        generator = self.generators.get(stream.stream_id)
        if generator is None:
            raise ExecutionError(f"no generator for original stream {stream.stream_id!r}")
        produced: List[Element] = []
        peer = self.net.super_peer(stream.origin_node)
        ingest = base_load("ingest") * peer.pindex
        while generator.clock < self.duration:
            if self.max_items is not None and len(produced) >= self.max_items:
                break
            produced.append(generator.next_item())
        metrics.count_generated(stream.stream_id, len(produced))
        metrics.add_peer_work(stream.origin_node, ingest * len(produced))
        return produced

    def _derive(
        self,
        stream: "InstalledStream",
        items: Dict[str, List[Element]],
        metrics: RunMetrics,
    ) -> List[Element]:
        assert stream.parent_id is not None
        parent_items = items[stream.parent_id]
        peer = self.net.super_peer(stream.origin_node)

        # Tapping an existing stream duplicates it at the tap node.
        duplicate = base_load("duplicate") * peer.pindex
        metrics.add_peer_work(stream.origin_node, duplicate * len(parent_items))

        if not stream.pipeline:
            return parent_items  # pure relay: content unchanged

        pipeline = Pipeline.from_specs(stream.pipeline, stream.content.item_path)
        out: List[Element] = []
        for item in parent_items:
            out.extend(pipeline.process(item))
        for operator, inputs in zip(pipeline.operators, pipeline.input_counts):
            udf_name = getattr(getattr(operator, "spec", None), "name", None)
            work = base_load(operator.kind, udf_name) * peer.pindex * inputs
            metrics.add_peer_work(stream.origin_node, work)
        return out

    # ------------------------------------------------------------------
    # Transport and delivery
    # ------------------------------------------------------------------
    def _account_transport(
        self, stream: "InstalledStream", produced: List[Element], metrics: RunMetrics
    ) -> None:
        hops = stream.links()
        if not hops or not produced:
            return
        bits_per_item = [item.serialized_size() * 8 for item in produced]
        total_bits = float(sum(bits_per_item))
        for a, b in hops:
            metrics.add_link_bits(self.net.link(a, b), total_bits)
        # Forwarding work: the sender side of every hop touches each item.
        for sender, _ in hops:
            peer = self.net.super_peer(sender)
            work = base_load("transfer") * peer.pindex * len(produced)
            metrics.add_peer_work(sender, work)

    def _postprocess(self, items: Dict[str, List[Element]], metrics: RunMetrics) -> None:
        """Run each subscription's restructuring at its super-peer."""
        for record in self.deployment.queries.values():
            peer = self.net.super_peer(record.subscriber_node)
            work_per_item = base_load("restructure") * peer.pindex
            if len(record.delivered) > 1:
                self._postprocess_multi(record, items, metrics, work_per_item)
                continue
            restructurer = Restructurer(record.analyzed)
            for _, stream_id in record.delivered:
                delivered = items.get(stream_id, [])
                metrics.add_peer_work(
                    record.subscriber_node, work_per_item * len(delivered)
                )
                results = 0
                for item in delivered:
                    results += len(restructurer.build(item))
                metrics.count_delivery(record.name, results)

    def _postprocess_multi(
        self,
        record,
        items: Dict[str, List[Element]],
        metrics: RunMetrics,
        work_per_item: float,
    ) -> None:
        """Multi-input combination: latest-value semantics over a
        deterministic round-robin interleaving of the delivered streams
        (see :class:`repro.engine.combine.LatestValueCombiner`)."""
        from .combine import LatestValueCombiner

        combiner = LatestValueCombiner(record.analyzed)
        per_stream = [
            (input_stream, items.get(stream_id, []))
            for input_stream, stream_id in record.delivered
        ]
        total_inputs = sum(len(delivered) for _, delivered in per_stream)
        metrics.add_peer_work(record.subscriber_node, work_per_item * total_inputs)
        results = 0
        index = 0
        remaining = True
        while remaining:
            remaining = False
            for input_stream, delivered in per_stream:
                if index < len(delivered):
                    remaining = True
                    results += len(combiner.push(input_stream, delivered[index]))
            index += 1
        metrics.count_delivery(record.name, results)
