"""The measured stream execution: pump generated items through every
installed stream of a :class:`~repro.sharing.plan.Deployment` and count
real serialized bytes per link and real operator work per peer.

This is the reproduction's stand-in for the paper's blade cluster (see
DESIGN.md): the figures' CPU-load and network-traffic series are
*measurements* of this simulation, while the optimizer only ever sees
the cost model's estimates — exactly the estimate/measure split of the
original system.

Two executors are provided:

* :class:`StreamSimulator` — the production executor: a single-pass,
  generator-driven streaming engine.  Source items are pumped through
  the deployment DAG depth-first in small batches, so peak memory is
  O(window state + one batch) instead of O(all items × all streams);
  items are size-frozen at ingest (relays charge bytes without
  re-walking subtrees) and sibling pipelines with a common operator
  prefix are evaluated once (:mod:`repro.engine.fanout`).
* :class:`MaterializingSimulator` — the original per-stream
  materializing executor, kept as the correctness oracle: the golden
  equivalence test pins that both produce identical
  :class:`~repro.engine.metrics.RunMetrics` on every built-in scenario.

End-of-stream: neither executor flushes pipelines.  Subscriptions are
continuous queries over unbounded streams; a run's ``duration`` is a
measurement horizon, not an end-of-stream marker, so partially filled
windows stay open exactly as they would in the live system (DESIGN.md
§7).  :meth:`Pipeline.flush` remains available for explicit drains.
"""

from __future__ import annotations

from collections import deque
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
)

from ..costmodel import base_load
from ..network.topology import Network
from ..xmlkit import Element

if TYPE_CHECKING:  # avoid a runtime cycle with repro.sharing
    from ..sharing.plan import Deployment, InstalledStream, RegisteredQuery
from .fanout import PrefixStage, PrefixTree, _Gauge, group_pipelines
from .metrics import RunMetrics
from .pipeline import Pipeline
from .restructure import Restructurer


class ItemGenerator(Protocol):
    """Anything that produces stream items on a virtual clock."""

    @property
    def clock(self) -> float: ...

    def next_item(self) -> Element: ...


class ExecutionError(Exception):
    """Raised for deployments the executor cannot run."""


# ----------------------------------------------------------------------
# Shared machinery
# ----------------------------------------------------------------------
def topological_streams(deployment: "Deployment") -> List["InstalledStream"]:
    """Parents before children (original streams first), via Kahn's
    algorithm specialized to the single-parent stream forest: every
    stream is enqueued exactly once, when its parent is placed — O(n)
    instead of the former O(n²) fixpoint loop."""
    streams = deployment.streams
    children: Dict[str, List["InstalledStream"]] = {}
    queue: deque = deque()
    for stream in streams.values():
        if stream.parent_id is None:
            queue.append(stream)
        else:
            children.setdefault(stream.parent_id, []).append(stream)
    ordered: List["InstalledStream"] = []
    placed: set = set()
    while queue:
        stream = queue.popleft()
        ordered.append(stream)
        placed.add(stream.stream_id)
        queue.extend(children.get(stream.stream_id, ()))
    if len(ordered) != len(streams):
        cycle = ", ".join(
            s.stream_id for s in streams.values() if s.stream_id not in placed
        )
        raise ExecutionError(f"stream dependency cycle: {cycle}")
    return ordered


def interleave_round_robin(
    per_stream: Sequence[Tuple[str, Sequence[Element]]],
) -> Iterator[Tuple[str, Element]]:
    """Deterministic round-robin interleave of several delivered streams.

    Yields ``(input_stream, item)``: round ``r`` visits every stream
    that still has an ``r``-th item, in the given stream order —
    uneven-length streams simply drop out of later rounds.
    """
    active = [
        (input_stream, iter(delivered)) for input_stream, delivered in per_stream
    ]
    while active:
        survivors: List[Tuple[str, Iterator[Element]]] = []
        for input_stream, iterator in active:
            try:
                item = next(iterator)
            except StopIteration:
                continue
            survivors.append((input_stream, iterator))
            yield input_stream, item
        active = survivors


# ----------------------------------------------------------------------
# Streaming executor internals
# ----------------------------------------------------------------------
class _SingleDelivery:
    """Incremental post-processing of a single-input subscription."""

    __slots__ = ("record", "restructurer", "inputs", "results")

    def __init__(self, record: "RegisteredQuery") -> None:
        self.record = record
        self.restructurer = Restructurer(record.analyzed)
        self.inputs = 0
        self.results = 0

    def feed(self, batch: Sequence[Element]) -> None:
        self.inputs += len(batch)
        build = self.restructurer.build
        for item in batch:
            self.results += len(build(item))


class _MultiDelivery:
    """Buffered post-processing of a multi-input subscription.

    The round-robin interleave pairs the ``r``-th items of every input,
    which is only known once all inputs finished — so multi-input
    subscriptions are the one place the streaming executor buffers
    whole streams (delivered, post-compensation items only; bounded by
    the subscription's own delivery rate, not the source rate).
    """

    __slots__ = ("record", "buffers", "gauge", "results", "total_inputs")

    def __init__(self, record: "RegisteredQuery", gauge: _Gauge) -> None:
        self.record = record
        self.buffers: List[List[Element]] = [[] for _ in record.delivered]
        self.gauge = gauge
        self.results = 0
        self.total_inputs = 0

    def feed(self, index: int, batch: Sequence[Element]) -> None:
        self.buffers[index].extend(batch)
        self.gauge.add(len(batch))

    def finish(self) -> None:
        from .combine import LatestValueCombiner

        self.total_inputs = sum(len(buffered) for buffered in self.buffers)
        combiner = LatestValueCombiner(self.record.analyzed)
        per_stream = [
            (input_stream, self.buffers[index])
            for index, (input_stream, _) in enumerate(self.record.delivered)
        ]
        for input_stream, item in interleave_round_robin(per_stream):
            self.results += len(combiner.push(input_stream, item))
        self.gauge.sub(self.total_inputs)


class _StreamNode:
    """Per-stream runtime state of the streaming executor."""

    __slots__ = (
        "stream",
        "produced_count",
        "produced_bytes",
        "has_hops",
        "relay_children",
        "trie_groups",
        "stage_path",
        "deliveries",
    )

    def __init__(self, stream: "InstalledStream") -> None:
        self.stream = stream
        self.produced_count = 0
        self.produced_bytes = 0
        self.has_hops = len(stream.route) > 1
        #: Children with an empty pipeline: they forward items verbatim.
        self.relay_children: List["_StreamNode"] = []
        #: Non-relay children merged into shared-prefix tries.
        self.trie_groups: List[Tuple[object, PrefixTree, dict]] = []
        #: This stream's own stage path inside its parent's trie.
        self.stage_path: List[PrefixStage] = []
        #: Subscription consumers fed with this stream's items.
        self.deliveries: List[Callable[[Sequence[Element]], None]] = []


class StreamSimulator:
    """Execute a deployment for a span of virtual time (single pass).

    Parameters
    ----------
    net:
        The super-peer topology (capacities, performance indices).
    deployment:
        The installed streams and registered queries to execute.
    generators:
        One :class:`ItemGenerator` per *original* stream id.
    duration:
        Virtual seconds of stream input to generate.
    max_items_per_source:
        Safety cap on generated items per source.
    batch_size:
        Items generated per pump through the DAG; bounds peak memory
        together with open window state.

    After :meth:`run`, ``peak_live_items`` holds the maximum number of
    stream items the executor held in flight at any moment — bounded by
    ``batch_size`` × DAG depth (plus multi-input delivery buffers),
    independent of ``duration``.
    """

    def __init__(
        self,
        net: Network,
        deployment: "Deployment",
        generators: Dict[str, ItemGenerator],
        duration: float,
        max_items_per_source: Optional[int] = None,
        batch_size: int = 64,
    ) -> None:
        if duration <= 0:
            raise ExecutionError("duration must be positive")
        if batch_size <= 0:
            raise ExecutionError("batch size must be positive")
        self.net = net
        self.deployment = deployment
        self.generators = generators
        self.duration = duration
        self.max_items = max_items_per_source
        self.batch_size = batch_size
        self.peak_live_items = 0

    # ------------------------------------------------------------------
    def run(self) -> RunMetrics:
        order = self._topological_streams()
        nodes, singles, multis = self._build_plan(order)
        gauge = _Gauge()
        for delivery in multis.values():
            delivery.gauge = gauge  # buffered items count as in-flight
        self._gauge = gauge
        self._nodes = nodes

        for stream in order:
            if stream.is_original:
                self._pump_source(nodes[stream.stream_id], gauge)
        for delivery in multis.values():
            delivery.finish()

        self.peak_live_items = gauge.peak
        return self._account(order, nodes, singles, multis)

    # ------------------------------------------------------------------
    # Plan construction
    # ------------------------------------------------------------------
    def _topological_streams(self) -> List["InstalledStream"]:
        return topological_streams(self.deployment)

    def _build_plan(
        self, order: List["InstalledStream"]
    ) -> Tuple[
        Dict[str, _StreamNode],
        Dict[str, _SingleDelivery],
        Dict[str, _MultiDelivery],
    ]:
        nodes = {stream.stream_id: _StreamNode(stream) for stream in order}

        # Wire children to parents; merge non-relay siblings into tries.
        derived: Dict[str, List["InstalledStream"]] = {}
        for stream in order:
            if stream.parent_id is None:
                continue
            if stream.pipeline:
                derived.setdefault(stream.parent_id, []).append(stream)
            else:
                nodes[stream.parent_id].relay_children.append(nodes[stream.stream_id])
        for parent_id, children in derived.items():
            parent_node = nodes[parent_id]
            parent_node.trie_groups = group_pipelines(
                [
                    (child.stream_id, child.content.item_path, child.pipeline)
                    for child in children
                ]
            )
            for _, _, stage_paths in parent_node.trie_groups:
                for stream_id, stage_path in stage_paths.items():
                    nodes[stream_id].stage_path = stage_path

        # Subscription consumers.
        singles: Dict[str, _SingleDelivery] = {}
        multis: Dict[str, _MultiDelivery] = {}
        for record in self.deployment.queries.values():
            if len(record.delivered) > 1:
                delivery = _MultiDelivery(record, _Gauge())
                multis[record.name] = delivery
                for index, (_, stream_id) in enumerate(record.delivered):
                    if stream_id in nodes:
                        nodes[stream_id].deliveries.append(
                            self._multi_feeder(delivery, index)
                        )
            else:
                single = _SingleDelivery(record)
                singles[record.name] = single
                for _, stream_id in record.delivered:
                    if stream_id in nodes:
                        nodes[stream_id].deliveries.append(single.feed)
        return nodes, singles, multis

    @staticmethod
    def _multi_feeder(
        delivery: _MultiDelivery, index: int
    ) -> Callable[[Sequence[Element]], None]:
        def feed(batch: Sequence[Element]) -> None:
            delivery.feed(index, batch)

        return feed

    # ------------------------------------------------------------------
    # Streaming execution
    # ------------------------------------------------------------------
    def _pump_source(self, node: _StreamNode, gauge: _Gauge) -> None:
        stream = node.stream
        generator = self.generators.get(stream.stream_id)
        if generator is None:
            raise ExecutionError(
                f"no generator for original stream {stream.stream_id!r}"
            )
        produced = 0
        batch_size = self.batch_size
        while generator.clock < self.duration:
            batch: List[Element] = []
            while (
                generator.clock < self.duration
                and len(batch) < batch_size
                and (self.max_items is None or produced + len(batch) < self.max_items)
            ):
                batch.append(generator.next_item().freeze())
            if not batch:
                break
            produced += len(batch)
            self._pump(node, batch, gauge)
            if self.max_items is not None and produced >= self.max_items:
                break

    def _pump(
        self, node: _StreamNode, batch: List[Element], gauge: _Gauge
    ) -> None:
        """Consume one batch of ``node``'s items: account, deliver, fan out."""
        gauge.add(len(batch))
        node.produced_count += len(batch)
        if node.has_hops:
            node.produced_bytes += sum(item.serialized_size() for item in batch)
        for feed in node.deliveries:
            feed(batch)
        for relay in node.relay_children:
            self._pump(relay, batch, gauge)
        for _, trie, _ in node.trie_groups:
            trie.evaluate(batch, self._emit, gauge)
        gauge.sub(len(batch))

    def _emit(self, stream_id: str, out: List[Element]) -> None:
        self._pump(self._nodes[stream_id], out, self._gauge)

    # ------------------------------------------------------------------
    # Metrics replay
    # ------------------------------------------------------------------
    def _account(
        self,
        order: List["InstalledStream"],
        nodes: Dict[str, _StreamNode],
        singles: Dict[str, _SingleDelivery],
        multis: Dict[str, _MultiDelivery],
    ) -> RunMetrics:
        """Replay the accumulated counters into :class:`RunMetrics` in
        the exact accumulation order of the materializing executor, so
        both produce floating-point-identical metrics."""
        metrics = RunMetrics(duration=self.duration)
        for stream in order:
            node = nodes[stream.stream_id]
            peer = self.net.super_peer(stream.origin_node)
            if stream.is_original:
                metrics.count_generated(stream.stream_id, node.produced_count)
                ingest = base_load("ingest") * peer.pindex
                metrics.add_peer_work(stream.origin_node, ingest * node.produced_count)
            else:
                assert stream.parent_id is not None
                parent_count = nodes[stream.parent_id].produced_count
                duplicate = base_load("duplicate") * peer.pindex
                metrics.add_peer_work(stream.origin_node, duplicate * parent_count)
                for stage in node.stage_path:
                    udf_name = getattr(getattr(stage.operator, "spec", None), "name", None)
                    work = (
                        base_load(stage.operator.kind, udf_name)
                        * peer.pindex
                        * stage.input_count
                    )
                    metrics.add_peer_work(stream.origin_node, work)
            self._account_transport(stream, node, metrics)
        self._account_postprocess(metrics, singles, multis)
        return metrics

    def _account_transport(
        self, stream: "InstalledStream", node: _StreamNode, metrics: RunMetrics
    ) -> None:
        hops = stream.links()
        if not hops or not node.produced_count:
            return
        total_bits = float(node.produced_bytes * 8)
        for a, b in hops:
            metrics.add_link_bits(self.net.link(a, b), total_bits)
        # Forwarding work: the sender side of every hop touches each item.
        for sender, _ in hops:
            peer = self.net.super_peer(sender)
            work = base_load("transfer") * peer.pindex * node.produced_count
            metrics.add_peer_work(sender, work)

    def _account_postprocess(
        self,
        metrics: RunMetrics,
        singles: Dict[str, _SingleDelivery],
        multis: Dict[str, _MultiDelivery],
    ) -> None:
        for record in self.deployment.queries.values():
            peer = self.net.super_peer(record.subscriber_node)
            work_per_item = base_load("restructure") * peer.pindex
            if len(record.delivered) > 1:
                delivery = multis[record.name]
                metrics.add_peer_work(
                    record.subscriber_node, work_per_item * delivery.total_inputs
                )
                metrics.count_delivery(record.name, delivery.results)
                continue
            single = singles[record.name]
            for _ in record.delivered:
                metrics.add_peer_work(
                    record.subscriber_node, work_per_item * single.inputs
                )
                metrics.count_delivery(record.name, single.results)


# ----------------------------------------------------------------------
# The materializing oracle
# ----------------------------------------------------------------------
class MaterializingSimulator:
    """The seed executor: materialize every stream's full item list.

    Kept as the correctness oracle for :class:`StreamSimulator` — it
    evaluates every derived stream with its own private pipeline over
    the parent's fully materialized item list, exactly as the original
    implementation did.  Peak memory is O(all items × all streams);
    ``peak_live_items`` reports the total number of materialized items
    for comparison in the micro benchmark.
    """

    def __init__(
        self,
        net: Network,
        deployment: "Deployment",
        generators: Dict[str, ItemGenerator],
        duration: float,
        max_items_per_source: Optional[int] = None,
    ) -> None:
        if duration <= 0:
            raise ExecutionError("duration must be positive")
        self.net = net
        self.deployment = deployment
        self.generators = generators
        self.duration = duration
        self.max_items = max_items_per_source
        self.peak_live_items = 0

    # ------------------------------------------------------------------
    def run(self) -> RunMetrics:
        metrics = RunMetrics(duration=self.duration)
        items: Dict[str, List[Element]] = {}

        for stream in self._topological_streams():
            if stream.is_original:
                items[stream.stream_id] = self._generate(stream, metrics)
            else:
                items[stream.stream_id] = self._derive(stream, items, metrics)
            self._account_transport(stream, items[stream.stream_id], metrics)

        self.peak_live_items = sum(len(produced) for produced in items.values())
        self._postprocess(items, metrics)
        return metrics

    # ------------------------------------------------------------------
    # Stream production
    # ------------------------------------------------------------------
    def _topological_streams(self) -> List["InstalledStream"]:
        return topological_streams(self.deployment)

    def _generate(self, stream: "InstalledStream", metrics: RunMetrics) -> List[Element]:
        generator = self.generators.get(stream.stream_id)
        if generator is None:
            raise ExecutionError(f"no generator for original stream {stream.stream_id!r}")
        produced: List[Element] = []
        peer = self.net.super_peer(stream.origin_node)
        ingest = base_load("ingest") * peer.pindex
        while generator.clock < self.duration:
            if self.max_items is not None and len(produced) >= self.max_items:
                break
            produced.append(generator.next_item())
        metrics.count_generated(stream.stream_id, len(produced))
        metrics.add_peer_work(stream.origin_node, ingest * len(produced))
        return produced

    def _derive(
        self,
        stream: "InstalledStream",
        items: Dict[str, List[Element]],
        metrics: RunMetrics,
    ) -> List[Element]:
        assert stream.parent_id is not None
        parent_items = items[stream.parent_id]
        peer = self.net.super_peer(stream.origin_node)

        # Tapping an existing stream duplicates it at the tap node.
        duplicate = base_load("duplicate") * peer.pindex
        metrics.add_peer_work(stream.origin_node, duplicate * len(parent_items))

        if not stream.pipeline:
            return parent_items  # pure relay: content unchanged

        pipeline = Pipeline.from_specs(stream.pipeline, stream.content.item_path)
        out: List[Element] = []
        for item in parent_items:
            out.extend(pipeline.process(item))
        for operator, inputs in zip(pipeline.operators, pipeline.input_counts):
            udf_name = getattr(getattr(operator, "spec", None), "name", None)
            work = base_load(operator.kind, udf_name) * peer.pindex * inputs
            metrics.add_peer_work(stream.origin_node, work)
        return out

    # ------------------------------------------------------------------
    # Transport and delivery
    # ------------------------------------------------------------------
    def _account_transport(
        self, stream: "InstalledStream", produced: List[Element], metrics: RunMetrics
    ) -> None:
        hops = stream.links()
        if not hops or not produced:
            return
        bits_per_item = [item.serialized_size() * 8 for item in produced]
        total_bits = float(sum(bits_per_item))
        for a, b in hops:
            metrics.add_link_bits(self.net.link(a, b), total_bits)
        # Forwarding work: the sender side of every hop touches each item.
        for sender, _ in hops:
            peer = self.net.super_peer(sender)
            work = base_load("transfer") * peer.pindex * len(produced)
            metrics.add_peer_work(sender, work)

    def _postprocess(self, items: Dict[str, List[Element]], metrics: RunMetrics) -> None:
        """Run each subscription's restructuring at its super-peer."""
        for record in self.deployment.queries.values():
            peer = self.net.super_peer(record.subscriber_node)
            work_per_item = base_load("restructure") * peer.pindex
            if len(record.delivered) > 1:
                self._postprocess_multi(record, items, metrics, work_per_item)
                continue
            restructurer = Restructurer(record.analyzed)
            for _, stream_id in record.delivered:
                delivered = items.get(stream_id, [])
                metrics.add_peer_work(
                    record.subscriber_node, work_per_item * len(delivered)
                )
                results = 0
                for item in delivered:
                    results += len(restructurer.build(item))
                metrics.count_delivery(record.name, results)

    def _postprocess_multi(
        self,
        record: "RegisteredQuery",
        items: Dict[str, List[Element]],
        metrics: RunMetrics,
        work_per_item: float,
    ) -> None:
        """Multi-input combination: latest-value semantics over a
        deterministic round-robin interleaving of the delivered streams
        (see :class:`repro.engine.combine.LatestValueCombiner`)."""
        from .combine import LatestValueCombiner

        combiner = LatestValueCombiner(record.analyzed)
        per_stream = [
            (input_stream, items.get(stream_id, []))
            for input_stream, stream_id in record.delivered
        ]
        total_inputs = sum(len(delivered) for _, delivered in per_stream)
        metrics.add_peer_work(record.subscriber_node, work_per_item * total_inputs)
        results = 0
        for input_stream, item in interleave_round_robin(per_stream):
            results += len(combiner.push(input_stream, item))
        metrics.count_delivery(record.name, results)
